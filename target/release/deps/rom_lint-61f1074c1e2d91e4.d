/root/repo/target/release/deps/rom_lint-61f1074c1e2d91e4.d: crates/lint/src/main.rs

/root/repo/target/release/deps/rom_lint-61f1074c1e2d91e4: crates/lint/src/main.rs

crates/lint/src/main.rs:
