/root/repo/target/release/deps/fig04_disruptions-e63bfed8a739d0e9.d: crates/bench/src/bin/fig04_disruptions.rs

/root/repo/target/release/deps/fig04_disruptions-e63bfed8a739d0e9: crates/bench/src/bin/fig04_disruptions.rs

crates/bench/src/bin/fig04_disruptions.rs:
