/root/repo/target/release/deps/rom_bench-d0dbefcec744e6c3.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/librom_bench-d0dbefcec744e6c3.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/librom_bench-d0dbefcec744e6c3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
