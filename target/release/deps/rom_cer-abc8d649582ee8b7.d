/root/repo/target/release/deps/rom_cer-abc8d649582ee8b7.d: crates/cer/src/lib.rs crates/cer/src/buffer.rs crates/cer/src/correlation.rs crates/cer/src/eln.rs crates/cer/src/mlc.rs crates/cer/src/partial_tree.rs crates/cer/src/recovery.rs crates/cer/src/session.rs

/root/repo/target/release/deps/librom_cer-abc8d649582ee8b7.rlib: crates/cer/src/lib.rs crates/cer/src/buffer.rs crates/cer/src/correlation.rs crates/cer/src/eln.rs crates/cer/src/mlc.rs crates/cer/src/partial_tree.rs crates/cer/src/recovery.rs crates/cer/src/session.rs

/root/repo/target/release/deps/librom_cer-abc8d649582ee8b7.rmeta: crates/cer/src/lib.rs crates/cer/src/buffer.rs crates/cer/src/correlation.rs crates/cer/src/eln.rs crates/cer/src/mlc.rs crates/cer/src/partial_tree.rs crates/cer/src/recovery.rs crates/cer/src/session.rs

crates/cer/src/lib.rs:
crates/cer/src/buffer.rs:
crates/cer/src/correlation.rs:
crates/cer/src/eln.rs:
crates/cer/src/mlc.rs:
crates/cer/src/partial_tree.rs:
crates/cer/src/recovery.rs:
crates/cer/src/session.rs:
