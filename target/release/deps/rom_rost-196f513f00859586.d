/root/repo/target/release/deps/rom_rost-196f513f00859586.d: crates/rost/src/lib.rs crates/rost/src/audit.rs crates/rost/src/btp.rs crates/rost/src/config.rs crates/rost/src/join.rs crates/rost/src/locks.rs crates/rost/src/referee.rs crates/rost/src/switching.rs

/root/repo/target/release/deps/librom_rost-196f513f00859586.rlib: crates/rost/src/lib.rs crates/rost/src/audit.rs crates/rost/src/btp.rs crates/rost/src/config.rs crates/rost/src/join.rs crates/rost/src/locks.rs crates/rost/src/referee.rs crates/rost/src/switching.rs

/root/repo/target/release/deps/librom_rost-196f513f00859586.rmeta: crates/rost/src/lib.rs crates/rost/src/audit.rs crates/rost/src/btp.rs crates/rost/src/config.rs crates/rost/src/join.rs crates/rost/src/locks.rs crates/rost/src/referee.rs crates/rost/src/switching.rs

crates/rost/src/lib.rs:
crates/rost/src/audit.rs:
crates/rost/src/btp.rs:
crates/rost/src/config.rs:
crates/rost/src/join.rs:
crates/rost/src/locks.rs:
crates/rost/src/referee.rs:
crates/rost/src/switching.rs:
