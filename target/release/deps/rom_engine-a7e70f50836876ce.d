/root/repo/target/release/deps/rom_engine-a7e70f50836876ce.d: crates/engine/src/lib.rs crates/engine/src/churn.rs crates/engine/src/config.rs crates/engine/src/proximity.rs crates/engine/src/streaming.rs crates/engine/src/workload.rs

/root/repo/target/release/deps/librom_engine-a7e70f50836876ce.rlib: crates/engine/src/lib.rs crates/engine/src/churn.rs crates/engine/src/config.rs crates/engine/src/proximity.rs crates/engine/src/streaming.rs crates/engine/src/workload.rs

/root/repo/target/release/deps/librom_engine-a7e70f50836876ce.rmeta: crates/engine/src/lib.rs crates/engine/src/churn.rs crates/engine/src/config.rs crates/engine/src/proximity.rs crates/engine/src/streaming.rs crates/engine/src/workload.rs

crates/engine/src/lib.rs:
crates/engine/src/churn.rs:
crates/engine/src/config.rs:
crates/engine/src/proximity.rs:
crates/engine/src/streaming.rs:
crates/engine/src/workload.rs:
