/root/repo/target/release/deps/rom_net-130179db5a0b1946.d: crates/net/src/lib.rs crates/net/src/dijkstra.rs crates/net/src/graph.rs crates/net/src/oracle.rs crates/net/src/transit_stub.rs

/root/repo/target/release/deps/librom_net-130179db5a0b1946.rlib: crates/net/src/lib.rs crates/net/src/dijkstra.rs crates/net/src/graph.rs crates/net/src/oracle.rs crates/net/src/transit_stub.rs

/root/repo/target/release/deps/librom_net-130179db5a0b1946.rmeta: crates/net/src/lib.rs crates/net/src/dijkstra.rs crates/net/src/graph.rs crates/net/src/oracle.rs crates/net/src/transit_stub.rs

crates/net/src/lib.rs:
crates/net/src/dijkstra.rs:
crates/net/src/graph.rs:
crates/net/src/oracle.rs:
crates/net/src/transit_stub.rs:
