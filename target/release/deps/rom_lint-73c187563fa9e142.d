/root/repo/target/release/deps/rom_lint-73c187563fa9e142.d: crates/lint/src/lib.rs crates/lint/src/config.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs

/root/repo/target/release/deps/librom_lint-73c187563fa9e142.rlib: crates/lint/src/lib.rs crates/lint/src/config.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs

/root/repo/target/release/deps/librom_lint-73c187563fa9e142.rmeta: crates/lint/src/lib.rs crates/lint/src/config.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs

crates/lint/src/lib.rs:
crates/lint/src/config.rs:
crates/lint/src/lexer.rs:
crates/lint/src/rules.rs:
