/root/repo/target/release/deps/rom_sim-9cd272041e33b108.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/librom_sim-9cd272041e33b108.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/librom_sim-9cd272041e33b108.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
