/root/repo/target/release/deps/rom-679e5ba4a07ddc6b.d: src/lib.rs

/root/repo/target/release/deps/librom-679e5ba4a07ddc6b.rlib: src/lib.rs

/root/repo/target/release/deps/librom-679e5ba4a07ddc6b.rmeta: src/lib.rs

src/lib.rs:
