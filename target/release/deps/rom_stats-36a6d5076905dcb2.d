/root/repo/target/release/deps/rom_stats-36a6d5076905dcb2.d: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/lognormal.rs crates/stats/src/math.rs crates/stats/src/pareto.rs crates/stats/src/summary.rs crates/stats/src/timeseries.rs

/root/repo/target/release/deps/librom_stats-36a6d5076905dcb2.rlib: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/lognormal.rs crates/stats/src/math.rs crates/stats/src/pareto.rs crates/stats/src/summary.rs crates/stats/src/timeseries.rs

/root/repo/target/release/deps/librom_stats-36a6d5076905dcb2.rmeta: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/lognormal.rs crates/stats/src/math.rs crates/stats/src/pareto.rs crates/stats/src/summary.rs crates/stats/src/timeseries.rs

crates/stats/src/lib.rs:
crates/stats/src/cdf.rs:
crates/stats/src/lognormal.rs:
crates/stats/src/math.rs:
crates/stats/src/pareto.rs:
crates/stats/src/summary.rs:
crates/stats/src/timeseries.rs:
