/root/repo/target/release/deps/rom_wire-b333cde27960ca7f.d: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/harness.rs crates/wire/src/message.rs

/root/repo/target/release/deps/librom_wire-b333cde27960ca7f.rlib: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/harness.rs crates/wire/src/message.rs

/root/repo/target/release/deps/librom_wire-b333cde27960ca7f.rmeta: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/harness.rs crates/wire/src/message.rs

crates/wire/src/lib.rs:
crates/wire/src/codec.rs:
crates/wire/src/harness.rs:
crates/wire/src/message.rs:
