/root/repo/target/release/librom_lint.rlib: /root/repo/crates/lint/src/config.rs /root/repo/crates/lint/src/lexer.rs /root/repo/crates/lint/src/lib.rs /root/repo/crates/lint/src/rules.rs
