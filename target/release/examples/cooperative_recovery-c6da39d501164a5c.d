/root/repo/target/release/examples/cooperative_recovery-c6da39d501164a5c.d: examples/cooperative_recovery.rs

/root/repo/target/release/examples/cooperative_recovery-c6da39d501164a5c: examples/cooperative_recovery.rs

examples/cooperative_recovery.rs:
