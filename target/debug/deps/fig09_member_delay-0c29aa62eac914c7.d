/root/repo/target/debug/deps/fig09_member_delay-0c29aa62eac914c7.d: crates/bench/src/bin/fig09_member_delay.rs

/root/repo/target/debug/deps/fig09_member_delay-0c29aa62eac914c7: crates/bench/src/bin/fig09_member_delay.rs

crates/bench/src/bin/fig09_member_delay.rs:
