/root/repo/target/debug/deps/wire_properties-3054d90b736b05be.d: crates/wire/tests/wire_properties.rs

/root/repo/target/debug/deps/wire_properties-3054d90b736b05be: crates/wire/tests/wire_properties.rs

crates/wire/tests/wire_properties.rs:
