/root/repo/target/debug/deps/fig14_rost_cer-9a1daf9f0612402a.d: crates/bench/src/bin/fig14_rost_cer.rs

/root/repo/target/debug/deps/fig14_rost_cer-9a1daf9f0612402a: crates/bench/src/bin/fig14_rost_cer.rs

crates/bench/src/bin/fig14_rost_cer.rs:
