/root/repo/target/debug/deps/rom_overlay-a7ffb8db68b1a384.d: crates/overlay/src/lib.rs crates/overlay/src/algorithms/mod.rs crates/overlay/src/algorithms/longest_first.rs crates/overlay/src/algorithms/min_depth.rs crates/overlay/src/algorithms/ordered.rs crates/overlay/src/error.rs crates/overlay/src/id.rs crates/overlay/src/member.rs crates/overlay/src/multitree.rs crates/overlay/src/proximity.rs crates/overlay/src/stats.rs crates/overlay/src/tree.rs crates/overlay/src/view.rs

/root/repo/target/debug/deps/librom_overlay-a7ffb8db68b1a384.rlib: crates/overlay/src/lib.rs crates/overlay/src/algorithms/mod.rs crates/overlay/src/algorithms/longest_first.rs crates/overlay/src/algorithms/min_depth.rs crates/overlay/src/algorithms/ordered.rs crates/overlay/src/error.rs crates/overlay/src/id.rs crates/overlay/src/member.rs crates/overlay/src/multitree.rs crates/overlay/src/proximity.rs crates/overlay/src/stats.rs crates/overlay/src/tree.rs crates/overlay/src/view.rs

/root/repo/target/debug/deps/librom_overlay-a7ffb8db68b1a384.rmeta: crates/overlay/src/lib.rs crates/overlay/src/algorithms/mod.rs crates/overlay/src/algorithms/longest_first.rs crates/overlay/src/algorithms/min_depth.rs crates/overlay/src/algorithms/ordered.rs crates/overlay/src/error.rs crates/overlay/src/id.rs crates/overlay/src/member.rs crates/overlay/src/multitree.rs crates/overlay/src/proximity.rs crates/overlay/src/stats.rs crates/overlay/src/tree.rs crates/overlay/src/view.rs

crates/overlay/src/lib.rs:
crates/overlay/src/algorithms/mod.rs:
crates/overlay/src/algorithms/longest_first.rs:
crates/overlay/src/algorithms/min_depth.rs:
crates/overlay/src/algorithms/ordered.rs:
crates/overlay/src/error.rs:
crates/overlay/src/id.rs:
crates/overlay/src/member.rs:
crates/overlay/src/multitree.rs:
crates/overlay/src/proximity.rs:
crates/overlay/src/stats.rs:
crates/overlay/src/tree.rs:
crates/overlay/src/view.rs:
