/root/repo/target/debug/deps/rom_lint-6a9b23348535cfbd.d: crates/lint/src/lib.rs crates/lint/src/config.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs

/root/repo/target/debug/deps/librom_lint-6a9b23348535cfbd.rlib: crates/lint/src/lib.rs crates/lint/src/config.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs

/root/repo/target/debug/deps/librom_lint-6a9b23348535cfbd.rmeta: crates/lint/src/lib.rs crates/lint/src/config.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs

crates/lint/src/lib.rs:
crates/lint/src/config.rs:
crates/lint/src/lexer.rs:
crates/lint/src/rules.rs:
