/root/repo/target/debug/deps/net_properties-0ec77d72c02567b1.d: crates/net/tests/net_properties.rs

/root/repo/target/debug/deps/net_properties-0ec77d72c02567b1: crates/net/tests/net_properties.rs

crates/net/tests/net_properties.rs:
