/root/repo/target/debug/deps/fig07_service_delay-96eb19243db048c2.d: crates/bench/src/bin/fig07_service_delay.rs

/root/repo/target/debug/deps/fig07_service_delay-96eb19243db048c2: crates/bench/src/bin/fig07_service_delay.rs

crates/bench/src/bin/fig07_service_delay.rs:
