/root/repo/target/debug/deps/ablation_graceful-b72b2e27484846a4.d: crates/bench/src/bin/ablation_graceful.rs

/root/repo/target/debug/deps/ablation_graceful-b72b2e27484846a4: crates/bench/src/bin/ablation_graceful.rs

crates/bench/src/bin/ablation_graceful.rs:
