/root/repo/target/debug/deps/fig08_stretch-1fa81f845c649c01.d: crates/bench/src/bin/fig08_stretch.rs

/root/repo/target/debug/deps/fig08_stretch-1fa81f845c649c01: crates/bench/src/bin/fig08_stretch.rs

crates/bench/src/bin/fig08_stretch.rs:
