/root/repo/target/debug/deps/rom_bench-b351601a9f3ad9de.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/rom_bench-b351601a9f3ad9de: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
