/root/repo/target/debug/deps/fig12_starving_vs_size-d3d210211e5c0397.d: crates/bench/src/bin/fig12_starving_vs_size.rs

/root/repo/target/debug/deps/fig12_starving_vs_size-d3d210211e5c0397: crates/bench/src/bin/fig12_starving_vs_size.rs

crates/bench/src/bin/fig12_starving_vs_size.rs:
