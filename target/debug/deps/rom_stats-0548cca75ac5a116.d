/root/repo/target/debug/deps/rom_stats-0548cca75ac5a116.d: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/lognormal.rs crates/stats/src/math.rs crates/stats/src/pareto.rs crates/stats/src/summary.rs crates/stats/src/timeseries.rs

/root/repo/target/debug/deps/rom_stats-0548cca75ac5a116: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/lognormal.rs crates/stats/src/math.rs crates/stats/src/pareto.rs crates/stats/src/summary.rs crates/stats/src/timeseries.rs

crates/stats/src/lib.rs:
crates/stats/src/cdf.rs:
crates/stats/src/lognormal.rs:
crates/stats/src/math.rs:
crates/stats/src/pareto.rs:
crates/stats/src/summary.rs:
crates/stats/src/timeseries.rs:
