/root/repo/target/debug/deps/rom_net-baa8b3473ba1d18d.d: crates/net/src/lib.rs crates/net/src/dijkstra.rs crates/net/src/graph.rs crates/net/src/oracle.rs crates/net/src/transit_stub.rs

/root/repo/target/debug/deps/librom_net-baa8b3473ba1d18d.rlib: crates/net/src/lib.rs crates/net/src/dijkstra.rs crates/net/src/graph.rs crates/net/src/oracle.rs crates/net/src/transit_stub.rs

/root/repo/target/debug/deps/librom_net-baa8b3473ba1d18d.rmeta: crates/net/src/lib.rs crates/net/src/dijkstra.rs crates/net/src/graph.rs crates/net/src/oracle.rs crates/net/src/transit_stub.rs

crates/net/src/lib.rs:
crates/net/src/dijkstra.rs:
crates/net/src/graph.rs:
crates/net/src/oracle.rs:
crates/net/src/transit_stub.rs:
