/root/repo/target/debug/deps/ablation_group_selection-94587aae0637ed31.d: crates/bench/src/bin/ablation_group_selection.rs

/root/repo/target/debug/deps/ablation_group_selection-94587aae0637ed31: crates/bench/src/bin/ablation_group_selection.rs

crates/bench/src/bin/ablation_group_selection.rs:
