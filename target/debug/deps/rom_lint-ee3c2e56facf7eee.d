/root/repo/target/debug/deps/rom_lint-ee3c2e56facf7eee.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/rom_lint-ee3c2e56facf7eee: crates/lint/src/main.rs

crates/lint/src/main.rs:
