/root/repo/target/debug/deps/fig10_protocol_overhead-95ed33fca8f5df36.d: crates/bench/src/bin/fig10_protocol_overhead.rs

/root/repo/target/debug/deps/fig10_protocol_overhead-95ed33fca8f5df36: crates/bench/src/bin/fig10_protocol_overhead.rs

crates/bench/src/bin/fig10_protocol_overhead.rs:
