/root/repo/target/debug/deps/stats_properties-df0a73f3cfd2bf47.d: crates/stats/tests/stats_properties.rs

/root/repo/target/debug/deps/stats_properties-df0a73f3cfd2bf47: crates/stats/tests/stats_properties.rs

crates/stats/tests/stats_properties.rs:
