/root/repo/target/debug/deps/cer_properties-149b44ca1659a9c2.d: crates/cer/tests/cer_properties.rs

/root/repo/target/debug/deps/cer_properties-149b44ca1659a9c2: crates/cer/tests/cer_properties.rs

crates/cer/tests/cer_properties.rs:
