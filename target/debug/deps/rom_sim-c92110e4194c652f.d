/root/repo/target/debug/deps/rom_sim-c92110e4194c652f.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/rom_sim-c92110e4194c652f: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
