/root/repo/target/debug/deps/rom_wire-07fd15ec935f0951.d: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/harness.rs crates/wire/src/message.rs

/root/repo/target/debug/deps/librom_wire-07fd15ec935f0951.rlib: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/harness.rs crates/wire/src/message.rs

/root/repo/target/debug/deps/librom_wire-07fd15ec935f0951.rmeta: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/harness.rs crates/wire/src/message.rs

crates/wire/src/lib.rs:
crates/wire/src/codec.rs:
crates/wire/src/harness.rs:
crates/wire/src/message.rs:
