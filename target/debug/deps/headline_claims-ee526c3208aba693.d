/root/repo/target/debug/deps/headline_claims-ee526c3208aba693.d: crates/bench/src/bin/headline_claims.rs

/root/repo/target/debug/deps/headline_claims-ee526c3208aba693: crates/bench/src/bin/headline_claims.rs

crates/bench/src/bin/headline_claims.rs:
