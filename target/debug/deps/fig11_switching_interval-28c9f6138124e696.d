/root/repo/target/debug/deps/fig11_switching_interval-28c9f6138124e696.d: crates/bench/src/bin/fig11_switching_interval.rs

/root/repo/target/debug/deps/fig11_switching_interval-28c9f6138124e696: crates/bench/src/bin/fig11_switching_interval.rs

crates/bench/src/bin/fig11_switching_interval.rs:
