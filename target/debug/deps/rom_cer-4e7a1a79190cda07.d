/root/repo/target/debug/deps/rom_cer-4e7a1a79190cda07.d: crates/cer/src/lib.rs crates/cer/src/buffer.rs crates/cer/src/correlation.rs crates/cer/src/eln.rs crates/cer/src/mlc.rs crates/cer/src/partial_tree.rs crates/cer/src/recovery.rs crates/cer/src/session.rs

/root/repo/target/debug/deps/rom_cer-4e7a1a79190cda07: crates/cer/src/lib.rs crates/cer/src/buffer.rs crates/cer/src/correlation.rs crates/cer/src/eln.rs crates/cer/src/mlc.rs crates/cer/src/partial_tree.rs crates/cer/src/recovery.rs crates/cer/src/session.rs

crates/cer/src/lib.rs:
crates/cer/src/buffer.rs:
crates/cer/src/correlation.rs:
crates/cer/src/eln.rs:
crates/cer/src/mlc.rs:
crates/cer/src/partial_tree.rs:
crates/cer/src/recovery.rs:
crates/cer/src/session.rs:
