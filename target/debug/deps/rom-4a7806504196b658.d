/root/repo/target/debug/deps/rom-4a7806504196b658.d: src/lib.rs

/root/repo/target/debug/deps/librom-4a7806504196b658.rlib: src/lib.rs

/root/repo/target/debug/deps/librom-4a7806504196b658.rmeta: src/lib.rs

src/lib.rs:
