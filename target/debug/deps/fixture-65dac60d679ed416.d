/root/repo/target/debug/deps/fixture-65dac60d679ed416.d: crates/lint/tests/fixture.rs

/root/repo/target/debug/deps/fixture-65dac60d679ed416: crates/lint/tests/fixture.rs

crates/lint/tests/fixture.rs:

# env-dep:CARGO_BIN_EXE_rom-lint=/root/repo/target/debug/rom-lint
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
