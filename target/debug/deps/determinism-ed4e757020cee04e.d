/root/repo/target/debug/deps/determinism-ed4e757020cee04e.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-ed4e757020cee04e: tests/determinism.rs

tests/determinism.rs:
