/root/repo/target/debug/deps/referee_churn-c66dc749a9910ed0.d: tests/referee_churn.rs

/root/repo/target/debug/deps/referee_churn-c66dc749a9910ed0: tests/referee_churn.rs

tests/referee_churn.rs:
