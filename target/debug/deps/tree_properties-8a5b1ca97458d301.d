/root/repo/target/debug/deps/tree_properties-8a5b1ca97458d301.d: crates/overlay/tests/tree_properties.rs

/root/repo/target/debug/deps/tree_properties-8a5b1ca97458d301: crates/overlay/tests/tree_properties.rs

crates/overlay/tests/tree_properties.rs:
