/root/repo/target/debug/deps/rom_stats-6b3e33632af9b156.d: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/lognormal.rs crates/stats/src/math.rs crates/stats/src/pareto.rs crates/stats/src/summary.rs crates/stats/src/timeseries.rs

/root/repo/target/debug/deps/librom_stats-6b3e33632af9b156.rlib: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/lognormal.rs crates/stats/src/math.rs crates/stats/src/pareto.rs crates/stats/src/summary.rs crates/stats/src/timeseries.rs

/root/repo/target/debug/deps/librom_stats-6b3e33632af9b156.rmeta: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/lognormal.rs crates/stats/src/math.rs crates/stats/src/pareto.rs crates/stats/src/summary.rs crates/stats/src/timeseries.rs

crates/stats/src/lib.rs:
crates/stats/src/cdf.rs:
crates/stats/src/lognormal.rs:
crates/stats/src/math.rs:
crates/stats/src/pareto.rs:
crates/stats/src/summary.rs:
crates/stats/src/timeseries.rs:
