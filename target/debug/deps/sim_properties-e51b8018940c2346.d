/root/repo/target/debug/deps/sim_properties-e51b8018940c2346.d: crates/sim/tests/sim_properties.rs

/root/repo/target/debug/deps/sim_properties-e51b8018940c2346: crates/sim/tests/sim_properties.rs

crates/sim/tests/sim_properties.rs:
