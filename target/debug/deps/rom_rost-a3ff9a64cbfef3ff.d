/root/repo/target/debug/deps/rom_rost-a3ff9a64cbfef3ff.d: crates/rost/src/lib.rs crates/rost/src/audit.rs crates/rost/src/btp.rs crates/rost/src/config.rs crates/rost/src/join.rs crates/rost/src/locks.rs crates/rost/src/referee.rs crates/rost/src/switching.rs

/root/repo/target/debug/deps/rom_rost-a3ff9a64cbfef3ff: crates/rost/src/lib.rs crates/rost/src/audit.rs crates/rost/src/btp.rs crates/rost/src/config.rs crates/rost/src/join.rs crates/rost/src/locks.rs crates/rost/src/referee.rs crates/rost/src/switching.rs

crates/rost/src/lib.rs:
crates/rost/src/audit.rs:
crates/rost/src/btp.rs:
crates/rost/src/config.rs:
crates/rost/src/join.rs:
crates/rost/src/locks.rs:
crates/rost/src/referee.rs:
crates/rost/src/switching.rs:
