/root/repo/target/debug/deps/rom_cer-7dfd5511914be856.d: crates/cer/src/lib.rs crates/cer/src/buffer.rs crates/cer/src/correlation.rs crates/cer/src/eln.rs crates/cer/src/mlc.rs crates/cer/src/partial_tree.rs crates/cer/src/recovery.rs crates/cer/src/session.rs

/root/repo/target/debug/deps/librom_cer-7dfd5511914be856.rlib: crates/cer/src/lib.rs crates/cer/src/buffer.rs crates/cer/src/correlation.rs crates/cer/src/eln.rs crates/cer/src/mlc.rs crates/cer/src/partial_tree.rs crates/cer/src/recovery.rs crates/cer/src/session.rs

/root/repo/target/debug/deps/librom_cer-7dfd5511914be856.rmeta: crates/cer/src/lib.rs crates/cer/src/buffer.rs crates/cer/src/correlation.rs crates/cer/src/eln.rs crates/cer/src/mlc.rs crates/cer/src/partial_tree.rs crates/cer/src/recovery.rs crates/cer/src/session.rs

crates/cer/src/lib.rs:
crates/cer/src/buffer.rs:
crates/cer/src/correlation.rs:
crates/cer/src/eln.rs:
crates/cer/src/mlc.rs:
crates/cer/src/partial_tree.rs:
crates/cer/src/recovery.rs:
crates/cer/src/session.rs:
