/root/repo/target/debug/deps/rom_lint-b03280a44d95ddda.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/rom_lint-b03280a44d95ddda: crates/lint/src/main.rs

crates/lint/src/main.rs:
