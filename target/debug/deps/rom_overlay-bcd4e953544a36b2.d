/root/repo/target/debug/deps/rom_overlay-bcd4e953544a36b2.d: crates/overlay/src/lib.rs crates/overlay/src/algorithms/mod.rs crates/overlay/src/algorithms/longest_first.rs crates/overlay/src/algorithms/min_depth.rs crates/overlay/src/algorithms/ordered.rs crates/overlay/src/error.rs crates/overlay/src/id.rs crates/overlay/src/member.rs crates/overlay/src/multitree.rs crates/overlay/src/proximity.rs crates/overlay/src/stats.rs crates/overlay/src/tree.rs crates/overlay/src/view.rs

/root/repo/target/debug/deps/rom_overlay-bcd4e953544a36b2: crates/overlay/src/lib.rs crates/overlay/src/algorithms/mod.rs crates/overlay/src/algorithms/longest_first.rs crates/overlay/src/algorithms/min_depth.rs crates/overlay/src/algorithms/ordered.rs crates/overlay/src/error.rs crates/overlay/src/id.rs crates/overlay/src/member.rs crates/overlay/src/multitree.rs crates/overlay/src/proximity.rs crates/overlay/src/stats.rs crates/overlay/src/tree.rs crates/overlay/src/view.rs

crates/overlay/src/lib.rs:
crates/overlay/src/algorithms/mod.rs:
crates/overlay/src/algorithms/longest_first.rs:
crates/overlay/src/algorithms/min_depth.rs:
crates/overlay/src/algorithms/ordered.rs:
crates/overlay/src/error.rs:
crates/overlay/src/id.rs:
crates/overlay/src/member.rs:
crates/overlay/src/multitree.rs:
crates/overlay/src/proximity.rs:
crates/overlay/src/stats.rs:
crates/overlay/src/tree.rs:
crates/overlay/src/view.rs:
