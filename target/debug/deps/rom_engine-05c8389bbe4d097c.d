/root/repo/target/debug/deps/rom_engine-05c8389bbe4d097c.d: crates/engine/src/lib.rs crates/engine/src/churn.rs crates/engine/src/config.rs crates/engine/src/proximity.rs crates/engine/src/streaming.rs crates/engine/src/workload.rs

/root/repo/target/debug/deps/rom_engine-05c8389bbe4d097c: crates/engine/src/lib.rs crates/engine/src/churn.rs crates/engine/src/config.rs crates/engine/src/proximity.rs crates/engine/src/streaming.rs crates/engine/src/workload.rs

crates/engine/src/lib.rs:
crates/engine/src/churn.rs:
crates/engine/src/config.rs:
crates/engine/src/proximity.rs:
crates/engine/src/streaming.rs:
crates/engine/src/workload.rs:
