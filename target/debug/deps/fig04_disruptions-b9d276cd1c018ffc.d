/root/repo/target/debug/deps/fig04_disruptions-b9d276cd1c018ffc.d: crates/bench/src/bin/fig04_disruptions.rs

/root/repo/target/debug/deps/fig04_disruptions-b9d276cd1c018ffc: crates/bench/src/bin/fig04_disruptions.rs

crates/bench/src/bin/fig04_disruptions.rs:
