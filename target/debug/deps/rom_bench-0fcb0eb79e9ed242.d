/root/repo/target/debug/deps/rom_bench-0fcb0eb79e9ed242.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/librom_bench-0fcb0eb79e9ed242.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/librom_bench-0fcb0eb79e9ed242.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
