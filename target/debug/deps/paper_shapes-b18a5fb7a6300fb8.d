/root/repo/target/debug/deps/paper_shapes-b18a5fb7a6300fb8.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-b18a5fb7a6300fb8: tests/paper_shapes.rs

tests/paper_shapes.rs:
