/root/repo/target/debug/deps/rom_lint-ecf4fd503ae941fa.d: crates/lint/src/lib.rs crates/lint/src/config.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs

/root/repo/target/debug/deps/rom_lint-ecf4fd503ae941fa: crates/lint/src/lib.rs crates/lint/src/config.rs crates/lint/src/lexer.rs crates/lint/src/rules.rs

crates/lint/src/lib.rs:
crates/lint/src/config.rs:
crates/lint/src/lexer.rs:
crates/lint/src/rules.rs:
