/root/repo/target/debug/deps/streaming_shapes-1d544873fbe30a27.d: tests/streaming_shapes.rs

/root/repo/target/debug/deps/streaming_shapes-1d544873fbe30a27: tests/streaming_shapes.rs

tests/streaming_shapes.rs:
