/root/repo/target/debug/deps/rom-e569c24d885cfe00.d: src/lib.rs

/root/repo/target/debug/deps/rom-e569c24d885cfe00: src/lib.rs

src/lib.rs:
