/root/repo/target/debug/deps/fig06_member_disruptions-5c2e5e53981dbdee.d: crates/bench/src/bin/fig06_member_disruptions.rs

/root/repo/target/debug/deps/fig06_member_disruptions-5c2e5e53981dbdee: crates/bench/src/bin/fig06_member_disruptions.rs

crates/bench/src/bin/fig06_member_disruptions.rs:
