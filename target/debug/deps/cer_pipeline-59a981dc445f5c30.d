/root/repo/target/debug/deps/cer_pipeline-59a981dc445f5c30.d: tests/cer_pipeline.rs

/root/repo/target/debug/deps/cer_pipeline-59a981dc445f5c30: tests/cer_pipeline.rs

tests/cer_pipeline.rs:
