/root/repo/target/debug/deps/ablation_bandwidth_guard-94aa042b7ae0951b.d: crates/bench/src/bin/ablation_bandwidth_guard.rs

/root/repo/target/debug/deps/ablation_bandwidth_guard-94aa042b7ae0951b: crates/bench/src/bin/ablation_bandwidth_guard.rs

crates/bench/src/bin/ablation_bandwidth_guard.rs:
