/root/repo/target/debug/deps/rom_wire-37850b9174c2676e.d: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/harness.rs crates/wire/src/message.rs

/root/repo/target/debug/deps/rom_wire-37850b9174c2676e: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/harness.rs crates/wire/src/message.rs

crates/wire/src/lib.rs:
crates/wire/src/codec.rs:
crates/wire/src/harness.rs:
crates/wire/src/message.rs:
