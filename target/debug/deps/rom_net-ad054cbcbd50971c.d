/root/repo/target/debug/deps/rom_net-ad054cbcbd50971c.d: crates/net/src/lib.rs crates/net/src/dijkstra.rs crates/net/src/graph.rs crates/net/src/oracle.rs crates/net/src/transit_stub.rs

/root/repo/target/debug/deps/rom_net-ad054cbcbd50971c: crates/net/src/lib.rs crates/net/src/dijkstra.rs crates/net/src/graph.rs crates/net/src/oracle.rs crates/net/src/transit_stub.rs

crates/net/src/lib.rs:
crates/net/src/dijkstra.rs:
crates/net/src/graph.rs:
crates/net/src/oracle.rs:
crates/net/src/transit_stub.rs:
