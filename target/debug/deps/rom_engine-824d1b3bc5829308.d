/root/repo/target/debug/deps/rom_engine-824d1b3bc5829308.d: crates/engine/src/lib.rs crates/engine/src/churn.rs crates/engine/src/config.rs crates/engine/src/proximity.rs crates/engine/src/streaming.rs crates/engine/src/workload.rs

/root/repo/target/debug/deps/librom_engine-824d1b3bc5829308.rlib: crates/engine/src/lib.rs crates/engine/src/churn.rs crates/engine/src/config.rs crates/engine/src/proximity.rs crates/engine/src/streaming.rs crates/engine/src/workload.rs

/root/repo/target/debug/deps/librom_engine-824d1b3bc5829308.rmeta: crates/engine/src/lib.rs crates/engine/src/churn.rs crates/engine/src/config.rs crates/engine/src/proximity.rs crates/engine/src/streaming.rs crates/engine/src/workload.rs

crates/engine/src/lib.rs:
crates/engine/src/churn.rs:
crates/engine/src/config.rs:
crates/engine/src/proximity.rs:
crates/engine/src/streaming.rs:
crates/engine/src/workload.rs:
