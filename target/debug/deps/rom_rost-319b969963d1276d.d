/root/repo/target/debug/deps/rom_rost-319b969963d1276d.d: crates/rost/src/lib.rs crates/rost/src/audit.rs crates/rost/src/btp.rs crates/rost/src/config.rs crates/rost/src/join.rs crates/rost/src/locks.rs crates/rost/src/referee.rs crates/rost/src/switching.rs

/root/repo/target/debug/deps/librom_rost-319b969963d1276d.rlib: crates/rost/src/lib.rs crates/rost/src/audit.rs crates/rost/src/btp.rs crates/rost/src/config.rs crates/rost/src/join.rs crates/rost/src/locks.rs crates/rost/src/referee.rs crates/rost/src/switching.rs

/root/repo/target/debug/deps/librom_rost-319b969963d1276d.rmeta: crates/rost/src/lib.rs crates/rost/src/audit.rs crates/rost/src/btp.rs crates/rost/src/config.rs crates/rost/src/join.rs crates/rost/src/locks.rs crates/rost/src/referee.rs crates/rost/src/switching.rs

crates/rost/src/lib.rs:
crates/rost/src/audit.rs:
crates/rost/src/btp.rs:
crates/rost/src/config.rs:
crates/rost/src/join.rs:
crates/rost/src/locks.rs:
crates/rost/src/referee.rs:
crates/rost/src/switching.rs:
