/root/repo/target/debug/deps/rom_sim-b3caa79be741632a.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/librom_sim-b3caa79be741632a.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/librom_sim-b3caa79be741632a.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
