/root/repo/target/debug/deps/fig05_disruption_cdf-0ba4ffda570d3e0b.d: crates/bench/src/bin/fig05_disruption_cdf.rs

/root/repo/target/debug/deps/fig05_disruption_cdf-0ba4ffda570d3e0b: crates/bench/src/bin/fig05_disruption_cdf.rs

crates/bench/src/bin/fig05_disruption_cdf.rs:
