/root/repo/target/debug/deps/fig13_starving_vs_buffer-f1fb1e10760c8d81.d: crates/bench/src/bin/fig13_starving_vs_buffer.rs

/root/repo/target/debug/deps/fig13_starving_vs_buffer-f1fb1e10760c8d81: crates/bench/src/bin/fig13_starving_vs_buffer.rs

crates/bench/src/bin/fig13_starving_vs_buffer.rs:
