/root/repo/target/debug/examples/quickstart-5b26c600bb5bbd4a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5b26c600bb5bbd4a: examples/quickstart.rs

examples/quickstart.rs:
