/root/repo/target/debug/examples/cooperative_recovery-f484a741c6b65f93.d: examples/cooperative_recovery.rs

/root/repo/target/debug/examples/cooperative_recovery-f484a741c6b65f93: examples/cooperative_recovery.rs

examples/cooperative_recovery.rs:
