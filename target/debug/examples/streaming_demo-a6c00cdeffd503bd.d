/root/repo/target/debug/examples/streaming_demo-a6c00cdeffd503bd.d: examples/streaming_demo.rs

/root/repo/target/debug/examples/streaming_demo-a6c00cdeffd503bd: examples/streaming_demo.rs

examples/streaming_demo.rs:
