/root/repo/target/debug/examples/wire_session-999082f635015063.d: examples/wire_session.rs

/root/repo/target/debug/examples/wire_session-999082f635015063: examples/wire_session.rs

examples/wire_session.rs:
