/root/repo/target/debug/examples/referee_audit-4b68f87b35213d9f.d: examples/referee_audit.rs

/root/repo/target/debug/examples/referee_audit-4b68f87b35213d9f: examples/referee_audit.rs

examples/referee_audit.rs:
