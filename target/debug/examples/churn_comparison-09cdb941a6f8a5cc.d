/root/repo/target/debug/examples/churn_comparison-09cdb941a6f8a5cc.d: examples/churn_comparison.rs

/root/repo/target/debug/examples/churn_comparison-09cdb941a6f8a5cc: examples/churn_comparison.rs

examples/churn_comparison.rs:
