//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of the criterion API its benches use: [`Criterion`] with
//! `bench_function`/`benchmark_group`, [`Bencher::iter`] and
//! [`Bencher::iter_batched`], the configuration builders the benches call
//! (`sample_size`, `warm_up_time`, `measurement_time`), and the
//! [`criterion_group!`]/[`criterion_main!`] macros (both plain and
//! `name/config/targets` forms).
//!
//! There is no statistics engine: each benchmark is timed with a simple
//! best-of-samples loop and reported as plain text. That is enough to
//! compare hot paths locally; rigorous measurement belongs on real
//! criterion when a registry is available. Wall-clock use is confined to
//! this crate, which only `rom-bench` (exempt from `rom-lint` R2) links.

use std::time::{Duration, Instant};

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; warm-up is a single untimed run.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Caps the total time spent per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total time spent per benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Controls how `iter_batched` amortises setup cost; this stand-in runs
/// one setup per timed iteration regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Times closures handed to it by a benchmark function.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample per call batch.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed warm-up call, then timed batches.
        std::hint::black_box(routine());
        let iters = self.iters_per_sample;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed() / iters as u32);
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = self.iters_per_sample;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push(total / iters as u32);
    }
}

fn run_one<F>(name: &str, sample_size: usize, budget: Duration, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    let started = Instant::now();
    for _ in 0..sample_size {
        f(&mut b);
        if started.elapsed() > budget {
            break;
        }
    }
    let best = b.samples.iter().min().copied().unwrap_or(Duration::ZERO);
    let mean = if b.samples.is_empty() {
        Duration::ZERO
    } else {
        b.samples.iter().sum::<Duration>() / b.samples.len() as u32
    };
    println!(
        "bench {name}: best {best:?}, mean {mean:?} over {} samples",
        b.samples.len()
    );
}

/// Re-export so `criterion::black_box` call sites keep working.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_batched_iteration() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput);
        });
        group.finish();
    }
}
