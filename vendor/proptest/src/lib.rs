//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! a small deterministic property-testing engine that covers exactly the
//! surface the in-tree tests use: the [`proptest!`] macro, [`Strategy`]
//! with `prop_map`, integer/float range and `any::<T>()` strategies, tuple
//! strategies, weighted [`prop_oneof!`], `prop::collection::vec`, a tiny
//! `"[a-z]{1,12}"`-style regex string strategy, and the
//! [`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, on purpose:
//!
//! - **No shrinking.** A failing case reports the generated inputs and the
//!   case seed; reproduction is exact because generation is deterministic.
//! - **Fixed seeding.** Case `i` of test `t` is seeded from
//!   `hash(t) ⊕ splitmix(i)` — there is no ambient entropy, matching the
//!   workspace-wide determinism rules (`rom-lint` R2).
//! - `.proptest-regressions` files are ignored.

/// Strategy combinators and generation plumbing.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Object-safe generation, used by [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn DynStrategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: std::rc::Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A weighted choice among boxed alternatives (built by [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        alternatives: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        ///
        /// # Panics
        ///
        /// Panics if `alternatives` is empty or the weights sum to zero.
        #[must_use]
        pub fn new_weighted(alternatives: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight: u64 = alternatives.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof! needs a positive total weight");
            Union {
                alternatives,
                total_weight,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut ticket = rng.below(self.total_weight);
            for (weight, alt) in &self.alternatives {
                let weight = u64::from(*weight);
                if ticket < weight {
                    return alt.generate(rng);
                }
                ticket -= weight;
            }
            // Unreachable because ticket < total_weight, but fall back to
            // the last alternative rather than panicking.
            self.alternatives[self.alternatives.len() - 1].1.generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty => $wide:ty),+ $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    let off = rng.below(span);
                    ((self.start as $wide).wrapping_add(off as $wide)) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let off = rng.below(span + 1);
                    ((lo as $wide).wrapping_add(off as $wide)) as $t
                }
            }
        )+};
    }

    int_range_strategy!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    );

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let x = self.start + rng.unit_f64() * (self.end - self.start);
            if x < self.end {
                x
            } else {
                self.start
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let x = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
            if x < self.end {
                x
            } else {
                self.start
            }
        }
    }

    /// The `any::<T>()` full-domain strategy.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Generates any value of `T` (implemented for the primitive types the
    /// workspace tests draw from).
    #[must_use]
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(std::marker::PhantomData)
    }

    macro_rules! any_uint_strategy {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    any_uint_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A / 0, B / 1),
        (A / 0, B / 1, C / 2),
        (A / 0, B / 1, C / 2, D / 3),
        (A / 0, B / 1, C / 2, D / 3, E / 4),
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
    );

    /// `&str` regex strategies: supports literals, `[a-z0-9_]` classes
    /// (ranges and singletons), and `{m}`/`{m,n}`/`*`/`+`/`?` repetition —
    /// enough for the patterns the workspace tests use.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j], chars[j + 2]);
                            set.extend((lo..=hi).filter(|c| c.is_ascii()));
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                }
                '\\' if i + 1 < chars.len() => {
                    i += 2;
                    vec![chars[i - 1]]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");
            // Optional repetition suffix.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().unwrap_or(0),
                        n.trim().parse::<usize>().unwrap_or(8),
                    ),
                    None => {
                        let m = body.trim().parse::<usize>().unwrap_or(1);
                        (m, m)
                    }
                }
            } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
                let suffix = chars[i];
                i += 1;
                match suffix {
                    '*' => (0, 8),
                    '+' => (1, 8),
                    _ => (0, 1),
                }
            } else {
                (1, 1)
            };
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner plumbing: configuration, the per-case RNG, and failure
/// bookkeeping used by the macros.
pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 96 keeps the in-tree property
            // suites (tree mutation sequences, full-topology Dijkstra
            // cross-checks) affordable in CI while still exploring broadly.
            ProptestConfig { cases: 96 }
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The deterministic generator handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream for case `case` of the test named `name`.
        #[must_use]
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the fully qualified test name, mixed with the
            // case index: every (test, case) pair is its own stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut state = h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            splitmix64(&mut state);
            TestRng { state }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }

        /// Uniform `u64` in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            // Widening-multiply with rejection: unbiased for every n.
            let mut x = self.next_u64();
            let mut m = u128::from(x) * u128::from(n);
            let mut low = m as u64;
            if low < n {
                let threshold = n.wrapping_neg() % n;
                while low < threshold {
                    x = self.next_u64();
                    m = u128::from(x) * u128::from(n);
                    low = m as u64;
                }
            }
            (m >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
            (self.next_u64() >> 11) as f64 * SCALE
        }
    }

    /// Runs the cases of one property.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        name: &'static str,
    }

    impl TestRunner {
        /// A runner for the property named `name`.
        #[must_use]
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            TestRunner { config, name }
        }

        /// Number of cases to run.
        #[must_use]
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The RNG for case `case`.
        #[must_use]
        pub fn case_rng(&self, case: u32) -> TestRng {
            TestRng::for_case(self.name, case)
        }

        /// The property's fully qualified name.
        #[must_use]
        pub fn name(&self) -> &'static str {
            self.name
        }
    }
}

/// The subset of the `proptest` prelude the workspace tests import.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of proptest's `prelude::prop` module shortcut.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("{}", format!($($fmt)*));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: both sides are {:?}", l);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Weighted (or unweighted) choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares deterministic property tests.
///
/// Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @config($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let runner = $crate::test_runner::TestRunner::new(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                let mut rng = runner.case_rng(case);
                let values = ($($crate::strategy::Strategy::generate(&($strat), &mut rng),)+);
                let replay = format!("{values:?}");
                let ($($pat,)+) = values;
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || $body,
                ));
                if let Err(cause) = outcome {
                    eprintln!(
                        "proptest case {case}/{total} of {name} failed with inputs {replay}",
                        total = runner.cases(),
                        name = runner.name(),
                    );
                    ::std::panic::resume_unwind(cause);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let x = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&x));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = prop::collection::vec(0u64..1000, 1..50);
        let a = Strategy::generate(&strat, &mut TestRng::for_case("t", 4));
        let b = Strategy::generate(&strat, &mut TestRng::for_case("t", 4));
        assert_eq!(a, b);
        let c = Strategy::generate(&strat, &mut TestRng::for_case("t", 5));
        // Different case index gives a different stream (vanishingly
        // unlikely to collide on a 1..50-length random vector).
        assert_ne!(a, c);
    }

    #[test]
    fn oneof_honours_weights() {
        let strat = prop_oneof![
            9 => Just(true),
            1 => Just(false),
        ];
        let mut rng = TestRng::for_case("weights", 0);
        let hits = (0..5000)
            .filter(|_| Strategy::generate(&strat, &mut rng))
            .count();
        assert!((4000..5000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn regex_strategy_shapes_strings() {
        let mut rng = TestRng::for_case("regex", 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The macro itself: patterns, multiple bindings, trailing comma.
        #[test]
        fn macro_smoke((a, b) in (0u8..10, 0u8..10), v in prop::collection::vec(any::<u16>(), 0..4),) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
