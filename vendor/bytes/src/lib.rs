//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the tiny slice of the `bytes` API that `rom-wire` actually uses:
//! [`BytesMut`] as a growable write buffer, [`Bytes`] as a frozen read
//! cursor, and the [`Buf`]/[`BufMut`] traits with the little-endian
//! accessors the codec calls. Everything is a plain contiguous `Vec<u8>`
//! underneath — no ref-counted sharing, no vectored IO — which is exactly
//! what a deterministic in-process simulation needs and nothing more.

/// Read access to a contiguous buffer of bytes.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes as one contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Copies `dst.len()` bytes out of the buffer.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write access to a growable buffer of bytes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A growable, writable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor, so a `BytesMut` can also be consumed via [`Buf`].
    pos: usize,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            pos: 0,
        }
    }

    /// Bytes written so far (not yet consumed).
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the buffer holds no unconsumed bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freezes the buffer into an immutable [`Bytes`] read cursor.
    #[must_use]
    pub fn freeze(mut self) -> Bytes {
        let data = self.data.split_off(self.pos);
        Bytes { data, pos: 0 }
    }

    /// Discards everything written so far.
    pub fn clear(&mut self) {
        self.data.clear();
        self.pos = 0;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of BytesMut");
        self.pos += cnt;
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Bytes left to consume.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the sub-range of the unconsumed bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        Bytes::from(self.chunk()[lo..hi].to_vec())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(0x0123_4567_89ab_cdef);
        buf.put_f64_le(1.5);
        buf.put_slice(b"xyz");
        let mut frame = buf.freeze();
        assert_eq!(frame.get_u8(), 7);
        assert_eq!(frame.get_u32_le(), 0xdead_beef);
        assert_eq!(frame.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(frame.get_f64_le().to_bits(), 1.5f64.to_bits());
        let mut tail = [0u8; 3];
        frame.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(frame.remaining(), 0);
    }

    #[test]
    fn bytesmut_reads_its_own_writes() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(9);
        assert_eq!(buf.remaining(), 4);
        assert_eq!(buf.get_u32_le(), 9);
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        b.advance(3);
    }
}
