//! Property tests for the underlay: the hierarchical delay oracle is
//! *exact* (equals brute-force Dijkstra) for arbitrary small transit-stub
//! topologies, and delays form a metric.

use proptest::prelude::*;
use rom_net::{dijkstra, DelayOracle, TransitStubConfig, TransitStubNetwork, UnderlayId};
use rom_sim::SimRng;

fn arb_config() -> impl Strategy<Value = TransitStubConfig> {
    (1usize..4, 1usize..4, 1usize..3, 1usize..5, 0.0f64..0.7).prop_map(
        |(domains, per_domain, stub_domains, stub_nodes, chord)| TransitStubConfig {
            transit_domains: domains,
            transit_nodes_per_domain: per_domain,
            stub_domains_per_transit: stub_domains,
            stub_nodes_per_domain: stub_nodes,
            chord_probability: chord,
            ..TransitStubConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The oracle agrees with a fresh full-graph Dijkstra on **every**
    /// source/destination pair — no subsampling — for any topology shape
    /// and seed. The generated topologies are small (tens of nodes), so
    /// exhaustive comparison stays cheap.
    #[test]
    fn oracle_is_exact(cfg in arb_config(), seed in any::<u64>()) {
        let mut rng = SimRng::seed_from(seed);
        let net = TransitStubNetwork::generate(&cfg, &mut rng);
        prop_assert!(net.graph().is_connected());
        let oracle = DelayOracle::build(&net);
        let nodes: Vec<UnderlayId> = net.graph().nodes().collect();
        for &src in &nodes {
            let sp = dijkstra(net.graph(), src);
            for &dst in &nodes {
                let want = sp.distance(dst).expect("connected");
                let got = oracle.delay_ms(src, dst);
                prop_assert!((got - want).abs() < 1e-9, "({src},{dst}): {got} vs {want}");
            }
        }
    }

    /// Delays are symmetric, zero on the diagonal, and satisfy the
    /// triangle inequality.
    #[test]
    fn delays_form_a_metric(cfg in arb_config(), seed in any::<u64>()) {
        let mut rng = SimRng::seed_from(seed);
        let net = TransitStubNetwork::generate(&cfg, &mut rng);
        let oracle = DelayOracle::build(&net);
        let nodes: Vec<UnderlayId> = net.graph().nodes().step_by(2).collect();
        for &a in &nodes {
            prop_assert_eq!(oracle.delay_ms(a, a), 0.0);
            for &b in &nodes {
                let ab = oracle.delay_ms(a, b);
                prop_assert!((ab - oracle.delay_ms(b, a)).abs() < 1e-9);
                for &c in nodes.iter().step_by(2) {
                    prop_assert!(ab <= oracle.delay_ms(a, c) + oracle.delay_ms(c, b) + 1e-9);
                }
            }
        }
    }
}
