//! Single-source shortest paths over the underlay graph.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{Graph, UnderlayId};

/// Shortest-path distances (in milliseconds) from one source node.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: UnderlayId,
    dist: Vec<f64>,
    prev: Vec<Option<UnderlayId>>,
}

impl ShortestPaths {
    /// The source node of this tree.
    #[must_use]
    pub fn source(&self) -> UnderlayId {
        self.source
    }

    /// Distance to `node` in milliseconds; `None` if unreachable.
    #[must_use]
    pub fn distance(&self, node: UnderlayId) -> Option<f64> {
        let d = self.dist[node.index()];
        d.is_finite().then_some(d)
    }

    /// The path from the source to `node`, inclusive of both endpoints;
    /// `None` if unreachable.
    #[must_use]
    pub fn path_to(&self, node: UnderlayId) -> Option<Vec<UnderlayId>> {
        if !self.dist[node.index()].is_finite() {
            return None;
        }
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = self.prev[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: UnderlayId,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; edge weights are finite positive so the
        // partial order is total in practice.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Runs Dijkstra's algorithm from `source`.
///
/// # Examples
///
/// ```
/// use rom_net::{dijkstra, Graph, UnderlayId};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(UnderlayId(0), UnderlayId(1), 10.0);
/// g.add_edge(UnderlayId(1), UnderlayId(2), 5.0);
/// g.add_edge(UnderlayId(0), UnderlayId(2), 100.0);
///
/// let sp = dijkstra(&g, UnderlayId(0));
/// assert_eq!(sp.distance(UnderlayId(2)), Some(15.0));
/// assert_eq!(
///     sp.path_to(UnderlayId(2)).unwrap(),
///     vec![UnderlayId(0), UnderlayId(1), UnderlayId(2)]
/// );
/// ```
///
/// # Panics
///
/// Panics if `source` is out of range for `graph`.
#[must_use]
pub fn dijkstra(graph: &Graph, source: UnderlayId) -> ShortestPaths {
    let n = graph.node_count();
    assert!(source.index() < n, "source out of range");
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u.index()] {
            continue; // stale entry
        }
        for link in graph.neighbors(u) {
            let nd = d + link.delay_ms;
            if nd < dist[link.to.index()] {
                dist[link.to.index()] = nd;
                prev[link.to.index()] = Some(u);
                heap.push(HeapEntry {
                    dist: nd,
                    node: link.to,
                });
            }
        }
    }
    ShortestPaths { source, dist, prev }
}

/// All-pairs shortest paths by repeated Dijkstra. Quadratic memory — only
/// for small graphs (tests and the transit core).
#[must_use]
pub fn all_pairs(graph: &Graph) -> Vec<Vec<f64>> {
    graph
        .nodes()
        .map(|s| {
            let sp = dijkstra(graph, s);
            graph
                .nodes()
                .map(|t| sp.distance(t).unwrap_or(f64::INFINITY))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -1- 1 -1- 3, and 0 -5- 2 -1- 3
        let mut g = Graph::with_nodes(4);
        g.add_edge(UnderlayId(0), UnderlayId(1), 1.0);
        g.add_edge(UnderlayId(1), UnderlayId(3), 1.0);
        g.add_edge(UnderlayId(0), UnderlayId(2), 5.0);
        g.add_edge(UnderlayId(2), UnderlayId(3), 1.0);
        g
    }

    #[test]
    fn picks_cheapest_route() {
        let sp = dijkstra(&diamond(), UnderlayId(0));
        assert_eq!(sp.distance(UnderlayId(3)), Some(2.0));
        assert_eq!(sp.distance(UnderlayId(2)), Some(3.0)); // via 1 and 3!
        assert_eq!(
            sp.path_to(UnderlayId(2)).unwrap(),
            vec![UnderlayId(0), UnderlayId(1), UnderlayId(3), UnderlayId(2)]
        );
    }

    #[test]
    fn source_distance_zero() {
        let sp = dijkstra(&diamond(), UnderlayId(0));
        assert_eq!(sp.distance(UnderlayId(0)), Some(0.0));
        assert_eq!(sp.path_to(UnderlayId(0)).unwrap(), vec![UnderlayId(0)]);
        assert_eq!(sp.source(), UnderlayId(0));
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(UnderlayId(0), UnderlayId(1), 1.0);
        let sp = dijkstra(&g, UnderlayId(0));
        assert_eq!(sp.distance(UnderlayId(2)), None);
        assert_eq!(sp.path_to(UnderlayId(2)), None);
    }

    #[test]
    fn parallel_edges_use_cheaper() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(UnderlayId(0), UnderlayId(1), 7.0);
        g.add_edge(UnderlayId(0), UnderlayId(1), 3.0);
        let sp = dijkstra(&g, UnderlayId(0));
        assert_eq!(sp.distance(UnderlayId(1)), Some(3.0));
    }

    #[test]
    fn all_pairs_symmetric() {
        let apsp = all_pairs(&diamond());
        for (i, row) in apsp.iter().enumerate() {
            for (j, &d) in row.iter().enumerate() {
                assert_eq!(d, apsp[j][i]);
            }
            assert_eq!(row[i], 0.0);
        }
        assert_eq!(apsp[0][3], 2.0);
    }

    #[test]
    fn triangle_inequality_holds() {
        let apsp = all_pairs(&diamond());
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    assert!(apsp[i][j] <= apsp[i][k] + apsp[k][j] + 1e-9);
                }
            }
        }
    }
}
