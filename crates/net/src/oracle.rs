//! Exact pairwise-delay queries over a transit-stub underlay.
//!
//! The evaluation needs unicast delays between arbitrary member pairs —
//! for the overlay's "nearest parent" tie-breaks, for end-to-end service
//! delay along overlay paths, and as the denominator of network stretch.
//! Running Dijkstra per query would dominate simulation time, and a full
//! all-pairs table over 15 600 nodes would need ~2 GB.
//!
//! [`DelayOracle`] instead exploits the strict transit-stub hierarchy
//! (every stub domain is single-homed): the shortest path between nodes in
//! different stub domains *must* traverse both domains' attachment edges,
//! so
//!
//! ```text
//! d(u, v) = d_intra(u → attach(u)) + gw_edge(u) + d_graph(gateway(u) → v)
//! ```
//!
//! where `d_graph(gateway → ·)` comes from one full Dijkstra per transit
//! node (240 at paper scale) and `d_intra` from tiny per-domain APSP
//! tables. The composition is exact, not an approximation; the unit tests
//! verify it against brute-force Dijkstra on every pair of a small
//! topology.

use crate::dijkstra::dijkstra;
use crate::graph::UnderlayId;
use crate::transit_stub::TransitStubNetwork;

/// Precomputed exact delay queries for one [`TransitStubNetwork`].
#[derive(Debug, Clone)]
pub struct DelayOracle {
    transit_count: usize,
    stub_domain_size: usize,
    /// `transit_dist[t]` = full-graph distances from transit node `t`.
    transit_dist: Vec<Vec<f64>>,
    /// Per stub domain: row-major `size × size` intra-domain APSP.
    intra: Vec<Vec<f64>>,
    /// Per stub domain: delay of the attachment edge to the gateway.
    gateway_edge: Vec<f64>,
    /// Per stub domain: the gateway's transit node id.
    gateway: Vec<UnderlayId>,
}

impl DelayOracle {
    /// Precomputes the oracle for `net`.
    ///
    /// Cost: one Dijkstra per transit node plus one tiny Floyd–Warshall per
    /// stub domain. At paper scale (240 transit nodes, 1 920 domains of 8)
    /// this takes well under a second.
    #[must_use]
    pub fn build(net: &TransitStubNetwork) -> Self {
        let t = net.transit_count();
        let graph = net.graph();

        let transit_dist: Vec<Vec<f64>> = (0..t)
            .map(|i| {
                let sp = dijkstra(graph, UnderlayId(i as u32));
                graph
                    .nodes()
                    .map(|n| sp.distance(n).unwrap_or(f64::INFINITY))
                    .collect()
            })
            .collect();

        let domains = net.stub_domains();
        let size = domains.first().map_or(0, |d| d.size);
        let mut intra = Vec::with_capacity(domains.len());
        let mut gateway_edge = Vec::with_capacity(domains.len());
        let mut gateway = Vec::with_capacity(domains.len());
        for (idx, dom) in domains.iter().enumerate() {
            debug_assert_eq!(dom.size, size, "stub domains are uniform");
            // Floyd–Warshall over the (tiny) domain subgraph.
            let n = dom.size;
            let base = dom.first_node.0;
            let mut dist = vec![f64::INFINITY; n * n];
            for i in 0..n {
                dist[i * n + i] = 0.0;
            }
            for local in 0..n {
                let node = UnderlayId(base + local as u32);
                for link in graph.neighbors(node) {
                    if dom.contains(link.to) {
                        let j = (link.to.0 - base) as usize;
                        let d = &mut dist[local * n + j];
                        if link.delay_ms < *d {
                            *d = link.delay_ms;
                        }
                    }
                }
            }
            for k in 0..n {
                for i in 0..n {
                    let dik = dist[i * n + k];
                    if !dik.is_finite() {
                        continue;
                    }
                    for j in 0..n {
                        let alt = dik + dist[k * n + j];
                        if alt < dist[i * n + j] {
                            dist[i * n + j] = alt;
                        }
                    }
                }
            }
            intra.push(dist);
            gateway_edge.push(net.gateway_delay_ms(idx));
            gateway.push(dom.gateway);
        }

        DelayOracle {
            transit_count: t,
            stub_domain_size: size,
            transit_dist,
            intra,
            gateway_edge,
            gateway,
        }
    }

    fn locate(&self, node: UnderlayId) -> Option<(usize, usize)> {
        let idx = node.index();
        if idx < self.transit_count {
            None
        } else {
            let off = idx - self.transit_count;
            Some((off / self.stub_domain_size, off % self.stub_domain_size))
        }
    }

    /// The exact shortest-path delay between two underlay nodes, in
    /// milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range for the network the oracle was
    /// built from.
    #[must_use]
    pub fn delay_ms(&self, a: UnderlayId, b: UnderlayId) -> f64 {
        if a == b {
            return 0.0;
        }
        match (self.locate(a), self.locate(b)) {
            // Both transit: direct table lookup.
            (None, None) => self.transit_dist[a.index()][b.index()],
            // One stub endpoint: compose through its gateway.
            (Some((dom, local)), None) => self.via_gateway(dom, local, b),
            (None, Some((dom, local))) => self.via_gateway(dom, local, a),
            (Some((da, la)), Some((db, lb))) => {
                if da == db {
                    let n = self.stub_domain_size;
                    self.intra[da][la * n + lb]
                } else {
                    // Leave `a`'s domain through its attachment edge; the
                    // gateway-to-b distance already descends into b's domain.
                    self.via_gateway(da, la, b)
                }
            }
        }
    }

    /// Distance from local node `local` of stub domain `dom` to an
    /// arbitrary node `target` outside the domain, via the gateway.
    fn via_gateway(&self, dom: usize, local: usize, target: UnderlayId) -> f64 {
        let n = self.stub_domain_size;
        let to_attach = self.intra[dom][local * n]; // attachment is local index 0
        let gw = self.gateway[dom];
        to_attach + self.gateway_edge[dom] + self.transit_dist[gw.index()][target.index()]
    }

    /// Returns the candidate with the smallest delay from `from`, together
    /// with that delay. Ties resolve to the earliest candidate. `None` when
    /// `candidates` is empty.
    #[must_use]
    pub fn nearest(
        &self,
        from: UnderlayId,
        candidates: &[UnderlayId],
    ) -> Option<(UnderlayId, f64)> {
        candidates
            .iter()
            .map(|&c| (c, self.delay_ms(from, c)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transit_stub::TransitStubConfig;
    use rom_sim::SimRng;

    fn small_net(seed: u64) -> TransitStubNetwork {
        let mut rng = SimRng::seed_from(seed);
        TransitStubNetwork::generate(&TransitStubConfig::small(), &mut rng)
    }

    #[test]
    fn oracle_matches_brute_force_dijkstra() {
        let net = small_net(11);
        let oracle = DelayOracle::build(&net);
        let graph = net.graph();
        for src in graph.nodes() {
            let sp = dijkstra(graph, src);
            for dst in graph.nodes() {
                let want = sp.distance(dst).expect("connected");
                let got = oracle.delay_ms(src, dst);
                assert!(
                    (got - want).abs() < 1e-9,
                    "delay({src},{dst}): oracle {got} vs dijkstra {want}"
                );
            }
        }
    }

    #[test]
    fn oracle_exact_across_multiple_seeds() {
        // Regression guard: hierarchy composition must stay exact for any
        // random topology, not just one lucky seed.
        for seed in [1, 2, 3, 99] {
            let net = small_net(seed);
            let oracle = DelayOracle::build(&net);
            let graph = net.graph();
            let probe: Vec<UnderlayId> = graph.nodes().step_by(7).collect();
            for &src in &probe {
                let sp = dijkstra(graph, src);
                for &dst in &probe {
                    let want = sp.distance(dst).unwrap();
                    assert!((oracle.delay_ms(src, dst) - want).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn symmetry_and_identity() {
        let net = small_net(5);
        let oracle = DelayOracle::build(&net);
        let nodes: Vec<UnderlayId> = net.graph().nodes().collect();
        for &a in nodes.iter().step_by(11) {
            assert_eq!(oracle.delay_ms(a, a), 0.0);
            for &b in nodes.iter().step_by(13) {
                let ab = oracle.delay_ms(a, b);
                let ba = oracle.delay_ms(b, a);
                assert!((ab - ba).abs() < 1e-9, "asymmetry {a},{b}: {ab} vs {ba}");
            }
        }
    }

    #[test]
    fn nearest_picks_minimum() {
        let net = small_net(8);
        let oracle = DelayOracle::build(&net);
        let stubs: Vec<UnderlayId> = net.stub_nodes().collect();
        let from = stubs[0];
        let candidates = &stubs[1..20];
        let (best, d) = oracle.nearest(from, candidates).unwrap();
        for &c in candidates {
            assert!(oracle.delay_ms(from, c) >= d - 1e-12);
        }
        assert_eq!(oracle.delay_ms(from, best), d);
        assert!(oracle.nearest(from, &[]).is_none());
    }

    #[test]
    fn same_domain_beats_gateway_detour() {
        let net = small_net(21);
        let oracle = DelayOracle::build(&net);
        let dom = &net.stub_domains()[0];
        let nodes: Vec<UnderlayId> = dom.nodes().collect();
        // Intra-domain delays use the 2-4ms stub links only: with 4-node
        // domains the intra path is at most 2 hops ≈ 8 ms, always cheaper
        // than a double gateway traversal (≥ 10 ms).
        for &a in &nodes {
            for &b in &nodes {
                if a != b {
                    let d = oracle.delay_ms(a, b);
                    assert!(d < 10.0, "intra-domain delay {d} too large");
                }
            }
        }
    }
}
