//! # rom-net: the underlay network substrate
//!
//! The DSN 2006 evaluation runs its overlay on a 15 600-node GT-ITM
//! transit-stub topology. This crate rebuilds that substrate from scratch:
//!
//! - [`Graph`] / [`UnderlayId`] — a weighted undirected graph whose edge
//!   weights are link delays in milliseconds,
//! - [`dijkstra`] / [`all_pairs`] — shortest-path routing,
//! - [`TransitStubNetwork`] — the GT-ITM-style generator (transit domains,
//!   per-transit-node stub domains, the paper's §5 delay ranges),
//! - [`DelayOracle`] — exact member-to-member delay queries that exploit
//!   the strict hierarchy instead of materialising an all-pairs table.
//!
//! # Examples
//!
//! ```
//! use rom_net::{DelayOracle, TransitStubConfig, TransitStubNetwork};
//! use rom_sim::SimRng;
//!
//! let mut rng = SimRng::seed_from(42);
//! let net = TransitStubNetwork::generate(&TransitStubConfig::small(), &mut rng);
//! let oracle = DelayOracle::build(&net);
//!
//! let stubs: Vec<_> = net.stub_nodes().collect();
//! let d = oracle.delay_ms(stubs[0], stubs[10]);
//! assert!(d > 0.0);
//! assert_eq!(oracle.delay_ms(stubs[0], stubs[0]), 0.0);
//! ```

mod dijkstra;
mod graph;
mod oracle;
mod transit_stub;

pub use dijkstra::{all_pairs, dijkstra, ShortestPaths};
pub use graph::{Graph, Link, UnderlayId};
pub use oracle::DelayOracle;
pub use transit_stub::{NodeKind, StubDomain, TransitStubConfig, TransitStubNetwork};
