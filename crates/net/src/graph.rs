//! A weighted undirected graph with adjacency lists.
//!
//! The underlay network the overlay runs over is a plain weighted graph;
//! edge weights are link delays in milliseconds.

use std::fmt;

/// Index of a node in the underlay graph.
///
/// This is distinct from an overlay member identifier (`rom-overlay`'s
/// `NodeId`): many underlay nodes never host a member, and the mapping from
/// members to underlay attachment points is chosen by the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnderlayId(pub u32);

impl UnderlayId {
    /// The index as a `usize`, for slice access.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UnderlayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A directed half-edge stored in an adjacency list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// The neighbouring node.
    pub to: UnderlayId,
    /// Link delay in milliseconds.
    pub delay_ms: f64,
}

/// A weighted undirected graph.
///
/// # Examples
///
/// ```
/// use rom_net::{Graph, UnderlayId};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(UnderlayId(0), UnderlayId(1), 10.0);
/// g.add_edge(UnderlayId(1), UnderlayId(2), 5.0);
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.neighbors(UnderlayId(1)).len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adjacency: Vec<Vec<Link>>,
    edges: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    #[must_use]
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Appends a new isolated node and returns its id.
    pub fn add_node(&mut self) -> UnderlayId {
        let id = UnderlayId(u32::try_from(self.adjacency.len()).expect("graph too large"));
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected edge with the given delay.
    ///
    /// Parallel edges are permitted (shortest-path code simply ignores the
    /// slower one); self-loops are rejected.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, if `a == b`, or if
    /// `delay_ms` is not a positive finite number.
    pub fn add_edge(&mut self, a: UnderlayId, b: UnderlayId, delay_ms: f64) {
        assert!(a != b, "self-loops are not allowed");
        assert!(
            delay_ms > 0.0 && delay_ms.is_finite(),
            "delay must be positive and finite, got {delay_ms}"
        );
        assert!(a.index() < self.adjacency.len(), "node {a} out of range");
        assert!(b.index() < self.adjacency.len(), "node {b} out of range");
        self.adjacency[a.index()].push(Link { to: b, delay_ms });
        self.adjacency[b.index()].push(Link { to: a, delay_ms });
        self.edges += 1;
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// The links incident to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn neighbors(&self, node: UnderlayId) -> &[Link] {
        &self.adjacency[node.index()]
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = UnderlayId> + '_ {
        (0..self.adjacency.len()).map(|i| UnderlayId(i as u32))
    }

    /// True if every node can reach every other node.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut visited = 1;
        while let Some(u) = stack.pop() {
            for link in &self.adjacency[u] {
                let v = link.to.index();
                if !seen[v] {
                    seen[v] = true;
                    visited += 1;
                    stack.push(v);
                }
            }
        }
        visited == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = Graph::with_nodes(2);
        let c = g.add_node();
        assert_eq!(c, UnderlayId(2));
        g.add_edge(UnderlayId(0), UnderlayId(1), 1.0);
        g.add_edge(UnderlayId(1), c, 2.0);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(UnderlayId(0)).len(), 1);
        assert_eq!(g.neighbors(UnderlayId(1)).len(), 2);
        assert_eq!(g.neighbors(c)[0].to, UnderlayId(1));
        assert_eq!(g.neighbors(c)[0].delay_ms, 2.0);
    }

    #[test]
    fn connectivity() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(UnderlayId(0), UnderlayId(1), 1.0);
        g.add_edge(UnderlayId(2), UnderlayId(3), 1.0);
        assert!(!g.is_connected());
        g.add_edge(UnderlayId(1), UnderlayId(2), 1.0);
        assert!(g.is_connected());
    }

    #[test]
    fn trivial_graphs_are_connected() {
        assert!(Graph::with_nodes(0).is_connected());
        assert!(Graph::with_nodes(1).is_connected());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut g = Graph::with_nodes(1);
        g.add_edge(UnderlayId(0), UnderlayId(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_delay_rejected() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(UnderlayId(0), UnderlayId(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(UnderlayId(0), UnderlayId(5), 1.0);
    }

    #[test]
    fn nodes_iterator() {
        let g = Graph::with_nodes(3);
        let ids: Vec<UnderlayId> = g.nodes().collect();
        assert_eq!(ids, vec![UnderlayId(0), UnderlayId(1), UnderlayId(2)]);
    }
}
