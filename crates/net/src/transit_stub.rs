//! GT-ITM-style transit-stub topology generation.
//!
//! The paper's underlay is a 15 600-node transit-stub network produced by
//! the GT-ITM generator of Zegura et al. (INFOCOM '96), with link delays
//! drawn uniformly from `[15, 25]` ms between transit nodes, `[5, 9]` ms
//! between transit and stub nodes, and `[2, 4]` ms between stub nodes. This
//! module recreates that model from scratch:
//!
//! - a set of *transit domains*, each an internally connected mesh of
//!   transit (backbone) nodes, with the domains themselves connected;
//! - per transit node, several *stub domains* — small access networks whose
//!   single attachment edge to their transit gateway makes the hierarchy
//!   strict (no multi-homing), which the [`crate::DelayOracle`] exploits.

use rom_sim::SimRng;

use crate::graph::{Graph, UnderlayId};

/// Parameters of the transit-stub generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitStubConfig {
    /// Number of transit (backbone) domains.
    pub transit_domains: usize,
    /// Transit nodes per transit domain.
    pub transit_nodes_per_domain: usize,
    /// Stub domains attached to each transit node.
    pub stub_domains_per_transit: usize,
    /// Stub nodes per stub domain.
    pub stub_nodes_per_domain: usize,
    /// Delay range (ms) for transit–transit links.
    pub transit_transit_delay_ms: (f64, f64),
    /// Delay range (ms) for transit–stub attachment links.
    pub transit_stub_delay_ms: (f64, f64),
    /// Delay range (ms) for stub–stub links.
    pub stub_stub_delay_ms: (f64, f64),
    /// Probability of each extra chord edge inside a domain (on top of the
    /// ring that guarantees connectivity).
    pub chord_probability: f64,
}

impl TransitStubConfig {
    /// The paper's topology: 240 transit nodes and 15 360 stub nodes
    /// (15 600 total), with the §5 delay ranges.
    #[must_use]
    pub fn paper() -> Self {
        TransitStubConfig {
            transit_domains: 10,
            transit_nodes_per_domain: 24,
            stub_domains_per_transit: 8,
            stub_nodes_per_domain: 8,
            ..TransitStubConfig::default()
        }
    }

    /// A small topology for unit tests and quick experiments
    /// (4 × 4 transit nodes, 2 × 4 stubs per transit node ⇒ 144 nodes).
    #[must_use]
    pub fn small() -> Self {
        TransitStubConfig {
            transit_domains: 4,
            transit_nodes_per_domain: 4,
            stub_domains_per_transit: 2,
            stub_nodes_per_domain: 4,
            ..TransitStubConfig::default()
        }
    }

    /// A topology scaled so that it offers at least `members` stub nodes,
    /// keeping the paper's delay ranges and roughly its transit:stub ratio.
    ///
    /// # Panics
    ///
    /// Panics if `members == 0`.
    #[must_use]
    pub fn sized_for(members: usize) -> Self {
        assert!(members > 0);
        let mut cfg = TransitStubConfig::paper();
        // Shrink the per-transit stub population until the next step down
        // would not fit `members`, then shrink the core similarly.
        while cfg.transit_domains > 2 && cfg.stub_node_count() / 2 >= members {
            cfg.transit_domains /= 2;
        }
        while cfg.transit_nodes_per_domain > 2 && cfg.stub_node_count() / 2 >= members {
            cfg.transit_nodes_per_domain /= 2;
        }
        cfg
    }

    /// Total transit nodes.
    #[must_use]
    pub fn transit_node_count(&self) -> usize {
        self.transit_domains * self.transit_nodes_per_domain
    }

    /// Total stub nodes.
    #[must_use]
    pub fn stub_node_count(&self) -> usize {
        self.transit_node_count() * self.stub_domains_per_transit * self.stub_nodes_per_domain
    }

    /// Total nodes in the generated graph.
    #[must_use]
    pub fn total_node_count(&self) -> usize {
        self.transit_node_count() + self.stub_node_count()
    }

    /// Total number of stub domains.
    #[must_use]
    pub fn stub_domain_count(&self) -> usize {
        self.transit_node_count() * self.stub_domains_per_transit
    }

    fn validate(&self) {
        assert!(self.transit_domains > 0, "need at least one transit domain");
        assert!(
            self.transit_nodes_per_domain > 0,
            "need at least one transit node per domain"
        );
        assert!(
            self.stub_nodes_per_domain > 0,
            "stub domains cannot be empty"
        );
        for (lo, hi) in [
            self.transit_transit_delay_ms,
            self.transit_stub_delay_ms,
            self.stub_stub_delay_ms,
        ] {
            assert!(lo > 0.0 && hi > lo, "invalid delay range [{lo}, {hi})");
        }
        assert!(
            (0.0..=1.0).contains(&self.chord_probability),
            "chord probability must be in [0, 1]"
        );
    }
}

impl Default for TransitStubConfig {
    /// The paper's delay ranges with a small default shape.
    fn default() -> Self {
        TransitStubConfig {
            transit_domains: 4,
            transit_nodes_per_domain: 4,
            stub_domains_per_transit: 2,
            stub_nodes_per_domain: 4,
            transit_transit_delay_ms: (15.0, 25.0),
            transit_stub_delay_ms: (5.0, 9.0),
            stub_stub_delay_ms: (2.0, 4.0),
            chord_probability: 0.2,
        }
    }
}

/// One stub domain: a small access network hanging off a transit gateway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StubDomain {
    /// The transit node this domain attaches to.
    pub gateway: UnderlayId,
    /// The stub node that carries the attachment edge.
    pub attachment: UnderlayId,
    /// All stub nodes in the domain (contiguous ids).
    pub first_node: UnderlayId,
    /// Number of nodes in the domain.
    pub size: usize,
}

impl StubDomain {
    /// Iterates over the nodes of this domain.
    pub fn nodes(&self) -> impl Iterator<Item = UnderlayId> + '_ {
        (0..self.size as u32).map(|i| UnderlayId(self.first_node.0 + i))
    }

    /// True if `node` belongs to this domain.
    #[must_use]
    pub fn contains(&self, node: UnderlayId) -> bool {
        node.0 >= self.first_node.0 && node.0 < self.first_node.0 + self.size as u32
    }
}

/// The role of an underlay node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Backbone node in the given transit domain.
    Transit {
        /// Index of the transit domain.
        domain: usize,
    },
    /// Access node in the given stub domain.
    Stub {
        /// Index into [`TransitStubNetwork::stub_domains`].
        domain: usize,
    },
}

/// A generated transit-stub underlay.
#[derive(Debug, Clone)]
pub struct TransitStubNetwork {
    config: TransitStubConfig,
    graph: Graph,
    kinds: Vec<NodeKind>,
    stub_domains: Vec<StubDomain>,
    gateway_delays: Vec<f64>,
}

impl TransitStubNetwork {
    /// Generates a topology from `config` using randomness from `rng`.
    ///
    /// Layout: transit nodes occupy ids `0..T`, stub nodes `T..T+S`, with
    /// each stub domain contiguous.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see the field docs).
    #[must_use]
    pub fn generate(config: &TransitStubConfig, rng: &mut SimRng) -> Self {
        config.validate();
        let t = config.transit_node_count();
        let total = config.total_node_count();
        let mut graph = Graph::with_nodes(total);
        let mut kinds = Vec::with_capacity(total);

        // Transit domains: ring + chords internally.
        for d in 0..config.transit_domains {
            let base = d * config.transit_nodes_per_domain;
            for i in 0..config.transit_nodes_per_domain {
                kinds.push(NodeKind::Transit { domain: d });
                let _ = i;
            }
            connect_domain(
                &mut graph,
                base,
                config.transit_nodes_per_domain,
                config.transit_transit_delay_ms,
                config.chord_probability,
                rng,
            );
        }

        // Inter-domain transit links: a ring of domains plus random extras,
        // each realized between random nodes of the two domains.
        let (lo, hi) = config.transit_transit_delay_ms;
        if config.transit_domains > 1 {
            for d in 0..config.transit_domains {
                let e = (d + 1) % config.transit_domains;
                if config.transit_domains == 2 && d == 1 {
                    break; // avoid a duplicate edge in the 2-domain ring
                }
                let a = domain_node(config, d, rng);
                let b = domain_node(config, e, rng);
                graph.add_edge(a, b, rng.range_f64(lo, hi));
            }
            // Extra random inter-domain links for path diversity.
            for d in 0..config.transit_domains {
                for e in (d + 2)..config.transit_domains {
                    if rng.chance(config.chord_probability) {
                        let a = domain_node(config, d, rng);
                        let b = domain_node(config, e, rng);
                        graph.add_edge(a, b, rng.range_f64(lo, hi));
                    }
                }
            }
        }

        // Stub domains.
        let mut stub_domains = Vec::with_capacity(config.stub_domain_count());
        let mut gateway_delays = Vec::with_capacity(config.stub_domain_count());
        let mut next = t;
        let (slo, shi) = config.stub_stub_delay_ms;
        let (alo, ahi) = config.transit_stub_delay_ms;
        for gw_idx in 0..t {
            for _ in 0..config.stub_domains_per_transit {
                let first = next;
                next += config.stub_nodes_per_domain;
                let domain_index = stub_domains.len();
                for _ in 0..config.stub_nodes_per_domain {
                    kinds.push(NodeKind::Stub {
                        domain: domain_index,
                    });
                }
                connect_domain(
                    &mut graph,
                    first,
                    config.stub_nodes_per_domain,
                    (slo, shi),
                    config.chord_probability,
                    rng,
                );
                let gateway = UnderlayId(gw_idx as u32);
                let attachment = UnderlayId(first as u32);
                let gw_delay = rng.range_f64(alo, ahi);
                graph.add_edge(attachment, gateway, gw_delay);
                gateway_delays.push(gw_delay);
                stub_domains.push(StubDomain {
                    gateway,
                    attachment,
                    first_node: attachment,
                    size: config.stub_nodes_per_domain,
                });
            }
        }

        TransitStubNetwork {
            config: config.clone(),
            graph,
            kinds,
            stub_domains,
            gateway_delays,
        }
    }

    /// The generation parameters.
    #[must_use]
    pub fn config(&self) -> &TransitStubConfig {
        &self.config
    }

    /// The underlying weighted graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The role of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn kind(&self, node: UnderlayId) -> NodeKind {
        self.kinds[node.index()]
    }

    /// All stub domains.
    #[must_use]
    pub fn stub_domains(&self) -> &[StubDomain] {
        &self.stub_domains
    }

    /// Delay of the attachment edge of stub domain `index`.
    #[must_use]
    pub fn gateway_delay_ms(&self, index: usize) -> f64 {
        self.gateway_delays[index]
    }

    /// All stub node ids (the candidate member attachment points).
    pub fn stub_nodes(&self) -> impl Iterator<Item = UnderlayId> + '_ {
        let t = self.config.transit_node_count() as u32;
        let total = self.config.total_node_count() as u32;
        (t..total).map(UnderlayId)
    }

    /// Number of transit nodes (ids `0..transit_count`).
    #[must_use]
    pub fn transit_count(&self) -> usize {
        self.config.transit_node_count()
    }
}

/// Picks a random node of transit domain `d`.
fn domain_node(config: &TransitStubConfig, d: usize, rng: &mut SimRng) -> UnderlayId {
    let base = d * config.transit_nodes_per_domain;
    UnderlayId((base + rng.index(config.transit_nodes_per_domain)) as u32)
}

/// Connects `size` contiguous nodes starting at `base` into a ring plus
/// random chords, with delays drawn from `range`.
fn connect_domain(
    graph: &mut Graph,
    base: usize,
    size: usize,
    range: (f64, f64),
    chord_probability: f64,
    rng: &mut SimRng,
) {
    let (lo, hi) = range;
    if size == 1 {
        return;
    }
    for i in 0..size {
        let j = (i + 1) % size;
        if size == 2 && i == 1 {
            break; // 2-node ring would duplicate the edge
        }
        graph.add_edge(
            UnderlayId((base + i) as u32),
            UnderlayId((base + j) as u32),
            rng.range_f64(lo, hi),
        );
    }
    for i in 0..size {
        for j in (i + 2)..size {
            // Skip the ring's wrap-around pair.
            if i == 0 && j == size - 1 {
                continue;
            }
            if rng.chance(chord_probability) {
                graph.add_edge(
                    UnderlayId((base + i) as u32),
                    UnderlayId((base + j) as u32),
                    rng.range_f64(lo, hi),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section5() {
        let cfg = TransitStubConfig::paper();
        assert_eq!(cfg.total_node_count(), 15_600);
        assert_eq!(cfg.stub_node_count(), 15_360);
        assert_eq!(cfg.transit_node_count(), 240);
        assert_eq!(cfg.transit_transit_delay_ms, (15.0, 25.0));
        assert_eq!(cfg.transit_stub_delay_ms, (5.0, 9.0));
        assert_eq!(cfg.stub_stub_delay_ms, (2.0, 4.0));
    }

    #[test]
    fn small_network_is_connected_and_typed() {
        let mut rng = SimRng::seed_from(1);
        let net = TransitStubNetwork::generate(&TransitStubConfig::small(), &mut rng);
        assert!(net.graph().is_connected());
        assert_eq!(net.graph().node_count(), net.config().total_node_count());
        let transit = net
            .graph()
            .nodes()
            .filter(|&n| matches!(net.kind(n), NodeKind::Transit { .. }))
            .count();
        assert_eq!(transit, net.config().transit_node_count());
        assert_eq!(net.stub_nodes().count(), net.config().stub_node_count());
    }

    #[test]
    fn stub_domains_are_contiguous_and_sized() {
        let mut rng = SimRng::seed_from(2);
        let cfg = TransitStubConfig::small();
        let net = TransitStubNetwork::generate(&cfg, &mut rng);
        assert_eq!(net.stub_domains().len(), cfg.stub_domain_count());
        for (i, dom) in net.stub_domains().iter().enumerate() {
            assert_eq!(dom.size, cfg.stub_nodes_per_domain);
            for node in dom.nodes() {
                assert!(dom.contains(node));
                assert_eq!(net.kind(node), NodeKind::Stub { domain: i });
            }
            assert!(!dom.contains(dom.gateway));
            // The gateway is a transit node.
            assert!(matches!(net.kind(dom.gateway), NodeKind::Transit { .. }));
            assert!(net.gateway_delay_ms(i) >= 5.0 && net.gateway_delay_ms(i) < 9.0);
        }
    }

    #[test]
    fn delays_within_configured_ranges() {
        let mut rng = SimRng::seed_from(3);
        let net = TransitStubNetwork::generate(&TransitStubConfig::small(), &mut rng);
        for node in net.graph().nodes() {
            for link in net.graph().neighbors(node) {
                let ends = (net.kind(node), net.kind(link.to));
                let ok = match ends {
                    (NodeKind::Transit { .. }, NodeKind::Transit { .. }) => {
                        (15.0..25.0).contains(&link.delay_ms)
                    }
                    (NodeKind::Stub { domain: a }, NodeKind::Stub { domain: b }) => {
                        assert_eq!(a, b, "stub-stub edges never cross domains");
                        (2.0..4.0).contains(&link.delay_ms)
                    }
                    _ => (5.0..9.0).contains(&link.delay_ms),
                };
                assert!(ok, "edge {node}->{} delay {}", link.to, link.delay_ms);
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let gen = |seed| {
            let mut rng = SimRng::seed_from(seed);
            TransitStubNetwork::generate(&TransitStubConfig::small(), &mut rng)
        };
        let a = gen(77);
        let b = gen(77);
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
        for node in a.graph().nodes() {
            assert_eq!(a.graph().neighbors(node), b.graph().neighbors(node));
        }
    }

    #[test]
    fn tiny_domains_do_not_duplicate_ring_edges() {
        let cfg = TransitStubConfig {
            transit_domains: 2,
            transit_nodes_per_domain: 2,
            stub_domains_per_transit: 1,
            stub_nodes_per_domain: 2,
            chord_probability: 1.0, // maximize chance of hitting the edge cases
            ..TransitStubConfig::default()
        };
        let mut rng = SimRng::seed_from(5);
        let net = TransitStubNetwork::generate(&cfg, &mut rng);
        assert!(net.graph().is_connected());
    }

    #[test]
    fn single_node_domains_supported() {
        let cfg = TransitStubConfig {
            transit_domains: 1,
            transit_nodes_per_domain: 1,
            stub_domains_per_transit: 2,
            stub_nodes_per_domain: 1,
            ..TransitStubConfig::default()
        };
        let mut rng = SimRng::seed_from(6);
        let net = TransitStubNetwork::generate(&cfg, &mut rng);
        assert!(net.graph().is_connected());
        assert_eq!(net.graph().node_count(), 3);
    }

    #[test]
    fn sized_for_covers_membership() {
        for members in [10, 100, 2000, 14_000] {
            let cfg = TransitStubConfig::sized_for(members);
            assert!(
                cfg.stub_node_count() >= members,
                "{members} members need {} stubs",
                cfg.stub_node_count()
            );
        }
        // Full paper scale is preserved for the largest runs.
        assert_eq!(
            TransitStubConfig::sized_for(14_000).stub_node_count(),
            15_360
        );
    }
}
