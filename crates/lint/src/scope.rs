//! Scope-aware analysis on top of the token stream.
//!
//! R1–R4 are token-shape rules; the v2 rule families (R5–R7) need just
//! enough structure to ask *"is this binding used after that call?"*.
//! This module builds that structure directly over the lexer's output: a
//! brace-tracked scope stack of `let` bindings, each classified by the
//! provenance of its initializer (arena-index-producing call, RNG
//! construction), plus dotted receiver paths for method calls. It is
//! deliberately **not** a Rust parser — no expression trees, no types,
//! no macro expansion — just bindings, scopes, statement order and
//! method receivers, which is exactly the substrate the scope-aware
//! rules need. The known blind spots (indices bound by `for` patterns or
//! multi-binding `let` tuples, mutation through a re-borrowed alias) are
//! accepted: the dynamic generation check in the arena backstops what
//! the static side cannot see.
//!
//! Two analyses are produced in a single walk:
//!
//! - **stale arena indices** (R5): a binding whose initializer called an
//!   index *producer* (`index_of`, `parent_ix`, `children_ix`, `intern`)
//!   on some receiver is invalidated when a *mutator* (`attach`,
//!   `remove`, `swap_with_parent`, …) is later called on that same
//!   receiver; any use after that point is reported, unless the binding
//!   was re-interned (re-assigned or shadowed) first.
//! - **RNG clones** (R6 input): a binding whose initializer constructed
//!   or forked a `SimRng` is a stream; calling `.clone()` on it mints an
//!   ad-hoc duplicate stream.

use crate::lexer::{LexedFile, Token, TokenKind};

/// Method names that hand out arena indices.
pub const INDEX_PRODUCERS: &[&str] = &["index_of", "parent_ix", "children_ix", "intern"];

/// `&mut`-receiver tree operations that may free or recycle arena slots
/// (or restructure the tree under an index).
pub const TREE_MUTATORS: &[&str] = &[
    "attach",
    "reattach",
    "detach",
    "remove",
    "replace",
    "usurp",
    "swap_with_parent",
    "set_bandwidth",
    "switch",
];

/// A use of an arena-index binding after a mutation of its source tree.
#[derive(Debug, Clone)]
pub struct StaleIndexUse {
    /// The binding's name.
    pub name: String,
    /// Line the binding was interned on.
    pub bind_line: u32,
    /// The receiver the index was produced from (e.g. `self.tree`).
    pub receiver: String,
    /// The producing method (e.g. `index_of`).
    pub producer: String,
    /// The mutating method that invalidated it (e.g. `remove`).
    pub mutator: String,
    /// Line of the mutation call.
    pub mutate_line: u32,
    /// Line of the offending use.
    pub use_line: u32,
    /// Token index of the offending use (for test-region checks).
    pub token_index: usize,
}

/// A `.clone()` call on an RNG-stream binding.
#[derive(Debug, Clone)]
pub struct RngClone {
    /// The cloned binding's name.
    pub name: String,
    /// Line of the `.clone()` call.
    pub line: u32,
    /// Token index of the `clone` identifier.
    pub token_index: usize,
}

/// The findings of one scope-aware walk over a file.
#[derive(Debug, Default)]
pub struct Analysis {
    /// R5 candidates, in token order.
    pub stale_uses: Vec<StaleIndexUse>,
    /// R6 clone candidates, in token order.
    pub rng_clones: Vec<RngClone>,
}

#[derive(Debug, Clone)]
enum Provenance {
    /// Produced by an index producer on `receiver`.
    ArenaIndex { receiver: String, producer: String },
    /// A `SimRng` stream (seeded, forked, or annotated).
    Rng,
}

#[derive(Debug, Clone)]
struct Binding {
    name: String,
    line: u32,
    provenance: Provenance,
    /// `Some((mutator, line))` once a mutation invalidated this binding.
    stale: Option<(String, u32)>,
    /// First token index *after* the invalidating call (uses inside the
    /// mutation call's own argument list are not "after" it).
    stale_after: usize,
}

/// Runs the scope-aware walk over a lexed file.
#[must_use]
pub fn analyze(lexed: &LexedFile) -> Analysis {
    let toks = &lexed.tokens;
    let mut out = Analysis::default();
    // Innermost scope last; bindings shadow outer ones by name.
    let mut scopes: Vec<Vec<Binding>> = vec![Vec::new()];
    let mut i = 0usize;
    while i < toks.len() {
        let text = toks[i].text.as_str();
        match text {
            "{" => scopes.push(Vec::new()),
            "}" => {
                if scopes.len() > 1 {
                    scopes.pop();
                }
            }
            "let" => {
                if let Some(parsed) = parse_let(toks, i) {
                    bind(&mut scopes, parsed);
                    // Re-scan the initializer normally (it may *use* other
                    // bindings or call mutators) — only skip the pattern
                    // tokens so the defined name is not read as a use.
                    i = parsed_header_end(toks, i);
                    continue;
                }
            }
            _ => {
                if toks[i].kind == TokenKind::Ident {
                    handle_ident(toks, i, &mut scopes, &mut out);
                }
            }
        }
        i += 1;
    }
    out
}

/// A successfully parsed `let` header with a provenance the walker
/// tracks (arena index or RNG stream).
#[derive(Debug, Clone)]
struct ParsedLet {
    name: String,
    name_idx: usize,
    line: u32,
    provenance: Provenance,
}

/// Parses `let [mut] name [: Ty] = init` and `let Some(name)/Ok(name) =
/// init else/{`. Returns `None` for patterns this walker does not model
/// (tuples, structs, plain declarations without initializer) and for
/// initializers with no tracked provenance.
fn parse_let(toks: &[Token], let_idx: usize) -> Option<ParsedLet> {
    let mut j = let_idx + 1;
    if toks.get(j).map(|t| t.text.as_str()) == Some("mut") {
        j += 1;
    }
    // Optional single-binding wrapper pattern: Some(x) / Ok(x).
    let name_idx = if matches!(toks.get(j).map(|t| t.text.as_str()), Some("Some" | "Ok"))
        && toks.get(j + 1).map(|t| t.text.as_str()) == Some("(")
        && toks.get(j + 2).is_some_and(|t| t.kind == TokenKind::Ident)
        && toks.get(j + 3).map(|t| t.text.as_str()) == Some(")")
    {
        let inner = if toks.get(j + 2).map(|t| t.text.as_str()) == Some("mut") {
            return None; // `Some(mut x)` — rare; skip rather than mis-bind
        } else {
            j + 2
        };
        j += 4;
        inner
    } else if toks.get(j).is_some_and(|t| t.kind == TokenKind::Ident) {
        let n = j;
        j += 1;
        n
    } else {
        return None;
    };
    // Optional type annotation. Only an *exact* `: NodeIndex`/`: SimRng`
    // annotation classifies the binding on its own — `Vec<NodeIndex>` and
    // friends are containers whose elements this walker does not model.
    let mut annotated_index = false;
    let mut annotated_rng = false;
    if toks.get(j).map(|t| t.text.as_str()) == Some(":") {
        let ann_start = j + 1;
        // Consume annotation tokens up to `=` / `;` at depth 0.
        let mut depth = 0i32;
        while let Some(t) = toks.get(j) {
            match t.text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                "=" if depth <= 0 => break,
                ";" if depth <= 0 => return None,
                _ => {}
            }
            j += 1;
        }
        let ann = &toks[ann_start..j];
        annotated_index = ann.len() == 1 && ann[0].text == "NodeIndex";
        annotated_rng = ann.len() == 1 && ann[0].text == "SimRng";
    }
    if toks.get(j).map(|t| t.text.as_str()) != Some("=") {
        return None;
    }
    let init_start = j + 1;
    let init_end = init_extent(toks, init_start);
    let init = &toks[init_start..init_end];
    let provenance = if let Some((dot, producer)) = find_producer_call(init) {
        // The receiver must be a plain dotted ident path; anything else
        // (call results, indexing) is left untracked.
        let receiver = receiver_path(toks, init_start + dot)?;
        Provenance::ArenaIndex {
            receiver,
            producer: producer.to_string(),
        }
    } else if annotated_index {
        // Annotated `: NodeIndex` with no visible producer call:
        // conservatively tie to any mutated receiver.
        Provenance::ArenaIndex {
            receiver: "*".to_string(),
            producer: "type annotation".to_string(),
        }
    } else if annotated_rng || init_is_rng(init) {
        Provenance::Rng
    } else {
        return None;
    };
    Some(ParsedLet {
        name: toks[name_idx].text.clone(),
        name_idx,
        line: toks[name_idx].line,
        provenance,
    })
}

/// First token index past the `let` pattern (so the walk resumes inside
/// the initializer without re-reading the bound name as a use).
fn parsed_header_end(toks: &[Token], let_idx: usize) -> usize {
    let mut j = let_idx + 1;
    let mut depth = 0i32;
    while let Some(t) = toks.get(j) {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "=" if depth <= 0 => return j + 1,
            ";" | "{" if depth <= 0 => return j, // malformed / no init
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// The initializer's token extent: up to `;`, `else`, or a block-opening
/// `{` at depth 0 (covers plain `let`, `let … else`, and `if let`).
fn init_extent(toks: &[Token], start: usize) -> usize {
    let mut depth = 0i32;
    let mut j = start;
    while let Some(t) = toks.get(j) {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            ";" | "else" if depth <= 0 => return j,
            "{" if depth <= 0 => return j,
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Finds the first `.producer(` call in the initializer; returns the
/// offset of the `.` and the producer name.
fn find_producer_call<'a>(init: &'a [Token]) -> Option<(usize, &'a str)> {
    for (k, t) in init.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && INDEX_PRODUCERS.contains(&t.text.as_str())
            && k >= 1
            && init[k - 1].text == "."
            && init.get(k + 1).map(|n| n.text.as_str()) == Some("(")
        {
            return Some((k - 1, t.text.as_str()));
        }
    }
    None
}

/// Whether the initializer mints an RNG stream (`SimRng::seed_from`,
/// `.fork(…)`, or a `seed_from`/`seed_from_u64` constructor call).
fn init_is_rng(init: &[Token]) -> bool {
    init.iter().enumerate().any(|(k, t)| {
        t.kind == TokenKind::Ident
            && match t.text.as_str() {
                "seed_from" | "seed_from_u64" => {
                    init.get(k + 1).map(|n| n.text.as_str()) == Some("(")
                }
                "fork" => {
                    k >= 1
                        && init[k - 1].text == "."
                        && init.get(k + 1).map(|n| n.text.as_str()) == Some("(")
                }
                _ => false,
            }
    })
}

fn bind(scopes: &mut [Vec<Binding>], parsed: ParsedLet) {
    let scope = scopes.last_mut().expect("scope stack never empty");
    // Shadowing within the same scope replaces the old binding (and any
    // staleness it carried) — shadowed re-interning is a fix, not a bug.
    scope.retain(|b| b.name != parsed.name);
    scope.push(Binding {
        name: parsed.name,
        line: parsed.line,
        provenance: parsed.provenance,
        stale: None,
        stale_after: parsed.name_idx,
    });
}

/// The dotted receiver path ending at the `.` at `dot` — e.g. for
/// `self.tree.attach(…)` with `dot` on the second `.`, returns
/// `"self.tree"`. `None` when the receiver is not a plain ident path
/// (calls, indexing, parenthesized expressions).
#[must_use]
pub fn receiver_path(toks: &[Token], dot: usize) -> Option<String> {
    if dot == 0 || toks[dot].text != "." {
        return None;
    }
    let mut j = dot - 1;
    if toks[j].kind != TokenKind::Ident {
        return None;
    }
    let mut segments = vec![toks[j].text.as_str()];
    while j >= 2 && toks[j - 1].text == "." && toks[j - 2].kind == TokenKind::Ident {
        j -= 2;
        segments.push(toks[j].text.as_str());
    }
    segments.reverse();
    Some(segments.join("."))
}

/// Index one past the `)` matching the `(` at `open`.
#[must_use]
pub fn matching_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

fn lookup_mut<'a>(scopes: &'a mut [Vec<Binding>], name: &str) -> Option<&'a mut Binding> {
    scopes
        .iter_mut()
        .rev()
        .find_map(|scope| scope.iter_mut().rev().find(|b| b.name == name))
}

fn handle_ident(
    toks: &[Token],
    i: usize,
    scopes: &mut Vec<Vec<Binding>>,
    out: &mut Analysis,
) {
    let name = toks[i].text.as_str();
    let is_method_call = i >= 1
        && toks[i - 1].text == "."
        && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(");

    if is_method_call {
        if TREE_MUTATORS.contains(&name) {
            if let Some(receiver) = receiver_path(toks, i - 1) {
                let after = matching_paren(toks, i + 1);
                for scope in scopes.iter_mut() {
                    for b in scope.iter_mut() {
                        let matches = match &b.provenance {
                            Provenance::ArenaIndex { receiver: r, .. } => {
                                r == &receiver || r == "*"
                            }
                            Provenance::Rng => false,
                        };
                        if matches && b.stale.is_none() {
                            b.stale = Some((name.to_string(), toks[i].line));
                            b.stale_after = after;
                        }
                    }
                }
            }
        } else if name == "clone" {
            if let Some(receiver) = receiver_path(toks, i - 1) {
                if !receiver.contains('.') {
                    if let Some(b) = lookup_mut(scopes, &receiver) {
                        if matches!(b.provenance, Provenance::Rng) {
                            out.rng_clones.push(RngClone {
                                name: receiver,
                                line: toks[i].line,
                                token_index: i,
                            });
                        }
                    }
                }
            }
        }
        return;
    }

    // A plain occurrence of a tracked name: field access (`x.ix`) is not
    // a use of the binding; a re-assignment re-interns it.
    if i >= 1 && toks[i - 1].text == "." {
        return;
    }
    let reassigned = toks.get(i + 1).map(|t| t.text.as_str()) == Some("=")
        && toks.get(i + 2).map(|t| t.text.as_str()) != Some("=")
        && !matches!(
            toks.get(i.wrapping_sub(1)),
            Some(p) if p.kind == TokenKind::Punct
                && matches!(p.text.as_str(), "=" | "!" | "<" | ">")
        );
    let Some(b) = lookup_mut(scopes, name) else {
        return;
    };
    if reassigned {
        b.stale = None;
        return;
    }
    if let Some((mutator, mutate_line)) = &b.stale {
        if i > b.stale_after {
            if let Provenance::ArenaIndex { receiver, producer } = &b.provenance {
                out.stale_uses.push(StaleIndexUse {
                    name: name.to_string(),
                    bind_line: b.line,
                    receiver: receiver.clone(),
                    producer: producer.clone(),
                    mutator: mutator.clone(),
                    mutate_line: *mutate_line,
                    use_line: toks[i].line,
                    token_index: i,
                });
            }
        }
    }
}
