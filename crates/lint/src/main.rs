//! The `rom-lint` command-line entry point.
//!
//! - `rom-lint` — scan the workspace per the checked-in `lint.toml`.
//! - `rom-lint <path>…` — scan explicit files/directories with every rule
//!   enabled (used for the committed violation fixtures and ad-hoc checks).
//! - `--format json` — emit stable sorted JSON records instead of text
//!   (CI uploads this as the lint artifact); suppressed sites included.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/config/I-O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "rom-lint: workspace determinism & robustness linter\n\n\
             usage: rom-lint [--format json]            scan the workspace per lint.toml\n\
             \u{20}      rom-lint [--format json] <path>...  scan explicit paths with all rules\n\n\
             rules: R1 unordered-collections, R2 ambient-entropy,\n\
             \u{20}      R3 panic-sites, R4 float-compare, R5 stale-arena-index,\n\
             \u{20}      R6 rng-fork-discipline, R7 send-hostile-state\n\
             suppress: // rom-lint: allow(<rule>) -- <justification>"
        );
        return ExitCode::SUCCESS;
    }

    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!(
                        "rom-lint: --format takes `json` or `text`, got `{}`",
                        other.unwrap_or("<nothing>")
                    );
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("rom-lint: unknown flag `{flag}` (see --help)");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    let result = if paths.is_empty() {
        scan_workspace_mode()
    } else {
        rom_lint::scan_paths(&paths).map_err(|e| format!("rom-lint: {e}"))
    };

    match result {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}

fn scan_workspace_mode() -> Result<rom_lint::Report, String> {
    let root = workspace_root().ok_or_else(|| {
        "rom-lint: cannot locate the workspace root (no lint.toml found)".to_string()
    })?;
    let toml_path = root.join("lint.toml");
    let text = std::fs::read_to_string(&toml_path)
        .map_err(|e| format!("rom-lint: reading {}: {e}", toml_path.display()))?;
    let cfg = rom_lint::Config::parse(&text).map_err(|e| format!("rom-lint: {e}"))?;
    rom_lint::scan_workspace(&root, &cfg).map_err(|e| format!("rom-lint: {e}"))
}

/// Finds the workspace root: the nearest ancestor of the manifest dir (or
/// the current dir) containing `lint.toml`.
fn workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir: Option<&Path> = Some(start.as_path());
    while let Some(d) = dir {
        if d.join("lint.toml").is_file() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}
