//! A hand-rolled Rust token scanner.
//!
//! `rom-lint` needs just enough lexical structure to walk identifiers and
//! punctuation with comments and string contents stripped: full parsing is
//! neither needed nor wanted (the rules are token-shape rules). The lexer
//! understands line and nested block comments, string / raw-string / byte /
//! char literals, lifetimes vs. char literals, and numeric literals with
//! enough fidelity to tell floats from integers.
//!
//! Two derived analyses ride on the token stream:
//!
//! - **test regions** — token index ranges covered by `#[cfg(test)]` or
//!   `#[test]` items, so rules can exempt test code;
//! - **suppressions** — `// rom-lint: allow(<rule>) -- <justification>`
//!   comments, each bound to the source line it governs.

/// What kind of token this is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident,
    /// A numeric literal; `is_float` distinguishes `1.5`/`1e6`/`2f64`
    /// from integer literals.
    Number {
        /// Whether the literal is a floating-point literal.
        is_float: bool,
    },
    /// A single punctuation character (`.`, `=`, `!`, `{`, …).
    Punct,
    /// A string/char/byte literal (contents stripped).
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token text (empty for [`TokenKind::Literal`]).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Classification.
    pub kind: TokenKind,
}

/// A `rom-lint: allow(...)` comment found in the source.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule name inside `allow(...)`.
    pub rule: String,
    /// The 1-based line this suppression governs.
    pub target_line: u32,
    /// The line the comment itself sits on.
    pub comment_line: u32,
    /// The justification after `--`, if any.
    pub justification: Option<String>,
}

/// The lexed view of one source file.
#[derive(Debug)]
pub struct LexedFile {
    /// All tokens, comments and literal contents stripped.
    pub tokens: Vec<Token>,
    /// Inline `rom-lint: allow` suppressions.
    pub suppressions: Vec<Suppression>,
    /// For each token, whether it sits inside a `#[cfg(test)]`/`#[test]`
    /// item (same length as `tokens`).
    pub in_test: Vec<bool>,
}

impl LexedFile {
    /// Lexes `source` completely.
    #[must_use]
    pub fn lex(source: &str) -> LexedFile {
        let (tokens, raw_comments) = tokenize(source);
        let in_test = mark_test_regions(&tokens);
        let code_lines: std::collections::BTreeSet<u32> =
            tokens.iter().map(|t| t.line).collect();
        let suppressions = raw_comments
            .iter()
            .filter_map(|c| parse_suppression(c, &code_lines))
            .collect();
        LexedFile {
            tokens,
            suppressions,
            in_test,
        }
    }

    /// Whether the token at `idx` is inside test code.
    #[must_use]
    pub fn is_test_token(&self, idx: usize) -> bool {
        self.in_test.get(idx).copied().unwrap_or(false)
    }
}

/// A comment with its position and whether code precedes it on its line.
#[derive(Debug)]
struct RawComment {
    text: String,
    line: u32,
    trailing: bool,
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
}

impl Cursor<'_> {
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }
}

fn tokenize(source: &str) -> (Vec<Token>, Vec<RawComment>) {
    let mut cur = Cursor {
        chars: source.chars().peekable(),
        line: 1,
    };
    let mut tokens: Vec<Token> = Vec::new();
    let mut comments: Vec<RawComment> = Vec::new();

    while let Some(c) = cur.bump() {
        let line = cur.line;
        match c {
            _ if c.is_whitespace() => {}
            '/' if cur.peek() == Some('/') => {
                let mut text = String::new();
                while let Some(&n) = cur.chars.peek() {
                    if n == '\n' {
                        break;
                    }
                    text.push(n);
                    cur.bump();
                }
                let trailing = tokens.last().is_some_and(|t| t.line == line);
                comments.push(RawComment {
                    text,
                    line,
                    trailing,
                });
            }
            '/' if cur.peek() == Some('*') => {
                cur.bump();
                let start_line = line;
                let mut depth = 1u32;
                let mut text = String::new();
                while depth > 0 {
                    match cur.bump() {
                        Some('*') if cur.peek() == Some('/') => {
                            cur.bump();
                            depth -= 1;
                        }
                        Some('/') if cur.peek() == Some('*') => {
                            cur.bump();
                            depth += 1;
                        }
                        Some(inner) => text.push(inner),
                        None => break,
                    }
                }
                let trailing = tokens.last().is_some_and(|t| t.line == start_line);
                comments.push(RawComment {
                    text,
                    line: start_line,
                    trailing,
                });
            }
            '"' => {
                consume_string(&mut cur);
                tokens.push(Token {
                    text: String::new(),
                    line,
                    kind: TokenKind::Literal,
                });
            }
            'r' | 'b' if starts_special_literal(c, &mut cur) => {
                // Raw strings (r"", r#""#), byte strings (b""), raw byte
                // strings (br#""#): handled inside the helper, which
                // consumed through the literal.
                tokens.push(Token {
                    text: String::new(),
                    line,
                    kind: TokenKind::Literal,
                });
            }
            '\'' => {
                // Lifetime or char literal. A lifetime is `'` + ident not
                // closed by another `'`.
                let mut cloned = cur.chars.clone();
                let first = cloned.next();
                let second = cloned.next();
                let is_lifetime = matches!(first, Some(f) if f.is_alphabetic() || f == '_')
                    && second != Some('\'');
                if is_lifetime {
                    let mut name = String::from("'");
                    while let Some(&n) = cur.chars.peek() {
                        if n.is_alphanumeric() || n == '_' {
                            name.push(n);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                    tokens.push(Token {
                        text: name,
                        line,
                        kind: TokenKind::Lifetime,
                    });
                } else {
                    consume_char_literal(&mut cur);
                    tokens.push(Token {
                        text: String::new(),
                        line,
                        kind: TokenKind::Literal,
                    });
                }
            }
            _ if c.is_alphabetic() || c == '_' => {
                let mut text = String::from(c);
                while let Some(&n) = cur.chars.peek() {
                    if n.is_alphanumeric() || n == '_' {
                        text.push(n);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    text,
                    line,
                    kind: TokenKind::Ident,
                });
            }
            _ if c.is_ascii_digit() => {
                let (text, is_float) = consume_number(c, &mut cur);
                tokens.push(Token {
                    text,
                    line,
                    kind: TokenKind::Number { is_float },
                });
            }
            _ => {
                tokens.push(Token {
                    text: c.to_string(),
                    line,
                    kind: TokenKind::Punct,
                });
            }
        }
    }
    (tokens, comments)
}

/// If the cursor sits after an `r`/`b` that opens a raw/byte string,
/// consumes the whole literal and returns true. Otherwise consumes nothing
/// beyond what an identifier scan would re-handle — so the caller treats a
/// false return as "this was just the start of an identifier", and we fall
/// back by NOT consuming. To keep that invariant the check only commits
/// once it has seen the opening quote.
fn starts_special_literal(first: char, cur: &mut Cursor<'_>) -> bool {
    // Lookahead without consuming: decide whether `first` opens one of
    // r"", r#""#, b"", br"", rb"" — and only then commit.
    let mut ahead = cur.chars.clone();
    let mut to_consume = 0usize;
    let mut raw = first == 'r';
    let mut c = ahead.next();
    if (first == 'r' && c == Some('b')) || (first == 'b' && c == Some('r')) {
        raw = true;
        to_consume += 1;
        c = ahead.next();
    }
    let mut hashes = 0usize;
    if raw {
        while c == Some('#') {
            hashes += 1;
            to_consume += 1;
            c = ahead.next();
        }
    }
    if c != Some('"') {
        // Just an identifier starting with r/b; consume nothing.
        return false;
    }
    to_consume += 1; // the opening quote
    for _ in 0..to_consume {
        cur.bump();
    }
    if !raw {
        // Plain byte string: escapes apply.
        consume_string(cur);
        return true;
    }
    // Raw string: ends at `"` + `hashes` `#`s, no escapes.
    loop {
        match cur.bump() {
            None => return true,
            Some('"') => {
                let mut seen = 0usize;
                while seen < hashes && cur.peek() == Some('#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return true;
                }
            }
            Some(_) => {}
        }
    }
}

/// Consumes a (non-raw) string body after the opening `"`.
fn consume_string(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a char/byte-char body after the opening `'`.
fn consume_char_literal(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
}

fn consume_number(first: char, cur: &mut Cursor<'_>) -> (String, bool) {
    let mut text = String::from(first);
    let mut is_float = false;
    let radix_prefix = first == '0'
        && matches!(cur.peek(), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
    if radix_prefix {
        // Hex/octal/binary: digits, underscores and (for hex) letters.
        text.push(cur.bump().unwrap_or('x'));
        while let Some(&n) = cur.chars.peek() {
            if n.is_ascii_alphanumeric() || n == '_' {
                text.push(n);
                cur.bump();
            } else {
                break;
            }
        }
        return (text, false);
    }
    loop {
        match cur.peek() {
            Some(n) if n.is_ascii_digit() || n == '_' => {
                text.push(n);
                cur.bump();
            }
            Some('.') => {
                // `1.5` is a float; `1..5` is a range; `1.method()` is a
                // call on an integer literal.
                let mut ahead = cur.chars.clone();
                ahead.next();
                match ahead.next() {
                    Some(d) if d.is_ascii_digit() => {
                        is_float = true;
                        text.push('.');
                        cur.bump();
                    }
                    Some(a) if a.is_alphabetic() || a == '_' || a == '.' => break,
                    _ => {
                        // Trailing-dot float like `1.`
                        is_float = true;
                        text.push('.');
                        cur.bump();
                        break;
                    }
                }
            }
            Some('e' | 'E') => {
                // Exponent — only if followed by digits (or sign+digits).
                let mut ahead = cur.chars.clone();
                ahead.next();
                let next = ahead.next();
                let exp = match next {
                    Some(d) if d.is_ascii_digit() => true,
                    Some('+' | '-') => matches!(ahead.next(), Some(d) if d.is_ascii_digit()),
                    _ => false,
                };
                if !exp {
                    break;
                }
                is_float = true;
                text.push(cur.bump().unwrap_or('e'));
                if matches!(cur.peek(), Some('+' | '-')) {
                    text.push(cur.bump().unwrap_or('+'));
                }
                while let Some(&n) = cur.chars.peek() {
                    if n.is_ascii_digit() || n == '_' {
                        text.push(n);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
            Some(a) if a.is_alphabetic() => {
                // Suffix: f32/f64 force float; u*/i* force integer.
                let mut suffix = String::new();
                while let Some(&n) = cur.chars.peek() {
                    if n.is_alphanumeric() || n == '_' {
                        suffix.push(n);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                if suffix == "f32" || suffix == "f64" {
                    is_float = true;
                }
                text.push_str(&suffix);
                break;
            }
            _ => break,
        }
    }
    (text, is_float)
}

/// Marks the token ranges covered by `#[cfg(test)]` / `#[test]` items.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if is_test_attribute(tokens, i) {
            // Find the end of this attribute (its closing `]`).
            let after_attr = skip_attribute(tokens, i);
            // The attributed item runs to the first `;` at bracket depth
            // zero, or to the matching `}` of the first `{`.
            let mut j = after_attr;
            let mut depth = 0i32;
            let mut end = tokens.len();
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth == 0 => {
                        end = j + 1;
                        break;
                    }
                    "{" if depth == 0 => {
                        end = matching_brace(tokens, j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            for flag in in_test.iter_mut().take(end).skip(i) {
                *flag = true;
            }
            i = end.max(i + 1);
        } else {
            i += 1;
        }
    }
    in_test
}

/// Whether tokens at `i` begin `#[cfg(test)]`, `#[cfg(any(.., test, ..))]`
/// or `#[test]` (also `#[cfg(all(test, ..))]`, `#[tokio::test]`-style
/// suffixed test attributes).
fn is_test_attribute(tokens: &[Token], i: usize) -> bool {
    if tokens.get(i).map(|t| t.text.as_str()) != Some("#") {
        return false;
    }
    if tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
        return false;
    }
    let end = skip_attribute(tokens, i);
    let body: Vec<&str> = tokens[i + 2..end.saturating_sub(1)]
        .iter()
        .map(|t| t.text.as_str())
        .collect();
    match body.first() {
        Some(&"test") => true,
        // `cfg(test)` / `cfg(any(test, ..))` are test regions, but
        // `cfg(not(test))` is production code.
        Some(&"cfg") => body.contains(&"test") && !body.contains(&"not"),
        _ => body.last() == Some(&"test"),
    }
}

/// Returns the index one past the `]` closing the attribute at `i` (`#`).
fn skip_attribute(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

/// Returns the index one past the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

/// Parses a `rom-lint: allow(<rule>) -- <justification>` comment.
///
/// A trailing comment (code before it on the line) governs its own line; a
/// standalone comment governs the next line that holds code.
fn parse_suppression(
    comment: &RawComment,
    code_lines: &std::collections::BTreeSet<u32>,
) -> Option<Suppression> {
    let text = comment.text.trim().trim_start_matches(['/', '!']).trim();
    let rest = text.strip_prefix("rom-lint:")?.trim();
    let rest = rest.strip_prefix("allow")?.trim();
    let rest = rest.strip_prefix('(')?;
    let (rule, after) = rest.split_once(')')?;
    let justification = after
        .trim()
        .strip_prefix("--")
        .map(|j| j.trim().to_string())
        .filter(|j| !j.is_empty());
    let target_line = if comment.trailing {
        comment.line
    } else {
        // The next line holding code after the comment.
        code_lines
            .range(comment.line + 1..)
            .next()
            .copied()
            .unwrap_or(comment.line + 1)
    };
    Some(Suppression {
        rule: rule.trim().to_string(),
        target_line,
        comment_line: comment.line,
        justification,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        LexedFile::lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_stripped() {
        let src = "fn a() {} // HashMap in a comment\n/* HashMap\n * unwrap() */ fn b() {}";
        assert_eq!(idents(src), vec!["fn", "a", "fn", "b"]);
    }

    #[test]
    fn string_contents_are_stripped() {
        let src = r#"let s = "HashMap::unwrap()"; let r = r"panic!"; let c = '"';"#;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert_eq!(ids, vec!["let", "s", "let", "r", "let", "c"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let s = r#"has "quotes" and HashMap"#; let x = 1;"##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"x".to_string()));
    }

    #[test]
    fn idents_starting_with_r_and_b_are_not_strings() {
        let src = "let result = begin + rate; let b = r;";
        assert_eq!(
            idents(src),
            vec!["let", "result", "begin", "rate", "let", "b", "r"]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = LexedFile::lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(literals, 1);
    }

    #[test]
    fn float_vs_integer_literals() {
        let lexed = LexedFile::lex("let a = 1.5; let b = 10; let c = 1e6; let d = 2f64; let e = 0..3; let f = 0x1E; let g = 3.max(4);");
        let floats: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Number { is_float: true }))
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(floats, vec!["1.5", "1e6", "2f64"]);
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { y.unwrap(); }\n}\nfn prod2() {}";
        let lexed = LexedFile::lex(src);
        let unwraps: Vec<(usize, bool)> = lexed
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unwrap")
            .map(|(i, _)| (i, lexed.is_test_token(i)))
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!unwraps[0].1, "production unwrap must not be test-marked");
        assert!(unwraps[1].1, "unwrap inside #[cfg(test)] must be test-marked");
        // Code after the test module is production again.
        let prod2 = lexed
            .tokens
            .iter()
            .position(|t| t.text == "prod2")
            .unwrap();
        assert!(!lexed.is_test_token(prod2));
    }

    #[test]
    fn test_attribute_on_fn_is_marked() {
        let src = "#[test]\nfn check() { a.unwrap(); }\nfn prod() { b.unwrap(); }";
        let lexed = LexedFile::lex(src);
        let flags: Vec<bool> = lexed
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unwrap")
            .map(|(i, _)| lexed.is_test_token(i))
            .collect();
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn cfg_test_on_use_item_does_not_swallow_file() {
        let src = "#[cfg(test)]\nuse std::collections::HashSet;\nfn prod() { x.unwrap(); }";
        let lexed = LexedFile::lex(src);
        let unwrap_idx = lexed
            .tokens
            .iter()
            .position(|t| t.text == "unwrap")
            .unwrap();
        assert!(!lexed.is_test_token(unwrap_idx));
    }

    #[test]
    fn suppressions_standalone_and_trailing() {
        let src = "\n// rom-lint: allow(panic-sites) -- referee invariant, see DESIGN.md\nx.unwrap();\ny.unwrap(); // rom-lint: allow(panic-sites) -- bounded above\nz.unwrap(); // rom-lint: allow(panic-sites)";
        let lexed = LexedFile::lex(src);
        assert_eq!(lexed.suppressions.len(), 3);
        let s0 = &lexed.suppressions[0];
        assert_eq!(s0.rule, "panic-sites");
        assert_eq!(s0.target_line, 3);
        assert!(s0.justification.as_deref().unwrap().contains("referee"));
        let s1 = &lexed.suppressions[1];
        assert_eq!(s1.target_line, 4);
        assert!(s1.justification.is_some());
        let s2 = &lexed.suppressions[2];
        assert_eq!(s2.target_line, 5);
        assert!(s2.justification.is_none(), "missing -- means no justification");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        assert_eq!(idents(src), vec!["fn", "f"]);
    }
}
