//! The rule set `rom-lint` enforces.
//!
//! | id | rule | scope |
//! |----|------|-------|
//! | R1 `unordered-collections` | no `HashMap`/`HashSet` — use `BTreeMap`/`BTreeSet` or a sorted view | deterministic crates |
//! | R2 `ambient-entropy` | no `thread_rng`/`rand::rng` — randomness flows through `rom_sim`'s seeded streams | everywhere except `bench` |
//! | R3 `panic-sites` | no `unwrap()`/`expect()`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test code | protocol crates |
//! | R4 `float-compare` | no `==`/`!=` against float expressions, no `partial_cmp(..).unwrap()` — use `total_cmp`/`to_bits` | everywhere |
//! | R5 `stale-arena-index` | no use of an arena `NodeIndex` binding after a `&mut` tree mutation on the same tree — re-intern it | arena-consuming crates |
//! | R6 `rng-fork-discipline` | every RNG stream derives from a labeled `fork("...")` off the root RNG; no ad-hoc seeding, foreign RNG types, or `.clone()`d streams | everywhere except `sim`/`bench` |
//! | R7 `send-hostile-state` | no new `RefCell`/`Rc`/`thread_local!` in crates the sweep engine must move across threads | `Send`-required crates |
//! | R8 `wall-clock-discipline` | no `Instant`/`SystemTime` — sim time comes from the virtual clock; wall time belongs to the bench sidecars and justified allows (e.g. the profiler) | everywhere except `bench` |
//!
//! R1–R4 are token-shape rules. R5–R6 run on the scope-aware walk in
//! [`crate::scope`], which tracks `let` bindings, their provenance, and
//! method-call receivers — enough structure to see statement order
//! without being a Rust parser.
//!
//! All rules skip `#[cfg(test)]`/`#[test]` regions except R4, which also
//! fires in tests (a NaN-poisoned sort panics no matter where it runs, and
//! float-equality asserts are exactly how tolerance bugs hide in suites).

use crate::lexer::{LexedFile, TokenKind};
use crate::scope::{self, Analysis};

/// Identifies one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: `HashMap`/`HashSet` in deterministic crates.
    UnorderedCollections,
    /// R2: ambient entropy (`thread_rng`, `rand::rng`).
    AmbientEntropy,
    /// R3: `unwrap`/`expect`/`panic!`-family in protocol non-test code.
    PanicSites,
    /// R4: float `==`/`!=` or `partial_cmp(..).unwrap()`.
    FloatCompare,
    /// R5: an arena index binding used after a tree mutation on the same
    /// receiver (the LIFO free list may have recycled its slot).
    StaleArenaIndex,
    /// R6: an RNG stream not derived via a labeled `fork("...")` off the
    /// run's root RNG.
    RngForkDiscipline,
    /// R7: `RefCell`/`Rc`/`thread_local!` in a crate that must stay
    /// `Send` for the parallel sweep engine.
    SendHostileState,
    /// R8: `Instant`/`SystemTime` in a deterministic-artifact crate —
    /// wall-clock readings may only reach sidecar files.
    WallClockDiscipline,
    /// Meta-rule: a `rom-lint: allow` comment that is malformed (unknown
    /// rule name or missing `-- justification`).
    AllowSyntax,
}

impl Rule {
    /// Every real (suppressible) rule.
    pub const ALL: [Rule; 8] = [
        Rule::UnorderedCollections,
        Rule::AmbientEntropy,
        Rule::PanicSites,
        Rule::FloatCompare,
        Rule::StaleArenaIndex,
        Rule::RngForkDiscipline,
        Rule::SendHostileState,
        Rule::WallClockDiscipline,
    ];

    /// The rule's stable identifier, as used in `lint.toml` and in
    /// `rom-lint: allow(...)` comments.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnorderedCollections => "unordered-collections",
            Rule::AmbientEntropy => "ambient-entropy",
            Rule::PanicSites => "panic-sites",
            Rule::FloatCompare => "float-compare",
            Rule::StaleArenaIndex => "stale-arena-index",
            Rule::RngForkDiscipline => "rng-fork-discipline",
            Rule::SendHostileState => "send-hostile-state",
            Rule::WallClockDiscipline => "wall-clock-discipline",
            Rule::AllowSyntax => "allow-syntax",
        }
    }

    /// The paper-issue shorthand (R1–R8).
    #[must_use]
    pub fn shorthand(self) -> &'static str {
        match self {
            Rule::UnorderedCollections => "R1",
            Rule::AmbientEntropy => "R2",
            Rule::PanicSites => "R3",
            Rule::FloatCompare => "R4",
            Rule::StaleArenaIndex => "R5",
            Rule::RngForkDiscipline => "R6",
            Rule::SendHostileState => "R7",
            Rule::WallClockDiscipline => "R8",
            Rule::AllowSyntax => "R0",
        }
    }

    /// Parses a rule id as written in config or an allow comment.
    #[must_use]
    pub fn parse(id: &str) -> Option<Rule> {
        match id.trim() {
            "unordered-collections" | "r1" | "R1" => Some(Rule::UnorderedCollections),
            "ambient-entropy" | "r2" | "R2" => Some(Rule::AmbientEntropy),
            "panic-sites" | "r3" | "R3" => Some(Rule::PanicSites),
            "float-compare" | "r4" | "R4" => Some(Rule::FloatCompare),
            "stale-arena-index" | "r5" | "R5" => Some(Rule::StaleArenaIndex),
            "rng-fork-discipline" | "r6" | "R6" => Some(Rule::RngForkDiscipline),
            "send-hostile-state" | "r7" | "R7" => Some(Rule::SendHostileState),
            "wall-clock-discipline" | "r8" | "R8" => Some(Rule::WallClockDiscipline),
            _ => None,
        }
    }

    /// Whether the rule also applies inside `#[cfg(test)]`/`#[test]` code.
    #[must_use]
    pub fn applies_to_tests(self) -> bool {
        matches!(self, Rule::FloatCompare | Rule::AllowSyntax)
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// Runs the given rules over a lexed file and returns raw (unsuppressed)
/// violations, sorted by line.
#[must_use]
pub fn check(lexed: &LexedFile, rules: &[Rule]) -> Vec<Violation> {
    let mut out = Vec::new();
    // R5/R6 share one scope-aware walk; run it only when either is on.
    let analysis = rules
        .iter()
        .any(|r| matches!(r, Rule::StaleArenaIndex | Rule::RngForkDiscipline))
        .then(|| scope::analyze(lexed));
    for &rule in rules {
        match rule {
            Rule::UnorderedCollections => check_unordered_collections(lexed, &mut out),
            Rule::AmbientEntropy => check_ambient_entropy(lexed, &mut out),
            Rule::PanicSites => check_panic_sites(lexed, &mut out),
            Rule::FloatCompare => check_float_compare(lexed, &mut out),
            Rule::StaleArenaIndex => {
                check_stale_arena_index(lexed, analysis.as_ref().expect("walk ran"), &mut out);
            }
            Rule::RngForkDiscipline => {
                check_rng_fork(lexed, analysis.as_ref().expect("walk ran"), &mut out);
            }
            Rule::SendHostileState => check_send_hostile(lexed, &mut out),
            Rule::WallClockDiscipline => check_wall_clock(lexed, &mut out),
            Rule::AllowSyntax => {}
        }
    }
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

fn skip_for_tests(lexed: &LexedFile, idx: usize, rule: Rule) -> bool {
    !rule.applies_to_tests() && lexed.is_test_token(idx)
}

fn check_unordered_collections(lexed: &LexedFile, out: &mut Vec<Violation>) {
    for (i, tok) in lexed.tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        if tok.text != "HashMap" && tok.text != "HashSet" {
            continue;
        }
        if skip_for_tests(lexed, i, Rule::UnorderedCollections) {
            continue;
        }
        let ordered = if tok.text == "HashMap" { "BTreeMap" } else { "BTreeSet" };
        out.push(Violation {
            rule: Rule::UnorderedCollections,
            line: tok.line,
            message: format!(
                "`{}` in a deterministic crate: iteration order is seed-visible; use `{ordered}` or an explicitly sorted view",
                tok.text
            ),
        });
    }
}

fn check_ambient_entropy(lexed: &LexedFile, out: &mut Vec<Violation>) {
    let toks = &lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let flagged = match tok.text.as_str() {
            "thread_rng" => true,
            // `rand::rng()` — the ambient-entropy constructor in rand 0.9.
            "rng" => {
                i >= 3
                    && toks[i - 1].text == ":"
                    && toks[i - 2].text == ":"
                    && toks[i - 3].text == "rand"
            }
            _ => false,
        };
        if !flagged || skip_for_tests(lexed, i, Rule::AmbientEntropy) {
            continue;
        }
        out.push(Violation {
            rule: Rule::AmbientEntropy,
            line: tok.line,
            message: format!(
                "`{}` is ambient entropy: simulations must draw randomness from a seeded `SimRng`",
                tok.text
            ),
        });
    }
}

fn check_wall_clock(lexed: &LexedFile, out: &mut Vec<Violation>) {
    for (i, tok) in lexed.tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        if tok.text != "Instant" && tok.text != "SystemTime" {
            continue;
        }
        if skip_for_tests(lexed, i, Rule::WallClockDiscipline) {
            continue;
        }
        out.push(Violation {
            rule: Rule::WallClockDiscipline,
            line: tok.line,
            message: format!(
                "`{}` reads the wall clock: deterministic artifacts carry sim time only — confine \
                 wall-clock numbers to bench sidecars, or justify the reader with an allow",
                tok.text
            ),
        });
    }
}

fn check_panic_sites(lexed: &LexedFile, out: &mut Vec<Violation>) {
    let toks = &lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        let hit = match tok.text.as_str() {
            // `.unwrap()` / `.expect(` — method position only.
            "unwrap" | "expect" => {
                next == Some("(") && i >= 1 && toks[i - 1].text == "."
            }
            // Macro position.
            "panic" | "unreachable" | "todo" | "unimplemented" => next == Some("!"),
            _ => false,
        };
        if !hit || skip_for_tests(lexed, i, Rule::PanicSites) {
            continue;
        }
        // `debug_assert!`-style macros are not in scope; neither is
        // `core::panic::Location` — the `panic` ident there is followed
        // by `::`, not `!`, so it never matches.
        out.push(Violation {
            rule: Rule::PanicSites,
            line: tok.line,
            message: format!(
                "`{}` in protocol non-test code: return a typed error or use a documented invariant-checked accessor",
                tok.text
            ),
        });
    }
}

fn check_float_compare(lexed: &LexedFile, out: &mut Vec<Violation>) {
    let toks = &lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        // (a) `partial_cmp` immediately chained into `.unwrap()`/`.expect(`.
        if tok.kind == TokenKind::Ident && tok.text == "partial_cmp" {
            if skip_for_tests(lexed, i, Rule::FloatCompare) {
                continue;
            }
            // Skip the argument list, then look for `.unwrap(`/`.expect(`.
            let mut j = i + 1;
            if toks.get(j).map(|t| t.text.as_str()) == Some("(") {
                let mut depth = 0i32;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            let chained_panic = toks.get(j).map(|t| t.text.as_str()) == Some(".")
                && matches!(
                    toks.get(j + 1).map(|t| t.text.as_str()),
                    Some("unwrap" | "expect")
                );
            if chained_panic {
                out.push(Violation {
                    rule: Rule::FloatCompare,
                    line: tok.line,
                    message:
                        "`partial_cmp(..).unwrap()` panics on NaN: use `f64::total_cmp` for a total order"
                            .to_string(),
                });
            }
            continue;
        }
        // (b) `==`/`!=` where either side is a float literal.
        if tok.kind == TokenKind::Punct && (tok.text == "=" || tok.text == "!") {
            let is_eq_op = toks.get(i + 1).map(|t| t.text.as_str()) == Some("=")
                // `==` is two `=` puncts; make sure we're at the first and
                // not inside `<=`, `>=`, `+=`, … (previous punct char).
                && !matches!(
                    toks.get(i.wrapping_sub(1)),
                    Some(p) if p.kind == TokenKind::Punct
                        && matches!(p.text.as_str(), "<" | ">" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^" | "=" | "!")
                );
            if !is_eq_op {
                continue;
            }
            if skip_for_tests(lexed, i, Rule::FloatCompare) {
                continue;
            }
            let lhs_float = matches!(
                toks.get(i.wrapping_sub(1)).map(|t| &t.kind),
                Some(TokenKind::Number { is_float: true })
            );
            let rhs_float = matches!(
                toks.get(i + 2).map(|t| &t.kind),
                Some(TokenKind::Number { is_float: true })
            );
            if lhs_float || rhs_float {
                let op = if tok.text == "=" { "==" } else { "!=" };
                out.push(Violation {
                    rule: Rule::FloatCompare,
                    line: tok.line,
                    message: format!(
                        "float `{op}` comparison: use an epsilon, `total_cmp`, or compare `to_bits()` when bitwise identity is the intent"
                    ),
                });
            }
        }
    }
}

fn check_stale_arena_index(lexed: &LexedFile, analysis: &Analysis, out: &mut Vec<Violation>) {
    for u in &analysis.stale_uses {
        if skip_for_tests(lexed, u.token_index, Rule::StaleArenaIndex) {
            continue;
        }
        out.push(Violation {
            rule: Rule::StaleArenaIndex,
            line: u.use_line,
            message: format!(
                "`{}` was interned from `{}.{}(..)` on line {}, but `{}.{}(..)` on line {} may \
                 have freed or recycled its slot: re-intern via `index_of` after the mutation",
                u.name, u.receiver, u.producer, u.bind_line, u.receiver, u.mutator, u.mutate_line
            ),
        });
    }
}

fn check_rng_fork(lexed: &LexedFile, analysis: &Analysis, out: &mut Vec<Violation>) {
    let toks = &lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        let prev = toks.get(i.wrapping_sub(1)).map(|t| t.text.as_str());
        let finding = match tok.text.as_str() {
            // Foreign generator types: the workspace's byte-pinned
            // streams come from `rom_sim::SimRng` alone.
            "SmallRng" | "StdRng" | "ThreadRng" => Some(format!(
                "foreign RNG type `{}`: all randomness flows through `rom_sim::SimRng` so \
                 streams stay pinned byte-for-byte",
                tok.text
            )),
            "seed_from_u64" => Some(
                "`seed_from_u64` mints an ad-hoc stream: derive it from the run's root RNG \
                 with a labeled `fork(\"...\")`"
                    .to_string(),
            ),
            // Bare `seed_from(...)` is ad-hoc seeding — unless it is
            // immediately forked with a string-literal label, which is
            // the sanctioned root-RNG reconstruction (`fork` is a pure
            // function of `(seed, label)`).
            "seed_from" if next == Some("(") && prev != Some("fn") && i >= 1 => {
                let after = scope::matching_paren(toks, i + 1);
                let chained_fork = toks.get(after).map(|t| t.text.as_str()) == Some(".")
                    && toks.get(after + 1).map(|t| t.text.as_str()) == Some("fork")
                    && toks.get(after + 2).map(|t| t.text.as_str()) == Some("(")
                    && toks.get(after + 3).is_some_and(|t| t.kind == TokenKind::Literal);
                if chained_fork {
                    None
                } else {
                    Some(
                        "bare `seed_from(..)` mints a detached stream: fork a labeled child \
                         off the run's root RNG (or chain `.fork(\"label\")` to reconstruct \
                         a named root stream)"
                            .to_string(),
                    )
                }
            }
            // `.fork(<non-literal>)` — labels must be static strings so
            // the stream registry is auditable by grep.
            "fork" if prev == Some(".") && next == Some("(") => {
                let label_is_literal =
                    toks.get(i + 2).is_some_and(|t| t.kind == TokenKind::Literal);
                if label_is_literal {
                    None
                } else {
                    Some(
                        "`fork` label must be a string literal so every stream is statically \
                         auditable"
                            .to_string(),
                    )
                }
            }
            _ => None,
        };
        if let Some(message) = finding {
            if skip_for_tests(lexed, i, Rule::RngForkDiscipline) {
                continue;
            }
            out.push(Violation {
                rule: Rule::RngForkDiscipline,
                line: tok.line,
                message,
            });
        }
    }
    for c in &analysis.rng_clones {
        if skip_for_tests(lexed, c.token_index, Rule::RngForkDiscipline) {
            continue;
        }
        out.push(Violation {
            rule: Rule::RngForkDiscipline,
            line: c.line,
            message: format!(
                "`.clone()` of RNG stream `{}` duplicates its state mid-flight: fork a \
                 labeled child instead",
                c.name
            ),
        });
    }
}

fn check_send_hostile(lexed: &LexedFile, out: &mut Vec<Violation>) {
    let toks = &lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        let hit = match tok.text.as_str() {
            "RefCell" | "Rc" => true,
            "thread_local" => next == Some("!"),
            _ => false,
        };
        if !hit || skip_for_tests(lexed, i, Rule::SendHostileState) {
            continue;
        }
        out.push(Violation {
            rule: Rule::SendHostileState,
            line: tok.line,
            message: format!(
                "`{}` in a `Send`-required crate: the sweep engine moves whole sims across \
                 worker threads — use owned state (or `Arc`/`Mutex`), or justify with an allow",
                if tok.text == "thread_local" { "thread_local!" } else { tok.text.as_str() }
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::LexedFile;

    fn run(src: &str, rules: &[Rule]) -> Vec<Violation> {
        check(&LexedFile::lex(src), rules)
    }

    #[test]
    fn r1_flags_hash_collections_outside_tests() {
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<u32, u32>) {}\n#[cfg(test)]\nmod tests { use std::collections::HashSet; }";
        let v = run(src, &[Rule::UnorderedCollections]);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == Rule::UnorderedCollections));
    }

    #[test]
    fn r1_ignores_comments_and_strings() {
        let src = "// HashMap here\nlet s = \"HashSet\";";
        assert!(run(src, &[Rule::UnorderedCollections]).is_empty());
    }

    #[test]
    fn r2_flags_ambient_rng_only() {
        let src = "let t = Instant::now();\nlet s = SystemTime::now();\nlet r = rand::rng();\nlet q = thread_rng();";
        let v = run(src, &[Rule::AmbientEntropy]);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == Rule::AmbientEntropy));
    }

    #[test]
    fn r8_flags_wall_clock_types() {
        let src = "use std::time::Instant;\nlet t = Instant::now();\nlet s = SystemTime::now();\nlet d = Duration::from_secs(1);";
        let v = run(src, &[Rule::WallClockDiscipline]);
        // `Instant` twice (use + call site), `SystemTime` once; Duration
        // is a span, not a clock reading.
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|x| x.rule == Rule::WallClockDiscipline));
    }

    #[test]
    fn r8_skips_tests() {
        let src = "#[cfg(test)]\nmod tests { fn t() { let x = Instant::now(); } }";
        assert!(run(src, &[Rule::WallClockDiscipline]).is_empty());
    }

    #[test]
    fn r2_does_not_flag_sim_rng() {
        let src = "let mut rng = SimRng::seed_from(7); let x = rng.uniform();";
        assert!(run(src, &[Rule::AmbientEntropy]).is_empty());
    }

    #[test]
    fn r3_flags_panics_but_not_in_tests() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); unreachable!(); }\n#[cfg(test)]\nmod tests { fn t() { z.unwrap(); } }";
        let v = run(src, &[Rule::PanicSites]);
        assert_eq!(v.len(), 4, "{v:?}");
    }

    #[test]
    fn r3_requires_method_or_macro_position() {
        // A field named `unwrap`, a path `panic::Location`, and a plain
        // ident are not panic sites.
        let src = "let unwrap = 3; let l = core::panic::Location::caller; s.unwrap_or(0);";
        assert!(run(src, &[Rule::PanicSites]).is_empty());
    }

    #[test]
    fn r4_flags_partial_cmp_unwrap_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n}";
        let v = run(src, &[Rule::FloatCompare]);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn r4_allows_partial_cmp_with_fallback() {
        let src = "let o = a.partial_cmp(&b).unwrap_or(Ordering::Equal);";
        assert!(run(src, &[Rule::FloatCompare]).is_empty());
    }

    #[test]
    fn r4_flags_float_literal_equality() {
        let src = "if x == 0.0 { } if 1.5 != y { } if n == 3 { }";
        let v = run(src, &[Rule::FloatCompare]);
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn r4_ignores_compound_operators() {
        let src = "x += 1.0; y <= 2.0; z >= 0.5; w *= 3.0;";
        assert!(run(src, &[Rule::FloatCompare]).is_empty());
    }

    #[test]
    fn r5_flags_index_used_after_mutation() {
        let src = "fn f(tree: &mut T) {\n let ix = tree.index_of(id);\n tree.remove(victim);\n tree.depth_ix(ix);\n}";
        let v = run(src, &[Rule::StaleArenaIndex]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
        assert!(v[0].message.contains("remove"), "{}", v[0].message);
    }

    #[test]
    fn r5_allows_use_before_mutation_and_other_receivers() {
        let src = "fn f(a: &T, b: &mut T) {\n let ix = a.index_of(id);\n a.depth_ix(ix);\n b.remove(id);\n a.depth_ix(ix);\n}";
        // `b` is a different tree: mutating it does not stale `a`'s index.
        assert!(run(src, &[Rule::StaleArenaIndex]).is_empty());
    }

    #[test]
    fn r5_reassignment_reinterns() {
        let src = "fn f(tree: &mut T) {\n let mut ix = tree.index_of(id);\n tree.remove(victim);\n ix = tree.index_of(id);\n tree.depth_ix(ix);\n}";
        assert!(run(src, &[Rule::StaleArenaIndex]).is_empty());
    }

    #[test]
    fn r5_shadowing_reinterns() {
        let src = "fn f(tree: &mut T) {\n let ix = tree.index_of(id);\n tree.attach(p, under);\n let ix = tree.index_of(id);\n tree.depth_ix(ix);\n}";
        assert!(run(src, &[Rule::StaleArenaIndex]).is_empty());
    }

    #[test]
    fn r5_tracks_dotted_receivers_and_let_else() {
        let src = "fn f(&mut self) {\n let Some(ix) = self.tree.index_of(id) else { return; };\n self.tree.set_bandwidth(id, bw);\n self.tree.depth_ix(ix);\n}";
        let v = run(src, &[Rule::StaleArenaIndex]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("self.tree"), "{}", v[0].message);
    }

    #[test]
    fn r5_skips_tests() {
        let src = "#[cfg(test)]\nmod tests {\n fn t(tree: &mut T) {\n  let ix = tree.index_of(id);\n  tree.remove(id);\n  tree.depth_ix(ix);\n }\n}";
        assert!(run(src, &[Rule::StaleArenaIndex]).is_empty());
    }

    #[test]
    fn r6_flags_bare_seeding_foreign_rngs_and_clones() {
        let src = "fn f(seed: u64) {\n let a = SimRng::seed_from(seed);\n let b = a.clone();\n let c = SmallRng::seed_from_u64(seed);\n}";
        let v = run(src, &[Rule::RngForkDiscipline]);
        // bare seed_from, clone of `a`, SmallRng, seed_from_u64.
        assert_eq!(v.len(), 4, "{v:?}");
    }

    #[test]
    fn r6_accepts_labeled_forks_and_root_reconstruction() {
        let src = "fn f(root: &SimRng, seed: u64) {\n let topo = root.fork(\"topology\");\n let link = SimRng::seed_from(seed).fork(\"link-chaos\");\n}";
        assert!(run(src, &[Rule::RngForkDiscipline]).is_empty());
    }

    #[test]
    fn r6_requires_literal_fork_labels() {
        let src = "fn f(root: &SimRng, label: &str) { let s = root.fork(label); }";
        let v = run(src, &[Rule::RngForkDiscipline]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("string literal"), "{}", v[0].message);
    }

    #[test]
    fn r6_ignores_definitions_and_tests() {
        let src = "impl SimRng { pub fn seed_from(seed: u64) -> Self { x } }\n#[cfg(test)]\nmod tests { fn t() { let r = SimRng::seed_from(7); } }";
        assert!(run(src, &[Rule::RngForkDiscipline]).is_empty());
    }

    #[test]
    fn r7_flags_send_hostile_state() {
        let src = "use std::cell::RefCell;\nuse std::rc::Rc;\nthread_local! { static S: u32 = 0; }";
        let v = run(src, &[Rule::SendHostileState]);
        assert_eq!(v.len(), 3, "{v:?}");
    }

    #[test]
    fn r7_accepts_sync_primitives_and_tests() {
        let src = "use std::sync::{Arc, Mutex};\n#[cfg(test)]\nmod tests { use std::cell::RefCell; }";
        assert!(run(src, &[Rule::SendHostileState]).is_empty());
    }
}
