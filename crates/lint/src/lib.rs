//! `rom-lint` — the workspace determinism & robustness linter.
//!
//! The paper's evaluation depends on every experiment being bit-for-bit
//! reproducible from a single `u64` seed, and on protocol state machines
//! that degrade into typed errors instead of aborting. Reviewer vigilance
//! does not scale to that bar; this crate machine-enforces it with a
//! from-scratch token-level scanner (no external dependencies) and four
//! project-specific rules:
//!
//! - **R1 `unordered-collections`** — no `HashMap`/`HashSet` in the
//!   deterministic crates (`sim`, `engine`, `rost`, `cer`, `overlay`).
//! - **R2 `ambient-entropy`** — no `Instant::now`/`SystemTime`/
//!   `thread_rng`/`rand::rng` outside `bench`.
//! - **R3 `panic-sites`** — no `unwrap()`/`expect()`/`panic!`/
//!   `unreachable!` in non-test code of the protocol crates
//!   (`rost`, `cer`, `wire`).
//! - **R4 `float-compare`** — no `==`/`!=` against float expressions and
//!   no `partial_cmp(..).unwrap()`; use `total_cmp`/`to_bits`.
//!
//! Policy lives in the checked-in `lint.toml`. Individual sites are
//! suppressible with an auditable inline comment that must carry a
//! justification:
//!
//! ```text
//! // rom-lint: allow(panic-sites) -- slot was bounds-checked two lines up
//! ```
//!
//! Run it as `cargo run -p rom-lint` (scan the workspace per `lint.toml`)
//! or `cargo run -p rom-lint -- path/to/file.rs` (scan explicit paths with
//! every rule enabled, regardless of crate policy).

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::{Config, ConfigError};
pub use rules::{Rule, Violation};

use lexer::LexedFile;
use std::path::{Path, PathBuf};

/// A violation located in a file.
#[derive(Debug, Clone)]
pub struct FileViolation {
    /// Path as reported (relative to the workspace root when scanning the
    /// workspace).
    pub path: PathBuf,
    /// The finding.
    pub violation: Violation,
}

/// The outcome of a scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations across all scanned files, in path/line order.
    pub violations: Vec<FileViolation>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the scan is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report as the CLI prints it.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for fv in &self.violations {
            let v = &fv.violation;
            let _ = writeln!(
                out,
                "{}:{}: [{} {}] {}",
                fv.path.display(),
                v.line,
                v.rule.shorthand(),
                v.rule.id(),
                v.message
            );
        }
        let _ = writeln!(
            out,
            "rom-lint: {} violation(s) across {} file(s)",
            self.violations.len(),
            self.files_scanned
        );
        out
    }
}

/// Scans one source text with the given rules, honouring inline
/// suppressions. Malformed or unjustified `rom-lint: allow` comments are
/// reported as `allow-syntax` violations.
#[must_use]
pub fn scan_source(source: &str, rules: &[Rule]) -> Vec<Violation> {
    let lexed = LexedFile::lex(source);
    let mut raw = rules::check(&lexed, rules);

    // Partition suppressions into usable ones and syntax errors.
    let mut usable: Vec<(Rule, u32)> = Vec::new();
    let mut meta: Vec<Violation> = Vec::new();
    for s in &lexed.suppressions {
        match (Rule::parse(&s.rule), &s.justification) {
            (Some(rule), Some(_)) => usable.push((rule, s.target_line)),
            (Some(_), None) => meta.push(Violation {
                rule: Rule::AllowSyntax,
                line: s.comment_line,
                message: format!(
                    "`rom-lint: allow({})` needs a justification: write `allow({}) -- <why this site is sound>`",
                    s.rule, s.rule
                ),
            }),
            (None, _) => meta.push(Violation {
                rule: Rule::AllowSyntax,
                line: s.comment_line,
                message: format!(
                    "unknown rule `{}` in rom-lint allow comment (known: unordered-collections, ambient-entropy, panic-sites, float-compare)",
                    s.rule
                ),
            }),
        }
    }

    raw.retain(|v| {
        !usable
            .iter()
            .any(|&(rule, line)| rule == v.rule && line == v.line)
    });
    raw.extend(meta);
    raw.sort_by_key(|v| (v.line, v.rule));
    raw
}

/// Derives the crate name governing `rel_path` (`crates/<name>/…` →
/// `<name>`; everything else is the root `rom` package).
#[must_use]
pub fn crate_of(rel_path: &Path) -> String {
    let mut parts = rel_path.components().filter_map(|c| match c {
        std::path::Component::Normal(os) => os.to_str(),
        _ => None,
    });
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        (Some("vendor"), Some(name)) => format!("vendor-{name}"),
        _ => "rom".to_string(),
    }
}

/// Scans the workspace rooted at `root` per `cfg`.
///
/// # Errors
///
/// Propagates I/O errors from reading the tree.
pub fn scan_workspace(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    for dir in &cfg.roots {
        collect_rs_files(&root.join(dir), &mut files)?;
    }
    // Deterministic order, and workspace-relative labels.
    files.sort();
    let mut report = Report::default();
    for abs in files {
        let rel = abs.strip_prefix(root).unwrap_or(&abs).to_path_buf();
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if cfg.exclude.iter().any(|ex| rel_str.starts_with(ex.as_str())) {
            continue;
        }
        let mut rules = cfg.rules_for(&crate_of(&rel));
        // Files under a `tests/` directory are integration tests: whole-file
        // test code, same exemption as `#[cfg(test)]` regions.
        if is_test_file(&rel) {
            rules.retain(|r| r.applies_to_tests());
        }
        report.files_scanned += 1;
        if rules.is_empty() {
            continue;
        }
        let source = std::fs::read_to_string(&abs)?;
        for violation in scan_source(&source, &rules) {
            report.violations.push(FileViolation {
                path: rel.clone(),
                violation,
            });
        }
    }
    Ok(report)
}

/// Scans explicit paths (files or directories) with every rule enabled.
///
/// # Errors
///
/// Propagates I/O errors from reading the paths.
pub fn scan_paths(paths: &[PathBuf]) -> std::io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(p, &mut files)?;
        } else {
            files.push(p.clone());
        }
    }
    files.sort();
    let mut report = Report::default();
    for path in files {
        let source = std::fs::read_to_string(&path)?;
        report.files_scanned += 1;
        for violation in scan_source(&source, &Rule::ALL) {
            report.violations.push(FileViolation {
                path: path.clone(),
                violation,
            });
        }
    }
    Ok(report)
}

/// Whether `rel_path` is an integration-test file (lives under a `tests/`
/// directory component).
#[must_use]
pub fn is_test_file(rel_path: &Path) -> bool {
    rel_path.components().any(|c| {
        matches!(c, std::path::Component::Normal(os) if os.to_str() == Some("tests"))
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_with_justification_silences_a_violation() {
        let src = "// rom-lint: allow(unordered-collections) -- sorted before iteration\nuse std::collections::HashMap;\n";
        assert!(scan_source(src, &[Rule::UnorderedCollections]).is_empty());
    }

    #[test]
    fn suppression_without_justification_is_itself_a_violation() {
        let src = "// rom-lint: allow(unordered-collections)\nuse std::collections::HashMap;\n";
        let v = scan_source(src, &[Rule::UnorderedCollections]);
        // The HashMap is still reported AND the bare allow is flagged.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.rule == Rule::AllowSyntax));
        assert!(v.iter().any(|x| x.rule == Rule::UnorderedCollections));
    }

    #[test]
    fn unknown_rule_in_allow_is_flagged() {
        let src = "// rom-lint: allow(made-up-rule) -- because\nfn f() {}\n";
        let v = scan_source(src, &[Rule::UnorderedCollections]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::AllowSyntax);
    }

    #[test]
    fn suppression_only_covers_its_own_rule_and_line() {
        let src = "// rom-lint: allow(panic-sites) -- wrong rule\nuse std::collections::HashMap;\n";
        let v = scan_source(src, &[Rule::UnorderedCollections]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnorderedCollections);
    }

    #[test]
    fn crate_derivation() {
        assert_eq!(crate_of(Path::new("crates/rost/src/lib.rs")), "rost");
        assert_eq!(crate_of(Path::new("src/lib.rs")), "rom");
        assert_eq!(crate_of(Path::new("tests/determinism.rs")), "rom");
        assert_eq!(
            crate_of(Path::new("vendor/proptest/src/lib.rs")),
            "vendor-proptest"
        );
    }
}
