//! `rom-lint` — the workspace determinism & robustness linter.
//!
//! The paper's evaluation depends on every experiment being bit-for-bit
//! reproducible from a single `u64` seed, and on protocol state machines
//! that degrade into typed errors instead of aborting. Reviewer vigilance
//! does not scale to that bar; this crate machine-enforces it with a
//! from-scratch token-level scanner (no external dependencies) and seven
//! project-specific rules:
//!
//! - **R1 `unordered-collections`** — no `HashMap`/`HashSet` in the
//!   deterministic crates (`sim`, `engine`, `rost`, `cer`, `overlay`).
//! - **R2 `ambient-entropy`** — no `Instant::now`/`SystemTime`/
//!   `thread_rng`/`rand::rng` outside `bench`.
//! - **R3 `panic-sites`** — no `unwrap()`/`expect()`/`panic!`/
//!   `unreachable!` in non-test code of the protocol crates
//!   (`rost`, `cer`, `wire`).
//! - **R4 `float-compare`** — no `==`/`!=` against float expressions and
//!   no `partial_cmp(..).unwrap()`; use `total_cmp`/`to_bits`.
//! - **R5 `stale-arena-index`** — no use of an arena `NodeIndex` binding
//!   after a `&mut` tree mutation on the same tree (the slab's LIFO free
//!   list recycles slots); re-intern after mutating.
//! - **R6 `rng-fork-discipline`** — every RNG stream originates from a
//!   labeled `fork("...")` off the run's root RNG; no ad-hoc seeding,
//!   foreign generator types, or `.clone()`d streams outside `sim`.
//! - **R7 `send-hostile-state`** — no new `RefCell`/`Rc`/`thread_local!`
//!   in crates the parallel sweep engine must keep `Send`.
//!
//! R1–R4 are single-token-shape rules; R5–R6 run on the scope-aware walk
//! in [`scope`] (a brace/statement tree over the same lexer — see
//! DESIGN.md "Scope-aware lint passes").
//!
//! Policy lives in the checked-in `lint.toml`. Individual sites are
//! suppressible with an auditable inline comment that must carry a
//! justification:
//!
//! ```text
//! // rom-lint: allow(panic-sites) -- slot was bounds-checked two lines up
//! ```
//!
//! Run it as `cargo run -p rom-lint` (scan the workspace per `lint.toml`)
//! or `cargo run -p rom-lint -- path/to/file.rs` (scan explicit paths with
//! every rule enabled, regardless of crate policy). `--format json` emits
//! the same findings as stable sorted records, suppressed sites included.

pub mod config;
pub mod lexer;
pub mod rules;
pub mod scope;

pub use config::{Config, ConfigError};
pub use rules::{Rule, Violation};

use lexer::LexedFile;
use std::path::{Path, PathBuf};

/// A violation located in a file.
#[derive(Debug, Clone)]
pub struct FileViolation {
    /// Path as reported (relative to the workspace root when scanning the
    /// workspace).
    pub path: PathBuf,
    /// The finding.
    pub violation: Violation,
    /// The trimmed source line the violation fired on.
    pub snippet: String,
    /// The allow justification, for suppressed findings.
    pub justification: Option<String>,
}

/// The outcome of a scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Active violations across all scanned files, in path/line order.
    pub violations: Vec<FileViolation>,
    /// Findings silenced by a justified `rom-lint: allow` — not failures,
    /// but part of the auditable record (`--format json` includes them).
    pub suppressed: Vec<FileViolation>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the scan is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report as the CLI prints it.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for fv in &self.violations {
            let v = &fv.violation;
            let _ = writeln!(
                out,
                "{}:{}: [{} {}] {}",
                fv.path.display(),
                v.line,
                v.rule.shorthand(),
                v.rule.id(),
                v.message
            );
        }
        let _ = writeln!(
            out,
            "rom-lint: {} violation(s) across {} file(s)",
            self.violations.len(),
            self.files_scanned
        );
        out
    }

    /// Renders the report as JSON: stable, sorted records (path, line,
    /// rule, suppression status last) so diffs between CI runs are
    /// meaningful. Suppressed findings are included with their
    /// justification; active ones carry `"suppressed": false`.
    #[must_use]
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut records: Vec<(&FileViolation, bool)> = self
            .violations
            .iter()
            .map(|fv| (fv, false))
            .chain(self.suppressed.iter().map(|fv| (fv, true)))
            .collect();
        records.sort_by(|(a, asup), (b, bsup)| {
            (&a.path, a.violation.line, a.violation.rule, *asup).cmp(&(
                &b.path,
                b.violation.line,
                b.violation.rule,
                *bsup,
            ))
        });
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"active\": {},", self.violations.len());
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed.len());
        out.push_str("  \"violations\": [");
        for (k, (fv, suppressed)) in records.iter().enumerate() {
            let v = &fv.violation;
            if k > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"rule\": \"{}\", ", v.rule.id());
            let _ = write!(out, "\"shorthand\": \"{}\", ", v.rule.shorthand());
            let _ = write!(
                out,
                "\"file\": \"{}\", ",
                json_escape(&fv.path.to_string_lossy().replace('\\', "/"))
            );
            let _ = write!(out, "\"line\": {}, ", v.line);
            let _ = write!(out, "\"message\": \"{}\", ", json_escape(&v.message));
            let _ = write!(out, "\"snippet\": \"{}\", ", json_escape(&fv.snippet));
            let _ = write!(out, "\"suppressed\": {suppressed}");
            if let Some(just) = &fv.justification {
                let _ = write!(out, ", \"justification\": \"{}\"", json_escape(just));
            }
            out.push('}');
        }
        if records.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A violation silenced by a justified `rom-lint: allow` comment.
#[derive(Debug, Clone)]
pub struct SuppressedViolation {
    /// The silenced finding.
    pub violation: Violation,
    /// The justification text after `--` in the allow comment.
    pub justification: String,
}

/// Scans one source text with the given rules, honouring inline
/// suppressions. Malformed or unjustified `rom-lint: allow` comments are
/// reported as `allow-syntax` violations.
#[must_use]
pub fn scan_source(source: &str, rules: &[Rule]) -> Vec<Violation> {
    scan_source_full(source, rules).0
}

/// Like [`scan_source`], but also returns the findings a justified allow
/// silenced — the auditable half of the suppression ledger.
#[must_use]
pub fn scan_source_full(source: &str, rules: &[Rule]) -> (Vec<Violation>, Vec<SuppressedViolation>) {
    let lexed = LexedFile::lex(source);
    let raw = rules::check(&lexed, rules);

    // Partition suppressions into usable ones and syntax errors.
    let mut usable: Vec<(Rule, u32, &str)> = Vec::new();
    let mut meta: Vec<Violation> = Vec::new();
    for s in &lexed.suppressions {
        match (Rule::parse(&s.rule), &s.justification) {
            (Some(rule), Some(just)) => usable.push((rule, s.target_line, just.as_str())),
            (Some(_), None) => meta.push(Violation {
                rule: Rule::AllowSyntax,
                line: s.comment_line,
                message: format!(
                    "`rom-lint: allow({})` needs a justification: write `allow({}) -- <why this site is sound>`",
                    s.rule, s.rule
                ),
            }),
            (None, _) => meta.push(Violation {
                rule: Rule::AllowSyntax,
                line: s.comment_line,
                message: format!(
                    "unknown rule `{}` in rom-lint allow comment (known: unordered-collections, ambient-entropy, panic-sites, float-compare, stale-arena-index, rng-fork-discipline, send-hostile-state)",
                    s.rule
                ),
            }),
        }
    }

    let mut active = Vec::new();
    let mut suppressed = Vec::new();
    for v in raw {
        match usable
            .iter()
            .find(|(rule, line, _)| *rule == v.rule && *line == v.line)
        {
            Some((_, _, just)) => suppressed.push(SuppressedViolation {
                violation: v,
                justification: (*just).to_string(),
            }),
            None => active.push(v),
        }
    }
    active.extend(meta);
    active.sort_by_key(|v| (v.line, v.rule));
    suppressed.sort_by_key(|s| (s.violation.line, s.violation.rule));
    (active, suppressed)
}

/// Derives the crate name governing `rel_path` (`crates/<name>/…` →
/// `<name>`; everything else is the root `rom` package).
#[must_use]
pub fn crate_of(rel_path: &Path) -> String {
    let mut parts = rel_path.components().filter_map(|c| match c {
        std::path::Component::Normal(os) => os.to_str(),
        _ => None,
    });
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        (Some("vendor"), Some(name)) => format!("vendor-{name}"),
        _ => "rom".to_string(),
    }
}

/// Scans the workspace rooted at `root` per `cfg`.
///
/// # Errors
///
/// Propagates I/O errors from reading the tree.
pub fn scan_workspace(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    for dir in &cfg.roots {
        collect_rs_files(&root.join(dir), &mut files)?;
    }
    // Deterministic order, and workspace-relative labels.
    files.sort();
    let mut report = Report::default();
    for abs in files {
        let rel = abs.strip_prefix(root).unwrap_or(&abs).to_path_buf();
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if cfg.exclude.iter().any(|ex| rel_str.starts_with(ex.as_str())) {
            continue;
        }
        let mut rules = cfg.rules_for(&crate_of(&rel));
        // Files under a `tests/` directory are integration tests: whole-file
        // test code, same exemption as `#[cfg(test)]` regions.
        if is_test_file(&rel) {
            rules.retain(|r| r.applies_to_tests());
        }
        report.files_scanned += 1;
        if rules.is_empty() {
            continue;
        }
        let source = std::fs::read_to_string(&abs)?;
        let (active, suppressed) = scan_source_full(&source, &rules);
        for violation in active {
            let snippet = snippet_of(&source, violation.line);
            report.violations.push(FileViolation {
                path: rel.clone(),
                violation,
                snippet,
                justification: None,
            });
        }
        for s in suppressed {
            let snippet = snippet_of(&source, s.violation.line);
            report.suppressed.push(FileViolation {
                path: rel.clone(),
                violation: s.violation,
                snippet,
                justification: Some(s.justification),
            });
        }
    }
    Ok(report)
}

/// Scans explicit paths (files or directories) with every rule enabled.
///
/// # Errors
///
/// Propagates I/O errors from reading the paths.
pub fn scan_paths(paths: &[PathBuf]) -> std::io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(p, &mut files)?;
        } else {
            files.push(p.clone());
        }
    }
    files.sort();
    let mut report = Report::default();
    for path in files {
        let source = std::fs::read_to_string(&path)?;
        report.files_scanned += 1;
        let (active, suppressed) = scan_source_full(&source, &Rule::ALL);
        for violation in active {
            let snippet = snippet_of(&source, violation.line);
            report.violations.push(FileViolation {
                path: path.clone(),
                violation,
                snippet,
                justification: None,
            });
        }
        for s in suppressed {
            let snippet = snippet_of(&source, s.violation.line);
            report.suppressed.push(FileViolation {
                path: path.clone(),
                violation: s.violation,
                snippet,
                justification: Some(s.justification),
            });
        }
    }
    Ok(report)
}

/// The trimmed text of 1-based `line` in `source` (empty when out of
/// range — e.g. a suppression comment line folded away by the lexer).
fn snippet_of(source: &str, line: u32) -> String {
    source
        .lines()
        .nth((line as usize).saturating_sub(1))
        .unwrap_or("")
        .trim()
        .to_string()
}

/// Whether `rel_path` is an integration-test file (lives under a `tests/`
/// directory component).
#[must_use]
pub fn is_test_file(rel_path: &Path) -> bool {
    rel_path.components().any(|c| {
        matches!(c, std::path::Component::Normal(os) if os.to_str() == Some("tests"))
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_with_justification_silences_a_violation() {
        let src = "// rom-lint: allow(unordered-collections) -- sorted before iteration\nuse std::collections::HashMap;\n";
        assert!(scan_source(src, &[Rule::UnorderedCollections]).is_empty());
    }

    #[test]
    fn suppression_without_justification_is_itself_a_violation() {
        let src = "// rom-lint: allow(unordered-collections)\nuse std::collections::HashMap;\n";
        let v = scan_source(src, &[Rule::UnorderedCollections]);
        // The HashMap is still reported AND the bare allow is flagged.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.rule == Rule::AllowSyntax));
        assert!(v.iter().any(|x| x.rule == Rule::UnorderedCollections));
    }

    #[test]
    fn unknown_rule_in_allow_is_flagged() {
        let src = "// rom-lint: allow(made-up-rule) -- because\nfn f() {}\n";
        let v = scan_source(src, &[Rule::UnorderedCollections]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::AllowSyntax);
    }

    #[test]
    fn suppression_only_covers_its_own_rule_and_line() {
        let src = "// rom-lint: allow(panic-sites) -- wrong rule\nuse std::collections::HashMap;\n";
        let v = scan_source(src, &[Rule::UnorderedCollections]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnorderedCollections);
    }

    #[test]
    fn crate_derivation() {
        assert_eq!(crate_of(Path::new("crates/rost/src/lib.rs")), "rost");
        assert_eq!(crate_of(Path::new("src/lib.rs")), "rom");
        assert_eq!(crate_of(Path::new("tests/determinism.rs")), "rom");
        assert_eq!(
            crate_of(Path::new("vendor/proptest/src/lib.rs")),
            "vendor-proptest"
        );
    }
}
