//! `lint.toml` — the checked-in linter configuration.
//!
//! The registry is offline, so this is a hand-rolled parser for the small
//! TOML subset the config needs: `[section]` headers, `key = "string"`,
//! `key = ["array", "of", "strings"]`, comments, and blank lines. Anything
//! else is a hard error — better to reject than to silently mis-read a
//! determinism policy.

use crate::rules::Rule;
use std::collections::BTreeMap;

/// Parsed `lint.toml`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (relative to the workspace root) to scan.
    pub roots: Vec<String>,
    /// Path prefixes to skip entirely.
    pub exclude: Vec<String>,
    /// Crate names each rule applies to; an empty list means "everywhere".
    pub rule_crates: BTreeMap<Rule, Vec<String>>,
    /// Crate names exempt from each rule.
    pub rule_exempt: BTreeMap<Rule, Vec<String>>,
}

impl Default for Config {
    /// The workspace policy, mirrored in the checked-in `lint.toml`.
    fn default() -> Self {
        let mut rule_crates = BTreeMap::new();
        rule_crates.insert(
            Rule::UnorderedCollections,
            ["sim", "obs", "engine", "rost", "cer", "overlay"]
                .map(String::from)
                .to_vec(),
        );
        rule_crates.insert(
            Rule::PanicSites,
            ["rost", "cer", "wire"].map(String::from).to_vec(),
        );
        rule_crates.insert(
            Rule::StaleArenaIndex,
            ["overlay", "rost", "cer", "engine", "chaos"]
                .map(String::from)
                .to_vec(),
        );
        rule_crates.insert(
            Rule::SendHostileState,
            ["sim", "engine", "rost", "cer", "chaos", "overlay"]
                .map(String::from)
                .to_vec(),
        );
        let mut rule_exempt = BTreeMap::new();
        rule_exempt.insert(Rule::AmbientEntropy, vec!["bench".to_string()]);
        rule_exempt.insert(
            Rule::RngForkDiscipline,
            vec!["sim".to_string(), "bench".to_string()],
        );
        rule_exempt.insert(Rule::WallClockDiscipline, vec!["bench".to_string()]);
        Config {
            roots: ["crates", "src", "examples", "tests"]
                .map(String::from)
                .to_vec(),
            exclude: vec!["crates/lint/fixtures".to_string()],
            rule_crates,
            rule_exempt,
        }
    }
}

/// A `lint.toml` syntax or semantics error.
#[derive(Debug, Clone)]
pub struct ConfigError {
    /// 1-based line in `lint.toml`.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses the `lint.toml` text.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] on unknown sections/keys or malformed
    /// syntax — a determinism policy must never be half-read.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config {
            roots: Vec::new(),
            exclude: Vec::new(),
            rule_crates: BTreeMap::new(),
            rule_exempt: BTreeMap::new(),
        };
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let name = header.strip_suffix(']').ok_or_else(|| ConfigError {
                    line: lineno,
                    message: "unclosed section header".into(),
                })?;
                section = name.trim().to_string();
                let valid = section == "scan"
                    || section
                        .strip_prefix("rules.")
                        .is_some_and(|r| Rule::parse(r).is_some());
                if !valid {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown section `[{section}]`"),
                    });
                }
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| ConfigError {
                line: lineno,
                message: "expected `key = value`".into(),
            })?;
            let key = key.trim();
            let values = parse_value(value.trim()).map_err(|message| ConfigError {
                line: lineno,
                message,
            })?;
            match (section.as_str(), key) {
                ("scan", "roots") => cfg.roots = values,
                ("scan", "exclude") => cfg.exclude = values,
                (s, k) => {
                    let rule = s
                        .strip_prefix("rules.")
                        .and_then(Rule::parse)
                        .ok_or_else(|| ConfigError {
                            line: lineno,
                            message: format!("key `{k}` outside a known section"),
                        })?;
                    match k {
                        "crates" => {
                            cfg.rule_crates.insert(rule, values);
                        }
                        "exempt-crates" => {
                            cfg.rule_exempt.insert(rule, values);
                        }
                        other => {
                            return Err(ConfigError {
                                line: lineno,
                                message: format!("unknown key `{other}` in `[{s}]`"),
                            });
                        }
                    }
                }
            }
        }
        if cfg.roots.is_empty() {
            return Err(ConfigError {
                line: 0,
                message: "`[scan] roots` must list at least one directory".into(),
            });
        }
        Ok(cfg)
    }

    /// Whether `rule` applies to the crate named `crate_name`.
    #[must_use]
    pub fn rule_applies(&self, rule: Rule, crate_name: &str) -> bool {
        if self
            .rule_exempt
            .get(&rule)
            .is_some_and(|ex| ex.iter().any(|c| c == crate_name))
        {
            return false;
        }
        match self.rule_crates.get(&rule) {
            None => true,
            Some(list) if list.is_empty() => true,
            Some(list) => list.iter().any(|c| c == crate_name),
        }
    }

    /// The rules that apply to `crate_name`, in R1..R8 order.
    #[must_use]
    pub fn rules_for(&self, crate_name: &str) -> Vec<Rule> {
        Rule::ALL
            .into_iter()
            .filter(|&r| self.rule_applies(r, crate_name))
            .collect()
    }
}

fn strip_comment(line: &str) -> &str {
    // No escapes needed: our values never contain `#`.
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_value(value: &str) -> Result<Vec<String>, String> {
    if let Some(body) = value.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| "unclosed array".to_string())?;
        body.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(unquote)
            .collect()
    } else {
        Ok(vec![unquote(value)?])
    }
}

fn unquote(s: &str) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .map(String::from)
        .ok_or_else(|| format!("expected a quoted string, got `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# rom-lint policy
[scan]
roots = ["crates", "src"]
exclude = ["crates/lint/fixtures"]

[rules.unordered-collections]
crates = ["sim", "engine"]

[rules.ambient-entropy]
exempt-crates = ["bench"]

[rules.panic-sites]
crates = ["rost"]
"#;

    #[test]
    fn parses_the_full_shape() {
        let cfg = Config::parse(SAMPLE).unwrap();
        assert_eq!(cfg.roots, vec!["crates", "src"]);
        assert_eq!(cfg.exclude, vec!["crates/lint/fixtures"]);
        assert!(cfg.rule_applies(Rule::UnorderedCollections, "sim"));
        assert!(!cfg.rule_applies(Rule::UnorderedCollections, "net"));
        assert!(!cfg.rule_applies(Rule::AmbientEntropy, "bench"));
        assert!(cfg.rule_applies(Rule::AmbientEntropy, "rost"));
        assert!(cfg.rule_applies(Rule::FloatCompare, "anything"));
    }

    #[test]
    fn unknown_sections_and_keys_are_rejected() {
        assert!(Config::parse("[surprise]\n").is_err());
        assert!(Config::parse("[rules.not-a-rule]\n").is_err());
        assert!(Config::parse("[scan]\nroots = [\"a\"]\nbogus = \"x\"\n").is_err());
        assert!(Config::parse("[scan]\nroots = \"unquoted\n").is_err());
    }

    #[test]
    fn empty_roots_rejected() {
        assert!(Config::parse("[scan]\nexclude = []\n").is_err());
    }

    #[test]
    fn default_matches_workspace_policy() {
        let cfg = Config::default();
        for c in ["sim", "obs", "engine", "rost", "cer", "overlay"] {
            assert!(cfg.rule_applies(Rule::UnorderedCollections, c));
        }
        assert!(!cfg.rule_applies(Rule::UnorderedCollections, "net"));
        for c in ["rost", "cer", "wire"] {
            assert!(cfg.rule_applies(Rule::PanicSites, c));
        }
        assert!(!cfg.rule_applies(Rule::PanicSites, "engine"));
        assert!(!cfg.rule_applies(Rule::AmbientEntropy, "bench"));
        for c in ["overlay", "rost", "cer", "engine", "chaos"] {
            assert!(cfg.rule_applies(Rule::StaleArenaIndex, c));
        }
        assert!(!cfg.rule_applies(Rule::StaleArenaIndex, "net"));
        for c in ["sim", "engine", "rost", "cer", "chaos", "overlay"] {
            assert!(cfg.rule_applies(Rule::SendHostileState, c));
        }
        assert!(!cfg.rule_applies(Rule::SendHostileState, "wire"));
        assert!(!cfg.rule_applies(Rule::RngForkDiscipline, "sim"));
        assert!(!cfg.rule_applies(Rule::RngForkDiscipline, "bench"));
        assert!(cfg.rule_applies(Rule::RngForkDiscipline, "engine"));
        assert!(!cfg.rule_applies(Rule::WallClockDiscipline, "bench"));
        for c in ["sim", "obs", "engine", "rost", "cer", "overlay", "chaos"] {
            assert!(cfg.rule_applies(Rule::WallClockDiscipline, c));
        }
    }
}
