//! R6 `rng-fork-discipline` firing fixture: ad-hoc seeding, cloned
//! streams, dynamic fork labels, and foreign generator types.
//!
//! NOT compiled into any crate; scanned by `crates/lint/tests/fixture.rs`.

fn undisciplined(seed: u64) -> u64 {
    let mut lone = SimRng::seed_from(seed); // R6: bare seeding, no labeled fork
    let mut dup = lone.clone(); // R6: duplicates the stream mid-flight
    lone.next_u64() ^ dup.next_u64()
}

fn relabeled(root: &SimRng, label: &str) -> SimRng {
    root.fork(label) // R6: label is not a string literal
}

fn foreign(seed: u64) -> u64 {
    let mut r = SmallRng::seed_from_u64(seed); // R6 twice: foreign type + ad-hoc seeding
    r.next_u64()
}
