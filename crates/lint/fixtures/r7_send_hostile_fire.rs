//! R7 `send-hostile-state` firing fixture: single-threaded interior
//! mutability and shared ownership the sweep engine cannot move across
//! worker threads without scrutiny.
//!
//! NOT compiled into any crate; scanned by `crates/lint/tests/fixture.rs`.

use std::cell::RefCell; // R7: interior mutability (!Sync)
use std::rc::Rc; // R7: non-atomic shared ownership (!Send)

thread_local! { // R7: per-thread state breaks cross-worker determinism
    static SCRATCH: Vec<u32> = Vec::new();
}

struct SharedCache {
    entries: Rc<Vec<u32>>, // R7: Rc again, in field position
}
