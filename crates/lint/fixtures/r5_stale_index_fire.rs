//! R5 `stale-arena-index` firing fixture: a `NodeIndex` held across a
//! mutating tree call.
//!
//! NOT compiled into any crate. `crates/lint/tests/fixture.rs` scans it
//! to prove the scope-aware pass sees statement order.

fn stale_after_removal(tree: &mut MulticastTree, id: NodeId, victim: NodeId) -> Option<usize> {
    let ix = tree.index_of(id)?; // interned here...
    tree.remove(victim); // ...slot freed (and maybe recycled) here...
    tree.depth_ix(ix) // R5 stale-arena-index: `ix` may alias another member
}
