//! R7 `send-hostile-state` clean fixture: thread-safe equivalents of
//! everything the firing fixture does.
//!
//! NOT compiled into any crate; scanned by `crates/lint/tests/fixture.rs`.

use std::sync::{Arc, Mutex};

struct SharedCache {
    entries: Arc<Mutex<Vec<u32>>>,
}

fn scratch_buffer() -> Vec<u32> {
    // Owned state passed explicitly instead of thread_local!.
    Vec::new()
}
