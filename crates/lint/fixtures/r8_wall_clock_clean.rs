//! R8 clean fixture: durations and virtual-clock arithmetic are fine —
//! only wall-clock *readings* (`Instant`/`SystemTime`) are banned.
//!
//! Not compiled into any crate — `crates/lint/tests/fixture.rs` scans it
//! to prove `wall-clock-discipline` stays silent here.

use std::time::Duration;

fn horizon_secs(sim_now_secs: f64) -> f64 {
    let step = Duration::from_millis(250);
    sim_now_secs + step.as_secs_f64()
}
