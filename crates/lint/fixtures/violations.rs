//! Committed lint fixture: exactly one violation of each rom-lint rule.
//!
//! This file is NOT compiled into any crate. `crates/lint/tests/fixture.rs`
//! and the CI pipeline scan it to prove the linter detects every rule and
//! exits non-zero.

use std::collections::HashMap; // R1 unordered-collections

fn r2_ambient_rng() -> u64 {
    // thread_rng below is R2 ambient-entropy.
    let mut rng = thread_rng();
    rng.next_u64()
}

fn r8_wall_clock() -> u64 {
    // Instant below is R8 wall-clock-discipline.
    let t = Instant::now();
    t.elapsed().as_secs()
}

fn r3_panic(slots: &HashMap<u32, u32>) -> u32 {
    *slots.get(&0).unwrap() // R3 panic-sites
}

fn r4_float_eq(x: f64) -> bool {
    x == 0.5 // R4 float-compare
}
