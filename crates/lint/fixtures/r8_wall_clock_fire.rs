//! R8 firing fixture: wall-clock reads in deterministic code.
//!
//! Not compiled into any crate — `crates/lint/tests/fixture.rs` scans it
//! to prove `wall-clock-discipline` fires on both clock types.

fn wall_elapsed_secs() -> u64 {
    let started = std::time::Instant::now(); // R8: monotonic wall clock
    let _stamp = std::time::SystemTime::now(); // R8: calendar wall clock
    started.elapsed().as_secs()
}
