//! R5 `stale-arena-index` clean fixture: every pattern here holds an
//! arena index safely, including the re-intern-after-mutation negative
//! case the rule must NOT flag.
//!
//! NOT compiled into any crate; scanned by `crates/lint/tests/fixture.rs`.

fn reinterned_by_assignment(tree: &mut MulticastTree, id: NodeId, victim: NodeId) -> Option<usize> {
    let mut ix = tree.index_of(id)?;
    tree.remove(victim);
    ix = tree.index_of(id)?; // re-interned after the mutation: not stale
    tree.depth_ix(ix)
}

fn reinterned_by_shadowing(tree: &mut MulticastTree, id: NodeId, bw: u64) -> Option<usize> {
    let ix = tree.index_of(id)?;
    tree.set_bandwidth(id, bw);
    let ix = tree.index_of(id)?; // shadowing re-intern: not stale
    tree.depth_ix(ix)
}

fn used_before_mutation(tree: &mut MulticastTree, id: NodeId, victim: NodeId) -> Option<usize> {
    let ix = tree.index_of(id)?;
    let depth = tree.depth_ix(ix); // use precedes the mutation: fine
    tree.remove(victim);
    depth
}

fn disjoint_trees(a: &MulticastTree, b: &mut MulticastTree, id: NodeId) -> Option<usize> {
    let ix = a.index_of(id)?;
    b.remove(id); // a different tree: `a`'s arena is untouched
    a.depth_ix(ix)
}
