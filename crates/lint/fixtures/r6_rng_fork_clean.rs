//! R6 `rng-fork-discipline` clean fixture: the two sanctioned ways to
//! obtain a stream.
//!
//! NOT compiled into any crate; scanned by `crates/lint/tests/fixture.rs`.

fn disciplined(root: &SimRng) -> u64 {
    let mut topo = root.fork("topology"); // labeled fork off the root RNG
    topo.next_u64()
}

fn reconstructed_root(seed: u64) -> u64 {
    // Chaining a labeled fork onto the seed is the sanctioned root-stream
    // reconstruction: `fork` is a pure function of `(seed, label)`.
    let mut link = SimRng::seed_from(seed).fork("link-chaos");
    link.next_u64()
}
