//! The committed violation fixture must trip every rule, and the `rom-lint`
//! binary must exit non-zero on it — this is the linter's own regression
//! gate (acceptance criterion of the rom-lint issue).

use rom_lint::{scan_paths, Rule};
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/violations.rs")
}

#[test]
fn fixture_trips_each_rule_exactly_once() {
    let report = scan_paths(&[fixture_path()]).expect("fixture readable");
    let count = |rule: Rule| {
        report
            .violations
            .iter()
            .filter(|v| v.violation.rule == rule)
            .count()
    };
    // The HashMap type is mentioned twice (declaration and use-site
    // parameter), so R1 fires twice; every other rule exactly once.
    assert_eq!(count(Rule::UnorderedCollections), 2, "{}", report.render());
    assert_eq!(count(Rule::AmbientEntropy), 1, "{}", report.render());
    assert_eq!(count(Rule::PanicSites), 1, "{}", report.render());
    assert_eq!(count(Rule::FloatCompare), 1, "{}", report.render());
}

#[test]
fn binary_exits_nonzero_on_fixture() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_rom-lint"))
        .arg(fixture_path())
        .output()
        .expect("rom-lint binary runs");
    assert!(
        !out.status.success(),
        "rom-lint must fail on the fixture; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["unordered-collections", "ambient-entropy", "panic-sites", "float-compare"] {
        assert!(stdout.contains(needle), "missing {needle} in:\n{stdout}");
    }
}

#[test]
fn workspace_scan_is_clean() {
    // The real gate: the whole workspace, scanned per the checked-in
    // lint.toml, has zero un-annotated violations.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let toml = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml exists");
    let cfg = rom_lint::Config::parse(&toml).expect("lint.toml parses");
    let report = rom_lint::scan_workspace(&root, &cfg).expect("scan runs");
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report.render()
    );
}

#[test]
fn binary_exits_zero_on_workspace() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_rom-lint"))
        .current_dir(&root)
        .env("CARGO_MANIFEST_DIR", &root)
        .output()
        .expect("rom-lint binary runs");
    assert!(
        out.status.success(),
        "rom-lint must pass on the workspace:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
