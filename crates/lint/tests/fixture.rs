//! The committed violation fixture must trip every rule, and the `rom-lint`
//! binary must exit non-zero on it — this is the linter's own regression
//! gate (acceptance criterion of the rom-lint issue).

use rom_lint::{scan_paths, Report, Rule};
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/violations.rs")
}

fn scan_fixture(name: &str) -> Report {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    scan_paths(&[path]).expect("fixture readable")
}

/// Asserts a firing fixture trips `rule` exactly `expected` times and
/// nothing else fires (fixtures must stay single-rule so a regression in
/// one rule cannot hide behind another).
fn assert_fires_only(name: &str, rule: Rule, expected: usize) {
    let report = scan_fixture(name);
    let hits = report
        .violations
        .iter()
        .filter(|v| v.violation.rule == rule)
        .count();
    assert_eq!(hits, expected, "{name}:\n{}", report.render());
    assert_eq!(
        report.violations.len(),
        expected,
        "{name} trips a rule other than {}:\n{}",
        rule.id(),
        report.render()
    );
}

#[test]
fn fixture_trips_each_rule_exactly_once() {
    let report = scan_paths(&[fixture_path()]).expect("fixture readable");
    let count = |rule: Rule| {
        report
            .violations
            .iter()
            .filter(|v| v.violation.rule == rule)
            .count()
    };
    // The HashMap type is mentioned twice (declaration and use-site
    // parameter), so R1 fires twice; every other rule exactly once.
    assert_eq!(count(Rule::UnorderedCollections), 2, "{}", report.render());
    assert_eq!(count(Rule::AmbientEntropy), 1, "{}", report.render());
    assert_eq!(count(Rule::PanicSites), 1, "{}", report.render());
    assert_eq!(count(Rule::FloatCompare), 1, "{}", report.render());
    assert_eq!(count(Rule::WallClockDiscipline), 1, "{}", report.render());
}

#[test]
fn binary_exits_nonzero_on_fixture() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_rom-lint"))
        .arg(fixture_path())
        .output()
        .expect("rom-lint binary runs");
    assert!(
        !out.status.success(),
        "rom-lint must fail on the fixture; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "unordered-collections",
        "ambient-entropy",
        "panic-sites",
        "float-compare",
        "wall-clock-discipline",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in:\n{stdout}");
    }
}

#[test]
fn r5_fixture_fires_and_clean_is_silent() {
    assert_fires_only("r5_stale_index_fire.rs", Rule::StaleArenaIndex, 1);
    let clean = scan_fixture("r5_stale_index_clean.rs");
    assert!(clean.is_clean(), "{}", clean.render());
}

#[test]
fn r5_reinterned_index_does_not_fire() {
    // The negative case on its own: both re-intern styles (assignment and
    // shadowing) appear in the clean fixture and neither may fire.
    let report = scan_fixture("r5_stale_index_clean.rs");
    let r5 = report
        .violations
        .iter()
        .filter(|v| v.violation.rule == Rule::StaleArenaIndex)
        .count();
    assert_eq!(r5, 0, "re-interned indices must not fire R5:\n{}", report.render());
}

#[test]
fn r6_fixture_fires_and_clean_is_silent() {
    // bare seed_from + clone + non-literal label + foreign type (twice).
    assert_fires_only("r6_rng_fork_fire.rs", Rule::RngForkDiscipline, 5);
    let clean = scan_fixture("r6_rng_fork_clean.rs");
    assert!(clean.is_clean(), "{}", clean.render());
}

#[test]
fn r7_fixture_fires_and_clean_is_silent() {
    // RefCell, Rc (use + field), thread_local!.
    assert_fires_only("r7_send_hostile_fire.rs", Rule::SendHostileState, 4);
    let clean = scan_fixture("r7_send_hostile_clean.rs");
    assert!(clean.is_clean(), "{}", clean.render());
}

#[test]
fn r8_fixture_fires_and_clean_is_silent() {
    // Instant + SystemTime, one read each.
    assert_fires_only("r8_wall_clock_fire.rs", Rule::WallClockDiscipline, 2);
    let clean = scan_fixture("r8_wall_clock_clean.rs");
    assert!(clean.is_clean(), "{}", clean.render());
}

#[test]
fn json_format_emits_stable_sorted_records() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_rom-lint"))
        .args(["--format", "json"])
        .arg(fixture_path())
        .output()
        .expect("rom-lint binary runs");
    assert!(!out.status.success(), "fixture must still fail in json mode");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "\"files_scanned\": 1",
        "\"rule\": \"unordered-collections\"",
        "\"shorthand\": \"R1\"",
        "\"rule\": \"panic-sites\"",
        "\"suppressed\": false",
        "\"snippet\": ",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in:\n{stdout}");
    }
    // Records are sorted by line within the file: the reported line
    // numbers must be non-decreasing.
    let lines: Vec<u32> = stdout
        .lines()
        .filter_map(|l| {
            let rest = l.split("\"line\": ").nth(1)?;
            rest.split(',').next()?.trim().parse().ok()
        })
        .collect();
    assert!(!lines.is_empty(), "no line fields parsed from:\n{stdout}");
    assert!(
        lines.windows(2).all(|w| w[0] <= w[1]),
        "records not sorted by line: {lines:?}"
    );
}

#[test]
fn json_workspace_report_includes_suppressions() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_rom-lint"))
        .args(["--format", "json"])
        .current_dir(&root)
        .env("CARGO_MANIFEST_DIR", &root)
        .output()
        .expect("rom-lint binary runs");
    assert!(
        out.status.success(),
        "workspace json scan must pass:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The workspace ledger carries justified allows; the JSON report
    // surfaces them with their justifications while staying exit-zero.
    assert!(stdout.contains("\"active\": 0"), "{stdout}");
    assert!(stdout.contains("\"suppressed\": true"), "{stdout}");
    assert!(stdout.contains("\"justification\": "), "{stdout}");
}

#[test]
fn workspace_scan_is_clean() {
    // The real gate: the whole workspace, scanned per the checked-in
    // lint.toml, has zero un-annotated violations.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let toml = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml exists");
    let cfg = rom_lint::Config::parse(&toml).expect("lint.toml parses");
    let report = rom_lint::scan_workspace(&root, &cfg).expect("scan runs");
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report.render()
    );
}

#[test]
fn binary_exits_zero_on_workspace() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_rom-lint"))
        .current_dir(&root)
        .env("CARGO_MANIFEST_DIR", &root)
        .output()
        .expect("rom-lint binary runs");
    assert!(
        out.status.success(),
        "rom-lint must pass on the workspace:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
