//! Overhead guard: with tracing disabled (no sink, or the null sink) the
//! instrumented hot-path pattern must not allocate per event.
//!
//! The pattern under test is the one every instrumented call site uses:
//!
//! ```ignore
//! if obs.enabled(subsystem, level) {
//!     obs.emit(TraceEvent::new(..).u64(..));
//! }
//! obs.count("name", 1);
//! ```
//!
//! This file is its own test binary so the counting allocator sees only
//! this test's traffic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Counts heap allocations made through the global allocator, per
/// thread: the libtest harness runs its own bookkeeping threads whose
/// stray allocations must not count against the hot path under test.
struct CountingAlloc;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates directly to the system allocator; the counter is a
// const-initialized thread-local `Cell` (no lazy allocation), read with
// `try_with` so allocation during TLS teardown stays safe.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

use rom_obs::{Level, NullSink, Obs, Subsystem, TraceEvent, Tracer};

/// Drives the instrumented hot-path pattern `n` times.
fn hammer(obs: &mut Obs, n: u64) {
    for i in 0..n {
        if obs.enabled(Subsystem::Churn, Level::Info) {
            obs.emit(
                TraceEvent::new(i as f64, Subsystem::Churn, "join")
                    .u64("id", i)
                    .bool("ok", true),
            );
        }
        obs.count("events", 1);
        obs.gauge("depth", i as f64);
        obs.observe("latency", (i % 7) as f64);
    }
}

#[test]
fn disabled_and_null_sink_paths_are_allocation_free() {
    // Fully disabled handle: metrics are no-ops too.
    let mut disabled = Obs::disabled();
    // Null sink: tracing is filtered out before event construction, but
    // metrics stay live — warm their registry entries up front so the
    // steady state is pure BTreeMap lookups.
    let mut nulled = Obs::new(Tracer::to_sink(Box::new(NullSink)));
    hammer(&mut nulled, 1);

    let before = allocations();
    hammer(&mut disabled, 10_000);
    hammer(&mut nulled, 10_000);
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "disabled observability must not allocate per event"
    );
    // And the guard really did skip event construction: nothing recorded.
    assert_eq!(nulled.trace_events(), 0);
    assert_eq!(disabled.trace_events(), 0);
    // The null-sink handle still counted its metrics.
    assert_eq!(nulled.snapshot().counter("events"), 10_001);
}
