//! # rom-obs: deterministic observability for the ROM workspace
//!
//! Every simulator in this workspace is bit-for-bit reproducible from a
//! single `u64` seed — so its observability layer must be too. This crate
//! provides three pieces, all dependency-free and all clocked exclusively
//! on *simulation* time:
//!
//! - a **structured trace layer** ([`TraceEvent`] written through the
//!   [`Sink`] trait, with ring-buffer, JSONL-file and null
//!   implementations, filterable by [`Subsystem`] and [`Level`]),
//! - a **metrics registry** ([`MetricsRegistry`]: counters, gauges with
//!   high-water marks, fixed-bucket histograms) snapshotable into
//!   [`MetricsSnapshot`],
//! - **run provenance** ([`RunManifest`]: seed, config digest, crate
//!   version, event counts, outcome) emitted alongside bench CSVs.
//!
//! The [`Obs`] handle bundles a tracer and a registry behind a single
//! `active` flag so instrumented hot paths cost one branch when
//! observability is off.
//!
//! ## Determinism rules
//!
//! - Timestamps are sim-time seconds (`f64`), never wall clock
//!   (`Instant`/`SystemTime` are banned here by rom-lint R8; the span
//!   profiler ([`Prof`]) is the one justified-allow exception, and its
//!   readings reach only the `.profile.json` sidecar).
//! - Event fields live in a `BTreeMap`, so serialization order is the key
//!   order, not hash order (rom-lint R1).
//! - `f64` values serialize through Rust's shortest-round-trip `Display`,
//!   which is deterministic across runs and platforms.
//!
//! Two identical-seed runs therefore produce byte-identical JSONL traces
//! — a property the workspace pins with an integration test.
//!
//! # Examples
//!
//! ```
//! use rom_obs::{Level, Obs, RingSink, Subsystem, TraceEvent, Tracer};
//!
//! let (sink, handle) = RingSink::new(16);
//! let mut obs = Obs::new(Tracer::to_sink(Box::new(sink)));
//! if obs.enabled(Subsystem::Churn, Level::Info) {
//!     obs.emit(TraceEvent::new(1.5, Subsystem::Churn, "join").u64("id", 7));
//! }
//! obs.count("churn.joins", 1);
//! obs.finish();
//! assert_eq!(handle.len(), 1);
//! assert_eq!(obs.snapshot().counter("churn.joins"), 1);
//! ```

mod health;
mod json;
mod manifest;
mod metrics;
mod mem;
mod prof;
mod trace;

pub use health::{HealthAccumulator, HealthHandle, HealthSink, MemberHealth};
pub use manifest::{fnv1a, RunManifest, SweepManifest};
pub use metrics::{
    GaugeSnapshot, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, DEFAULT_BUCKETS,
};
pub use mem::peak_rss_bytes;
pub use prof::{Prof, ProfCore, ProfReport, SpanGuard, SpanStat, PROF_HIST_BUCKETS};
pub use trace::{
    FieldValue, JsonlSink, Level, NullSink, RingHandle, RingSink, SharedBuffer, Sink, Subsystem,
    TraceEvent, Tracer,
};

/// A combined tracer + metrics handle that instrumented code threads
/// through its hot paths.
///
/// A default-constructed (or [`Obs::disabled`]) handle is inert: every
/// method is a single-branch no-op, no allocation, no sink. Construct one
/// with [`Obs::new`] to activate both tracing and metrics, or
/// [`Obs::metrics_only`] to collect metrics without a trace sink.
#[derive(Debug, Default)]
pub struct Obs {
    active: bool,
    tracer: Tracer,
    metrics: MetricsRegistry,
    prof: Prof,
}

impl Obs {
    /// An inert handle: all recording methods are no-ops.
    #[must_use]
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// An active handle tracing through `tracer` and collecting metrics.
    #[must_use]
    pub fn new(tracer: Tracer) -> Self {
        Obs {
            active: true,
            tracer,
            metrics: MetricsRegistry::new(),
            prof: Prof::disabled(),
        }
    }

    /// Attaches a span profiler (builder style). Profiling is orthogonal
    /// to the `active` flag: spans are driven by the clones of this
    /// handle that instrumented structures carry, and their wall-clock
    /// numbers never enter the trace/metrics pipeline.
    #[must_use]
    pub fn with_prof(mut self, prof: Prof) -> Self {
        self.prof = prof;
        self
    }

    /// The span-profiler handle (disabled unless installed via
    /// [`with_prof`](Self::with_prof)).
    #[must_use]
    pub fn prof(&self) -> &Prof {
        &self.prof
    }

    /// An active handle that collects metrics but emits no trace events.
    #[must_use]
    pub fn metrics_only() -> Self {
        Obs::new(Tracer::disabled())
    }

    /// True if this handle records anything at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// True if a trace event for `subsystem` at `level` would be recorded.
    ///
    /// Guard event construction with this so the disabled path never
    /// allocates:
    ///
    /// ```
    /// # use rom_obs::{Level, Obs, Subsystem, TraceEvent};
    /// # let mut obs = Obs::disabled();
    /// if obs.enabled(Subsystem::Rost, Level::Info) {
    ///     obs.emit(TraceEvent::new(0.0, Subsystem::Rost, "switch"));
    /// }
    /// ```
    #[inline]
    #[must_use]
    pub fn enabled(&self, subsystem: Subsystem, level: Level) -> bool {
        self.active && self.tracer.enabled(subsystem, level)
    }

    /// Records a trace event (if its subsystem/level pass the filter).
    pub fn emit(&mut self, event: TraceEvent) {
        if self.active {
            self.tracer.emit(event);
        }
    }

    /// Adds `n` to the counter `name`.
    #[inline]
    pub fn count(&mut self, name: &'static str, n: u64) {
        if self.active {
            self.metrics.count(name, n);
        }
    }

    /// Sets the gauge `name` to `value`, updating its high-water mark.
    #[inline]
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        if self.active {
            self.metrics.gauge(name, value);
        }
    }

    /// Records `value` into the histogram `name` (auto-registered with
    /// [`DEFAULT_BUCKETS`] on first use).
    #[inline]
    pub fn observe(&mut self, name: &'static str, value: f64) {
        if self.active {
            self.metrics.observe(name, value);
        }
    }

    /// Registers the histogram `name` with explicit bucket `bounds`
    /// before its first observation (no-op when inactive or already
    /// registered).
    pub fn register_histogram(&mut self, name: &'static str, bounds: &[f64]) {
        if self.active {
            self.metrics.register_histogram(name, bounds);
        }
    }

    /// Number of trace events actually recorded so far.
    #[must_use]
    pub fn trace_events(&self) -> u64 {
        self.tracer.emitted()
    }

    /// A point-in-time copy of every metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Flushes the trace sink. Call once at end of run.
    pub fn finish(&mut self) {
        self.tracer.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let mut obs = Obs::disabled();
        assert!(!obs.is_active());
        assert!(!obs.enabled(Subsystem::Sim, Level::Warn));
        obs.count("c", 5);
        obs.gauge("g", 1.0);
        obs.observe("h", 1.0);
        obs.emit(TraceEvent::new(0.0, Subsystem::Sim, "x"));
        let snap = obs.snapshot();
        assert_eq!(snap.counter("c"), 0);
        assert_eq!(obs.trace_events(), 0);
    }

    #[test]
    fn metrics_only_collects_without_tracing() {
        let mut obs = Obs::metrics_only();
        assert!(obs.is_active());
        assert!(!obs.enabled(Subsystem::Cer, Level::Warn));
        obs.count("c", 2);
        obs.count("c", 3);
        assert_eq!(obs.snapshot().counter("c"), 5);
        assert_eq!(obs.trace_events(), 0);
    }

    #[test]
    fn active_handle_traces_and_counts() {
        let (sink, handle) = RingSink::new(8);
        let mut obs = Obs::new(Tracer::to_sink(Box::new(sink)));
        if obs.enabled(Subsystem::Churn, Level::Info) {
            obs.emit(TraceEvent::new(2.0, Subsystem::Churn, "join").u64("id", 1));
        }
        obs.gauge("depth", 3.0);
        obs.gauge("depth", 1.0);
        obs.finish();
        assert_eq!(obs.trace_events(), 1);
        assert_eq!(handle.len(), 1);
        let snap = obs.snapshot();
        let g = snap.gauge("depth").expect("gauge registered");
        assert_eq!(g.value.to_bits(), 1.0_f64.to_bits());
        assert_eq!(g.high_water.to_bits(), 3.0_f64.to_bits());
    }
}
