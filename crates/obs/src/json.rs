//! Minimal deterministic JSON writing helpers shared by the trace,
//! metrics and manifest serializers. Output is append-only into a
//! `String`, with no allocation beyond the destination buffer.

use std::fmt::Write as _;

/// Appends `s` as a JSON string literal (with quotes) onto `out`.
pub(crate) fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number onto `out`.
///
/// Uses Rust's shortest-round-trip `Display`, which is deterministic
/// across runs and platforms. Non-finite values (which JSON cannot
/// represent) serialize as `null`.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends `v` as a JSON integer onto `out`.
pub(crate) fn push_u64(out: &mut String, v: u64) {
    let _ = write!(out, "{v}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &str) -> String {
        let mut out = String::new();
        push_str_literal(&mut out, s);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(lit("plain"), "\"plain\"");
        assert_eq!(lit("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(lit("x\ny"), "\"x\\ny\"");
        assert_eq!(lit("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn floats_round_trip_shortest() {
        let mut out = String::new();
        push_f64(&mut out, 12.5);
        out.push(' ');
        push_f64(&mut out, 0.1);
        out.push(' ');
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "12.5 0.1 null");
    }

    #[test]
    fn integers_print_plain() {
        let mut out = String::new();
        push_u64(&mut out, u64::MAX);
        assert_eq!(out, "18446744073709551615");
    }
}
