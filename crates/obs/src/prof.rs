//! The hierarchical span profiler.
//!
//! [`Prof`] is a cloneable handle to a shared span tree. Instrumented
//! code opens a scope timer with [`Prof::span`]; nesting is tracked by a
//! span stack, so the same `name` under different parents aggregates into
//! different tree nodes. Each node accumulates an op count, total wall
//! time, and a log₂-bucketed latency histogram; *self* time (total minus
//! children) is derived at report time.
//!
//! ## Determinism contract
//!
//! Wall-clock readings exist **only** inside this module and only leave
//! it through [`ProfReport::to_json`], which the bench harness writes to
//! a `.profile.json` sidecar — never to stdout, traces, manifests or the
//! metrics sidecar. The span *structure* (paths) and the per-span *op
//! counts* are pure functions of the simulated run and therefore
//! seed-deterministic; every nanosecond field is explicitly not.
//!
//! A disabled handle (the default) costs one branch per span and never
//! allocates or reads the clock — mirroring the disabled tracer path.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
// rom-lint: allow(wall-clock-discipline) -- the profiler is the one sanctioned wall-clock reader; its numbers only ever reach the .profile.json sidecar
use std::time::Instant;

use crate::json;

/// Number of log₂ latency buckets: bucket `i` holds durations in
/// `[2^i, 2^(i+1))` nanoseconds, with the last bucket open-ended.
pub const PROF_HIST_BUCKETS: usize = 32;

/// One aggregated node of the span tree.
#[derive(Debug)]
struct SpanNode {
    /// Static span name as given at the call site, e.g. `"overlay.attach"`.
    name: &'static str,
    /// Parent node index, or `None` for a root span.
    parent: Option<u32>,
    /// Child node indices in first-seen order.
    children: Vec<u32>,
    /// Completed invocations.
    count: u64,
    /// Total wall time across invocations, nanoseconds.
    total_ns: u64,
    /// Log₂-bucketed per-invocation latency histogram.
    hist: [u64; PROF_HIST_BUCKETS],
}

/// The shared profiler state behind a [`Prof`] handle.
#[derive(Debug, Default)]
pub struct ProfCore {
    nodes: Vec<SpanNode>,
    /// Interns `(parent index + 1, name)` → node index (0 parent = root).
    index: BTreeMap<(u32, &'static str), u32>,
    /// Indices of the currently open spans, outermost first.
    stack: Vec<u32>,
}

fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ProfCore {
    /// Resolves (interning if new) the node for `name` under the current
    /// stack top and pushes it; returns its index.
    fn enter(&mut self, name: &'static str) -> u32 {
        let parent = self.stack.last().copied();
        let key = (parent.map_or(0, |p| p + 1), name);
        let ix = match self.index.get(&key) {
            Some(&ix) => ix,
            None => {
                let ix = u32::try_from(self.nodes.len()).unwrap_or(u32::MAX);
                self.nodes.push(SpanNode {
                    name,
                    parent,
                    children: Vec::new(),
                    count: 0,
                    total_ns: 0,
                    hist: [0; PROF_HIST_BUCKETS],
                });
                if let Some(p) = parent {
                    self.nodes[p as usize].children.push(ix);
                }
                self.index.insert(key, ix);
                ix
            }
        };
        self.stack.push(ix);
        ix
    }

    /// Pops the span `ix` and folds `elapsed_ns` into its node.
    fn exit(&mut self, ix: u32, elapsed_ns: u64) {
        debug_assert_eq!(self.stack.last().copied(), Some(ix), "span stack discipline");
        self.stack.pop();
        let node = &mut self.nodes[ix as usize];
        node.count += 1;
        node.total_ns += elapsed_ns;
        let bucket = (63 - u64::leading_zeros(elapsed_ns.max(1))) as usize;
        node.hist[bucket.min(PROF_HIST_BUCKETS - 1)] += 1;
    }
}

/// A cloneable handle to a shared span-profiler core.
///
/// Clones share the same core, so the overlay tree, the engine and the
/// protocol layers can all record into one span tree. The default handle
/// is disabled: [`Prof::span`] is a single branch, no allocation, no
/// clock read.
#[derive(Debug, Clone, Default)]
pub struct Prof {
    core: Option<Arc<Mutex<ProfCore>>>,
}

impl Prof {
    /// An inert handle: every span is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Prof::default()
    }

    /// A recording handle with a fresh, empty span tree.
    #[must_use]
    pub fn enabled() -> Self {
        Prof {
            core: Some(Arc::new(Mutex::new(ProfCore::default()))),
        }
    }

    /// True if spans are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Opens a scope timer named `name` (by convention
    /// `"subsystem.operation"`). The span closes — and its duration is
    /// recorded — when the returned guard drops. Nesting follows the
    /// guard scopes.
    #[inline]
    #[must_use]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        match &self.core {
            None => SpanGuard { active: None },
            Some(core) => {
                let ix = lock_unpoisoned(core).enter(name);
                SpanGuard {
                    active: Some(ActiveSpan {
                        core: Arc::clone(core),
                        ix,
                        // rom-lint: allow(wall-clock-discipline) -- span timing; reaches only the .profile.json sidecar
                        start: Instant::now(),
                    }),
                }
            }
        }
    }

    /// A snapshot of the aggregated span tree, or `None` when disabled.
    #[must_use]
    pub fn report(&self) -> Option<ProfReport> {
        let core = self.core.as_ref()?;
        let core = lock_unpoisoned(core);
        let mut spans = Vec::with_capacity(core.nodes.len());
        for (ix, node) in core.nodes.iter().enumerate() {
            let mut path = String::new();
            build_path(&core, ix as u32, &mut path);
            let child_ns: u64 = node
                .children
                .iter()
                .map(|&c| core.nodes[c as usize].total_ns)
                .sum();
            let hist = node
                .hist
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(b, &c)| (b as u32, c))
                .collect();
            spans.push(SpanStat {
                path,
                name: node.name,
                count: node.count,
                total_ns: node.total_ns,
                self_ns: node.total_ns.saturating_sub(child_ns),
                hist,
            });
        }
        spans.sort_by(|a, b| a.path.cmp(&b.path));
        Some(ProfReport { spans })
    }
}

fn build_path(core: &ProfCore, ix: u32, out: &mut String) {
    if let Some(parent) = core.nodes[ix as usize].parent {
        build_path(core, parent, out);
        out.push('/');
    }
    out.push_str(core.nodes[ix as usize].name);
}

#[derive(Debug)]
struct ActiveSpan {
    core: Arc<Mutex<ProfCore>>,
    ix: u32,
    // rom-lint: allow(wall-clock-discipline) -- span start stamp; reaches only the .profile.json sidecar
    start: Instant,
}

/// RAII guard returned by [`Prof::span`]; records the span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(span) = self.active.take() {
            let elapsed = span.start.elapsed();
            let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
            lock_unpoisoned(&span.core).exit(span.ix, ns);
        }
    }
}

/// Aggregated statistics of one span-tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Slash-joined ancestry, e.g. `"engine.arrival/overlay.find_eviction"`.
    pub path: String,
    /// The leaf name alone.
    pub name: &'static str,
    /// Completed invocations — seed-deterministic.
    pub count: u64,
    /// Total wall nanoseconds — **not** deterministic.
    pub total_ns: u64,
    /// Total minus direct children's totals — **not** deterministic.
    pub self_ns: u64,
    /// Non-empty log₂ buckets as `(bucket, count)`; bucket `b` holds
    /// durations in `[2^b, 2^(b+1))` ns — counts are wall-clock placed,
    /// so **not** deterministic.
    pub hist: Vec<(u32, u64)>,
}

/// A point-in-time snapshot of the whole span tree, path-sorted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfReport {
    /// Every recorded span, sorted by `path`.
    pub spans: Vec<SpanStat>,
}

impl ProfReport {
    /// Serializes the report (plus run provenance) as the
    /// `.profile.json` sidecar body. `run_wall_ns` is the caller-measured
    /// wall time of the whole run; together with `events_processed` it
    /// lets `rom-prof diff` compare against `BENCH_headline.json`.
    #[must_use]
    pub fn to_json(&self, name: &str, seed: u64, events_processed: u64, run_wall_ns: u64) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"kind\":\"rom-profile\",\"name\":");
        json::push_str_literal(&mut out, name);
        out.push_str(",\"seed\":");
        json::push_u64(&mut out, seed);
        out.push_str(",\"events_processed\":");
        json::push_u64(&mut out, events_processed);
        out.push_str(",\"run_wall_ns\":");
        json::push_u64(&mut out, run_wall_ns);
        out.push_str(",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"path\":");
            json::push_str_literal(&mut out, &s.path);
            out.push_str(",\"count\":");
            json::push_u64(&mut out, s.count);
            out.push_str(",\"total_ns\":");
            json::push_u64(&mut out, s.total_ns);
            out.push_str(",\"self_ns\":");
            json::push_u64(&mut out, s.self_ns);
            out.push_str(",\"hist_ns_pow2\":[");
            for (j, &(b, c)) in s.hist.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                json::push_u64(&mut out, u64::from(b));
                out.push(',');
                json::push_u64(&mut out, c);
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let prof = Prof::disabled();
        assert!(!prof.is_enabled());
        {
            let _g = prof.span("a");
            let _h = prof.span("b");
        }
        assert!(prof.report().is_none());
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let prof = Prof::enabled();
        for _ in 0..3 {
            let _outer = prof.span("outer");
            for _ in 0..2 {
                let _inner = prof.span("inner");
            }
        }
        {
            // A root-level span with a name already used nested.
            let _solo = prof.span("inner");
        }
        let report = prof.report().expect("enabled");
        let paths: Vec<&str> = report.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["inner", "outer", "outer/inner"]);
        let by_path = |p: &str| {
            report
                .spans
                .iter()
                .find(|s| s.path == p)
                .expect("span present")
        };
        assert_eq!(by_path("outer").count, 3);
        assert_eq!(by_path("outer/inner").count, 6);
        assert_eq!(by_path("inner").count, 1);
        // Self time never exceeds total, and hist counts sum to count.
        for s in &report.spans {
            assert!(s.self_ns <= s.total_ns, "{}", s.path);
            let hist_total: u64 = s.hist.iter().map(|&(_, c)| c).sum();
            assert_eq!(hist_total, s.count, "{}", s.path);
        }
    }

    #[test]
    fn clones_share_one_core() {
        let prof = Prof::enabled();
        let other = prof.clone();
        {
            let _g = prof.span("via-a");
        }
        {
            let _g = other.span("via-b");
        }
        let report = prof.report().expect("enabled");
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report, other.report().expect("enabled"));
    }

    #[test]
    fn report_json_shape() {
        let prof = Prof::enabled();
        {
            let _g = prof.span("x.y");
        }
        let js = prof
            .report()
            .expect("enabled")
            .to_json("demo", 7, 123, 456);
        assert!(js.starts_with("{\"kind\":\"rom-profile\",\"name\":\"demo\",\"seed\":7,"));
        assert!(js.contains("\"events_processed\":123"));
        assert!(js.contains("\"run_wall_ns\":456"));
        assert!(js.contains("\"path\":\"x.y\""));
        assert!(js.contains("\"count\":1"));
    }
}
