//! The structured trace layer: typed sim-time events, subsystem/level
//! filtering, and pluggable sinks.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

use crate::json;

/// Severity of a trace event. Ordered: `Debug < Info < Warn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// High-volume events (individual joins, lock traffic).
    Debug,
    /// The structural story of a run (failures, switches, repairs).
    Info,
    /// Anomalies worth surfacing even in quiet traces.
    Warn,
}

impl Level {
    /// Stable lowercase name used in serialized traces.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// The workspace subsystem an event originates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Subsystem {
    /// The discrete-event kernel (`rom-sim`).
    Sim,
    /// Churn-driven tree dynamics (`rom-engine`).
    Churn,
    /// Switching protocol and locks (`rom-rost`).
    Rost,
    /// Cooperative error recovery (`rom-cer`).
    Cer,
    /// Packet-level streaming state (`rom-engine`).
    Streaming,
    /// Referee verification and audited switching (`rom-rost`).
    Referee,
    /// Fault injection and invariant checking (`rom-chaos`).
    Chaos,
}

impl Subsystem {
    /// All subsystems, in serialization order.
    pub const ALL: [Subsystem; 7] = [
        Subsystem::Sim,
        Subsystem::Churn,
        Subsystem::Rost,
        Subsystem::Cer,
        Subsystem::Streaming,
        Subsystem::Referee,
        Subsystem::Chaos,
    ];

    /// Stable lowercase name used in serialized traces.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Subsystem::Sim => "sim",
            Subsystem::Churn => "churn",
            Subsystem::Rost => "rost",
            Subsystem::Cer => "cer",
            Subsystem::Streaming => "streaming",
            Subsystem::Referee => "referee",
            Subsystem::Chaos => "chaos",
        }
    }

    /// One-hot bit for subsystem-mask filtering.
    #[must_use]
    pub(crate) fn bit(self) -> u8 {
        match self {
            Subsystem::Sim => 1 << 0,
            Subsystem::Churn => 1 << 1,
            Subsystem::Rost => 1 << 2,
            Subsystem::Cer => 1 << 3,
            Subsystem::Streaming => 1 << 4,
            Subsystem::Referee => 1 << 5,
            Subsystem::Chaos => 1 << 6,
        }
    }

    pub(crate) const MASK_ALL: u8 = 0b111_1111;
}

/// A typed field value attached to a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (ids, counts).
    U64(u64),
    /// Signed integer (deltas).
    I64(i64),
    /// Floating point (times, fractions).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Static string (names picked at the call site).
    Str(&'static str),
}

impl FieldValue {
    fn write_json(&self, out: &mut String) {
        match *self {
            FieldValue::U64(v) => json::push_u64(out, v),
            FieldValue::I64(v) => {
                use std::fmt::Write as _;
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(v) => json::push_f64(out, v),
            FieldValue::Bool(v) => out.push_str(if v { "true" } else { "false" }),
            FieldValue::Str(s) => json::push_str_literal(out, s),
        }
    }
}

/// A single sim-time-stamped structured trace event.
///
/// Fields are keyed by static strings in a `BTreeMap`, so serialization
/// order is lexicographic and therefore deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulation time in seconds (never wall clock).
    pub time: f64,
    /// Originating subsystem.
    pub subsystem: Subsystem,
    /// Severity.
    pub level: Level,
    /// Event kind, e.g. `"join"`, `"switch"`, `"repair"`.
    pub kind: &'static str,
    /// Typed payload, ordered by key.
    pub fields: BTreeMap<&'static str, FieldValue>,
}

impl TraceEvent {
    /// A new `Info`-level event with no fields.
    #[must_use]
    pub fn new(time: f64, subsystem: Subsystem, kind: &'static str) -> Self {
        TraceEvent {
            time,
            subsystem,
            level: Level::Info,
            kind,
            fields: BTreeMap::new(),
        }
    }

    /// Overrides the severity (builder style).
    #[must_use]
    pub fn level(mut self, level: Level) -> Self {
        self.level = level;
        self
    }

    /// Attaches an unsigned-integer field.
    #[must_use]
    pub fn u64(mut self, key: &'static str, value: u64) -> Self {
        self.fields.insert(key, FieldValue::U64(value));
        self
    }

    /// Attaches a signed-integer field.
    #[must_use]
    pub fn i64(mut self, key: &'static str, value: i64) -> Self {
        self.fields.insert(key, FieldValue::I64(value));
        self
    }

    /// Attaches a floating-point field.
    #[must_use]
    pub fn f64(mut self, key: &'static str, value: f64) -> Self {
        self.fields.insert(key, FieldValue::F64(value));
        self
    }

    /// Attaches a boolean field.
    #[must_use]
    pub fn bool(mut self, key: &'static str, value: bool) -> Self {
        self.fields.insert(key, FieldValue::Bool(value));
        self
    }

    /// Attaches a static-string field.
    #[must_use]
    pub fn str(mut self, key: &'static str, value: &'static str) -> Self {
        self.fields.insert(key, FieldValue::Str(value));
        self
    }

    /// Serializes the event as one JSON object appended onto `out`
    /// (no trailing newline).
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"t\":");
        json::push_f64(out, self.time);
        out.push_str(",\"sub\":\"");
        out.push_str(self.subsystem.as_str());
        out.push_str("\",\"lvl\":\"");
        out.push_str(self.level.as_str());
        out.push_str("\",\"kind\":");
        json::push_str_literal(out, self.kind);
        out.push_str(",\"fields\":{");
        let mut first = true;
        for (key, value) in &self.fields {
            if !first {
                out.push(',');
            }
            first = false;
            json::push_str_literal(out, key);
            out.push(':');
            value.write_json(out);
        }
        out.push_str("}}");
    }

    /// The event as a standalone JSON string.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Destination for trace events.
///
/// Implementations must be deterministic: same event sequence in, same
/// observable state out. Sinks are `Send` so a whole observed simulator
/// can be handed to a sweep worker thread; each run still owns its sink
/// exclusively — there is no concurrent recording into one sink.
pub trait Sink: fmt::Debug + Send {
    /// Records one event. Infallible by design; sinks that can fail
    /// (e.g. file I/O) swallow errors and expose a count instead.
    fn record(&mut self, event: &TraceEvent);

    /// Flushes buffered output. Called once at end of run.
    fn flush(&mut self) {}

    /// False if this sink discards everything, letting [`Tracer`] skip
    /// event construction entirely.
    #[must_use]
    fn is_enabled(&self) -> bool {
        true
    }
}

/// A sink that discards every event and reports itself disabled, so the
/// instrumented hot path never even builds the [`TraceEvent`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _event: &TraceEvent) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// A bounded in-memory sink keeping the most recent events.
///
/// Created together with a [`RingHandle`] through which the retained
/// events can be read back after the run (the sink itself is boxed away
/// inside the tracer).
#[derive(Debug)]
pub struct RingSink {
    buf: Arc<Mutex<VecDeque<TraceEvent>>>,
    capacity: usize,
}

/// Locks a shared buffer, recovering the data even if another holder
/// panicked mid-access (determinism is per-run; a poisoned run has
/// already failed loudly).
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl RingSink {
    /// A ring retaining at most `capacity` events (oldest evicted first).
    #[must_use]
    pub fn new(capacity: usize) -> (RingSink, RingHandle) {
        let buf = Arc::new(Mutex::new(VecDeque::new()));
        let handle = RingHandle(Arc::clone(&buf));
        (RingSink { buf, capacity }, handle)
    }
}

impl Sink for RingSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        let mut buf = lock_unpoisoned(&self.buf);
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Read side of a [`RingSink`].
#[derive(Debug, Clone)]
pub struct RingHandle(Arc<Mutex<VecDeque<TraceEvent>>>);

impl RingHandle {
    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.0).len()
    }

    /// True if nothing was retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        lock_unpoisoned(&self.0).is_empty()
    }

    /// A copy of the retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        lock_unpoisoned(&self.0).iter().cloned().collect()
    }
}

/// A sink writing one JSON object per line to any [`Write`] target.
///
/// The serialization buffer is reused across events, so steady-state
/// recording does not allocate. I/O errors are swallowed (sinks are
/// infallible) but counted in [`JsonlSink::write_errors`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    line: String,
    write_errors: u64,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) the file at `path` and writes JSONL to it.
    ///
    /// # Errors
    ///
    /// Returns any error from creating the file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    #[must_use]
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            line: String::with_capacity(256),
            write_errors: 0,
        }
    }

    /// Number of write/flush errors swallowed so far.
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }
}

impl<W: Write + fmt::Debug + Send> Sink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        self.line.clear();
        event.write_json(&mut self.line);
        self.line.push('\n');
        if self.out.write_all(self.line.as_bytes()).is_err() {
            self.write_errors += 1;
        }
    }

    fn flush(&mut self) {
        if self.out.flush().is_err() {
            self.write_errors += 1;
        }
    }
}

/// A cloneable in-memory byte buffer implementing [`Write`].
///
/// Pair one with a [`JsonlSink`] to capture a trace in memory and read
/// the bytes back after the sink has been boxed into a tracer — the
/// byte-identity determinism tests are built on this.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        SharedBuffer::default()
    }

    /// A copy of everything written so far.
    #[must_use]
    pub fn contents(&self) -> Vec<u8> {
        lock_unpoisoned(&self.bytes).clone()
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.bytes).len()
    }

    /// True if nothing was written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        lock_unpoisoned(&self.bytes).is_empty()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        lock_unpoisoned(&self.bytes).extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Filters trace events by subsystem and level and hands the survivors
/// to a boxed [`Sink`].
///
/// A default-constructed tracer has no sink and records nothing.
#[derive(Debug)]
pub struct Tracer {
    sink: Option<Box<dyn Sink>>,
    min_level: Level,
    mask: u8,
    emitted: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer {
            sink: None,
            min_level: Level::Debug,
            mask: Subsystem::MASK_ALL,
            emitted: 0,
        }
    }
}

impl Tracer {
    /// A tracer with no sink: records nothing, costs one branch.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A tracer recording everything into `sink`.
    #[must_use]
    pub fn to_sink(sink: Box<dyn Sink>) -> Self {
        Tracer {
            sink: Some(sink),
            ..Tracer::default()
        }
    }

    /// Drops events below `level` (builder style).
    #[must_use]
    pub fn with_min_level(mut self, level: Level) -> Self {
        self.min_level = level;
        self
    }

    /// Keeps only events from `subsystems` (builder style).
    #[must_use]
    pub fn with_subsystems(mut self, subsystems: &[Subsystem]) -> Self {
        self.mask = subsystems.iter().fold(0, |m, s| m | s.bit());
        self
    }

    /// True if an event for `subsystem` at `level` would be recorded.
    #[inline]
    #[must_use]
    pub fn enabled(&self, subsystem: Subsystem, level: Level) -> bool {
        match &self.sink {
            Some(sink) => {
                sink.is_enabled() && level >= self.min_level && (self.mask & subsystem.bit()) != 0
            }
            None => false,
        }
    }

    /// Records `event` if it passes the filter.
    pub fn emit(&mut self, event: TraceEvent) {
        if self.enabled(event.subsystem, event.level) {
            if let Some(sink) = self.sink.as_mut() {
                sink.record(&event);
                self.emitted += 1;
            }
        }
    }

    /// Number of events recorded (post-filter) so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Flushes the sink. Call once at end of run.
    pub fn finish(&mut self) {
        if let Some(sink) = self.sink.as_mut() {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, kind: &'static str) -> TraceEvent {
        TraceEvent::new(t, Subsystem::Churn, kind)
    }

    #[test]
    fn event_json_is_key_ordered_and_stable() {
        let e = TraceEvent::new(12.5, Subsystem::Rost, "switch")
            .u64("id", 7)
            .f64("btp", 0.25)
            .bool("ok", true)
            .str("algo", "rost")
            .i64("delta", -3);
        assert_eq!(
            e.to_json(),
            "{\"t\":12.5,\"sub\":\"rost\",\"lvl\":\"info\",\"kind\":\"switch\",\
             \"fields\":{\"algo\":\"rost\",\"btp\":0.25,\"delta\":-3,\"id\":7,\"ok\":true}}"
        );
    }

    #[test]
    fn null_sink_reports_disabled() {
        let tracer = Tracer::to_sink(Box::new(NullSink));
        assert!(!tracer.enabled(Subsystem::Sim, Level::Warn));
    }

    #[test]
    fn level_filter_drops_below_min() {
        let (sink, handle) = RingSink::new(8);
        let mut tracer = Tracer::to_sink(Box::new(sink)).with_min_level(Level::Info);
        tracer.emit(ev(1.0, "debug-noise").level(Level::Debug));
        tracer.emit(ev(2.0, "keep"));
        assert_eq!(tracer.emitted(), 1);
        assert_eq!(handle.events()[0].kind, "keep");
    }

    #[test]
    fn subsystem_mask_filters() {
        let (sink, handle) = RingSink::new(8);
        let mut tracer =
            Tracer::to_sink(Box::new(sink)).with_subsystems(&[Subsystem::Cer, Subsystem::Rost]);
        tracer.emit(TraceEvent::new(1.0, Subsystem::Churn, "drop-me"));
        tracer.emit(TraceEvent::new(2.0, Subsystem::Cer, "keep-me"));
        assert_eq!(handle.len(), 1);
        assert_eq!(handle.events()[0].subsystem, Subsystem::Cer);
    }

    #[test]
    fn ring_keeps_most_recent() {
        let (sink, handle) = RingSink::new(3);
        let mut tracer = Tracer::to_sink(Box::new(sink));
        for i in 0..10u64 {
            tracer.emit(ev(i as f64, "e").u64("i", i));
        }
        let kept: Vec<u64> = handle
            .events()
            .iter()
            .map(|e| match e.fields["i"] {
                FieldValue::U64(v) => v,
                ref other => panic!("unexpected field {other:?}"),
            })
            .collect();
        assert_eq!(kept, vec![7, 8, 9]);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let buf = SharedBuffer::new();
        let mut tracer = Tracer::to_sink(Box::new(JsonlSink::new(buf.clone())));
        tracer.emit(ev(1.0, "a"));
        tracer.emit(ev(2.0, "b").u64("n", 1));
        tracer.finish();
        let text = String::from_utf8(buf.contents()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"t\":1,"));
        assert!(lines[1].contains("\"n\":1"));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tracer = Tracer::disabled();
        tracer.emit(ev(0.0, "x"));
        assert_eq!(tracer.emitted(), 0);
        assert!(!tracer.enabled(Subsystem::Sim, Level::Warn));
    }
}
