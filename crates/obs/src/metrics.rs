//! The metrics registry: counters, gauges with high-water marks, and
//! fixed-bucket histograms, keyed by static names in `BTreeMap`s so
//! snapshots serialize in a deterministic order.

use std::collections::BTreeMap;

use crate::json;

/// Default histogram bucket upper bounds (seconds-ish scale), used when a
/// histogram is observed before being registered explicitly.
pub const DEFAULT_BUCKETS: [f64; 10] = [
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0,
];

#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Gauge {
    value: f64,
    high_water: f64,
}

impl Gauge {
    fn set(&mut self, value: f64) {
        self.value = value;
        if value > self.high_water {
            self.high_water = value;
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Histogram {
    /// Ascending upper bounds; `counts` has one extra overflow bucket.
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0.0,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
    }
}

/// Point-in-time copy of a gauge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeSnapshot {
    /// Last value set.
    pub value: f64,
    /// Maximum value ever set.
    pub high_water: f64,
}

/// Point-in-time copy of a histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the final entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub total: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

/// Counters, gauges and histograms for one run.
///
/// Names are `&'static str` so recording never allocates; all maps are
/// `BTreeMap` so iteration (and therefore serialization) order is the
/// lexicographic key order.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to the counter `name` (auto-registered at zero).
    #[inline]
    pub fn count(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Sets the gauge `name` to `value`, updating its high-water mark.
    #[inline]
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.entry(name).or_default().set(value);
    }

    /// Registers the histogram `name` with explicit bucket `bounds`
    /// (ascending upper bounds). No-op if already registered.
    pub fn register_histogram(&mut self, name: &'static str, bounds: &[f64]) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds));
    }

    /// Records `value` into the histogram `name` (auto-registered with
    /// [`DEFAULT_BUCKETS`] on first use).
    #[inline]
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(&DEFAULT_BUCKETS))
            .observe(value);
    }

    /// A point-in-time copy of every metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, v)| (name.to_string(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(name, g)| {
                    (
                        name.to_string(),
                        GaugeSnapshot {
                            value: g.value,
                            high_water: g.high_water,
                        },
                    )
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| {
                    (
                        name.to_string(),
                        HistogramSnapshot {
                            bounds: h.bounds.clone(),
                            counts: h.counts.clone(),
                            total: h.total,
                            sum: h.sum,
                        },
                    )
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`], comparable across runs
/// and serializable to deterministic JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histogram contents by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter `name`, or 0 if never incremented.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge `name`, if ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<GaugeSnapshot> {
        self.gauges.get(name).copied()
    }

    /// The histogram `name`, if ever observed.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Serializes the snapshot as one deterministic JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            json::push_str_literal(&mut out, name);
            out.push(':');
            json::push_u64(&mut out, *v);
        }
        out.push_str("},\"gauges\":{");
        first = true;
        for (name, g) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            json::push_str_literal(&mut out, name);
            out.push_str(":{\"value\":");
            json::push_f64(&mut out, g.value);
            out.push_str(",\"high_water\":");
            json::push_f64(&mut out, g.high_water);
            out.push('}');
        }
        out.push_str("},\"histograms\":{");
        first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            json::push_str_literal(&mut out, name);
            out.push_str(":{\"bounds\":[");
            for (i, b) in h.bounds.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::push_f64(&mut out, *b);
            }
            out.push_str("],\"counts\":[");
            for (i, c) in h.counts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::push_u64(&mut out, *c);
            }
            out.push_str("],\"total\":");
            json::push_u64(&mut out, h.total);
            out.push_str(",\"sum\":");
            json::push_f64(&mut out, h.sum);
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.count("a", 1);
        m.count("a", 4);
        m.count("b", 2);
        let snap = m.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("b"), 2);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let mut m = MetricsRegistry::new();
        m.gauge("depth", 3.0);
        m.gauge("depth", 9.0);
        m.gauge("depth", 2.0);
        let g = m.snapshot().gauge("depth").expect("set");
        assert_eq!(g.value.to_bits(), 2.0_f64.to_bits());
        assert_eq!(g.high_water.to_bits(), 9.0_f64.to_bits());
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut m = MetricsRegistry::new();
        m.register_histogram("lat", &[1.0, 10.0]);
        for v in [0.5, 0.9, 5.0, 99.0] {
            m.observe("lat", v);
        }
        let snap = m.snapshot();
        let h = snap.histogram("lat").expect("registered");
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.total, 4);
        assert_eq!(h.sum.to_bits(), 105.4_f64.to_bits());
    }

    #[test]
    fn observe_auto_registers_with_default_buckets() {
        let mut m = MetricsRegistry::new();
        m.observe("auto", 0.02);
        let snap = m.snapshot();
        let h = snap.histogram("auto").expect("auto-registered");
        assert_eq!(h.bounds.len(), DEFAULT_BUCKETS.len());
        assert_eq!(h.counts.iter().sum::<u64>(), 1);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_ordered() {
        let mut m = MetricsRegistry::new();
        m.count("z", 1);
        m.count("a", 2);
        m.gauge("g", 1.5);
        m.register_histogram("h", &[1.0]);
        m.observe("h", 0.5);
        let a = m.snapshot();
        let b = m.snapshot();
        assert_eq!(a, b);
        let js = a.to_json();
        assert_eq!(js, b.to_json());
        // "a" serializes before "z" regardless of insertion order.
        let a_pos = js.find("\"a\"").expect("a present");
        let z_pos = js.find("\"z\"").expect("z present");
        assert!(a_pos < z_pos);
        assert!(js.contains("\"high_water\":1.5"));
        assert!(js.contains("\"counts\":[1,0]"));
    }
}
