//! Process-memory introspection for benchmark artifacts.
//!
//! Memory is a first-class benchmark axis at the `--mega` scale: a
//! 1M-member run is useless if it does not fit in RAM. Peak RSS is a
//! wall-clock-adjacent quantity — it depends on the allocator, the
//! platform and every run sharing the process — so, like the span
//! profiler's nanosecond readings, it is quarantined to `BENCH_*.json`
//! artifacts and never enters traces, metrics sidecars or manifests
//! (which must stay byte-identical for pinned seeds). The deterministic
//! counterpart, suitable anywhere, is
//! `EventQueue::bytes_high_water` in `rom-sim`.

/// Peak resident-set size of the current process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable.
///
/// The value is a lifetime high-water mark for the whole process, so in a
/// multi-phase bench the reading after phase N includes every earlier
/// phase; sample per-phase deltas if attribution matters.
///
/// # Examples
///
/// ```
/// // On Linux this reports a non-zero peak; elsewhere it is None.
/// if let Some(peak) = rom_obs::peak_rss_bytes() {
///     assert!(peak > 0);
/// }
/// ```
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_reports_plausible_value_on_linux() {
        if !std::path::Path::new("/proc/self/status").exists() {
            return;
        }
        let peak = peak_rss_bytes().expect("procfs present but VmHWM missing");
        // Any live Rust test process has at least a few hundred kB
        // resident and (on test hardware) far less than a terabyte.
        assert!(peak > 100 * 1024, "implausibly small peak RSS: {peak}");
        assert!(peak < 1 << 40, "implausibly large peak RSS: {peak}");
    }

    #[test]
    fn peak_rss_is_monotone() {
        if peak_rss_bytes().is_none() {
            return;
        }
        let before = peak_rss_bytes().expect("checked above");
        // Touch a real allocation; the high-water mark must not decrease.
        let sink: Vec<u64> = (0..100_000).collect();
        let after = peak_rss_bytes().expect("checked above");
        assert!(after >= before, "VmHWM decreased: {before} -> {after}");
        assert!(sink.len() == 100_000);
    }
}
