//! Per-member protocol health timelines, derived live from trace events.
//!
//! [`HealthSink`] tees the event stream: every event is forwarded
//! verbatim to an inner sink (so the JSONL trace bytes are untouched) and
//! simultaneously folded into a [`HealthAccumulator`], which maintains
//! one [`MemberHealth`] record per member id it sees. After the run the
//! [`HealthHandle`] serializes the records — id-ordered, sim-time only —
//! as the deterministic `.health.jsonl` sidecar.
//!
//! The records capture the paper's per-member longitudinal story
//! (Figs. 4–14): time-to-first-packet, cumulative starving time, recovery
//! latency per failure episode, parent-switch count and control-message
//! counts. Members seeded into the equilibrium population emit no join
//! event, so they enter the timeline at their first traced protocol
//! action (`joined_secs` stays unset for them).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::json;
use crate::trace::{FieldValue, Sink, Subsystem, TraceEvent};

/// One member's protocol health timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemberHealth {
    /// Sim time of the member's first traced appearance.
    pub first_seen_secs: f64,
    /// Sim time of the first successful join, if traced.
    pub joined_secs: Option<f64>,
    /// Sim time of the (last) departure, if traced.
    pub departed_secs: Option<f64>,
    /// Cumulative starving time from repair accounting, seconds.
    pub starving_secs: f64,
    /// Closed failure-recovery episodes (one per `repair` event).
    pub recovery_episodes: u64,
    /// Sum of per-episode recovery latencies, seconds.
    pub recovery_latency_sum_secs: f64,
    /// Largest single recovery latency, seconds.
    pub recovery_latency_max_secs: f64,
    /// Parent changes: rejoins after disruption plus completed switches.
    pub parent_switches: u64,
    /// Successful initial joins.
    pub joins: u64,
    /// Rejoins after disruption.
    pub rejoins: u64,
    /// Rejected join attempts (no capacity in view).
    pub rejections: u64,
    /// Completed ROST switches initiated by this member.
    pub switches: u64,
    /// Switch attempts that found the lock set busy.
    pub switch_busy: u64,
}

impl MemberHealth {
    /// Time from first appearance to first successful join — the
    /// time-to-first-packet proxy (delivery starts at attach).
    #[must_use]
    pub fn ttfp_secs(&self) -> Option<f64> {
        self.joined_secs.map(|j| j - self.first_seen_secs)
    }

    /// Total control messages attributed to this member.
    #[must_use]
    pub fn control_msgs(&self) -> u64 {
        self.joins + self.rejoins + self.rejections + self.switches + self.switch_busy
    }

    /// Serializes the record (with its `id`) as one JSONL object.
    fn write_json(&self, id: u64, out: &mut String) {
        out.push_str("{\"id\":");
        json::push_u64(out, id);
        out.push_str(",\"first_seen_secs\":");
        json::push_f64(out, self.first_seen_secs);
        out.push_str(",\"joined_secs\":");
        push_opt_f64(out, self.joined_secs);
        out.push_str(",\"ttfp_secs\":");
        push_opt_f64(out, self.ttfp_secs());
        out.push_str(",\"departed_secs\":");
        push_opt_f64(out, self.departed_secs);
        out.push_str(",\"starving_secs\":");
        json::push_f64(out, self.starving_secs);
        out.push_str(",\"recovery\":{\"episodes\":");
        json::push_u64(out, self.recovery_episodes);
        out.push_str(",\"latency_sum_secs\":");
        json::push_f64(out, self.recovery_latency_sum_secs);
        out.push_str(",\"latency_max_secs\":");
        json::push_f64(out, self.recovery_latency_max_secs);
        out.push_str("},\"parent_switches\":");
        json::push_u64(out, self.parent_switches);
        out.push_str(",\"control\":{\"joins\":");
        json::push_u64(out, self.joins);
        out.push_str(",\"rejoins\":");
        json::push_u64(out, self.rejoins);
        out.push_str(",\"rejections\":");
        json::push_u64(out, self.rejections);
        out.push_str(",\"switches\":");
        json::push_u64(out, self.switches);
        out.push_str(",\"switch_busy\":");
        json::push_u64(out, self.switch_busy);
        out.push_str(",\"total\":");
        json::push_u64(out, self.control_msgs());
        out.push_str("}}");
    }
}

fn push_opt_f64(out: &mut String, value: Option<f64>) {
    match value {
        Some(v) => json::push_f64(out, v),
        None => out.push_str("null"),
    }
}

/// Folds trace events into per-member [`MemberHealth`] records.
#[derive(Debug, Default)]
pub struct HealthAccumulator {
    members: BTreeMap<u64, MemberHealth>,
}

fn u64_field(event: &TraceEvent, key: &str) -> Option<u64> {
    match event.fields.get(key) {
        Some(&FieldValue::U64(v)) => Some(v),
        _ => None,
    }
}

fn f64_field(event: &TraceEvent, key: &str) -> Option<f64> {
    match event.fields.get(key) {
        Some(&FieldValue::F64(v)) => Some(v),
        _ => None,
    }
}

impl HealthAccumulator {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        HealthAccumulator::default()
    }

    fn member(&mut self, id: u64, now: f64) -> &mut MemberHealth {
        self.members.entry(id).or_insert_with(|| MemberHealth {
            first_seen_secs: now,
            ..MemberHealth::default()
        })
    }

    /// Folds one trace event into the timeline it concerns (if any).
    pub fn observe(&mut self, event: &TraceEvent) {
        let now = event.time;
        match (event.subsystem, event.kind) {
            (Subsystem::Churn, "join") => {
                if let Some(id) = u64_field(event, "id") {
                    let m = self.member(id, now);
                    if m.joined_secs.is_none() {
                        m.joined_secs = Some(now);
                    }
                    m.joins += 1;
                }
            }
            (Subsystem::Churn, "rejoin") => {
                if let Some(id) = u64_field(event, "id") {
                    let m = self.member(id, now);
                    m.rejoins += 1;
                    m.parent_switches += 1;
                }
            }
            (Subsystem::Churn, "join_rejected") => {
                if let Some(id) = u64_field(event, "id") {
                    self.member(id, now).rejections += 1;
                }
            }
            (Subsystem::Churn, "departure") => {
                if let Some(id) = u64_field(event, "id") {
                    self.member(id, now).departed_secs = Some(now);
                }
            }
            (Subsystem::Rost, "switch") => {
                if let Some(id) = u64_field(event, "id") {
                    let m = self.member(id, now);
                    m.switches += 1;
                    m.parent_switches += 1;
                }
            }
            (Subsystem::Rost, "switch_busy") => {
                if let Some(id) = u64_field(event, "id") {
                    self.member(id, now).switch_busy += 1;
                }
            }
            (Subsystem::Cer, "repair") => {
                if let Some(id) = u64_field(event, "member") {
                    let latency = f64_field(event, "latency_secs").unwrap_or(0.0);
                    let starved = f64_field(event, "starved_secs").unwrap_or(0.0);
                    let m = self.member(id, now);
                    m.recovery_episodes += 1;
                    m.recovery_latency_sum_secs += latency;
                    if latency > m.recovery_latency_max_secs {
                        m.recovery_latency_max_secs = latency;
                    }
                    m.starving_secs += starved;
                }
            }
            _ => {}
        }
    }

    /// Number of members with a timeline.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no member has been seen.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The record for `id`, if seen.
    #[must_use]
    pub fn member_health(&self, id: u64) -> Option<&MemberHealth> {
        self.members.get(&id)
    }

    /// Serializes every record as JSONL, ascending by member id — the
    /// `.health.jsonl` sidecar body. Deterministic: every value derives
    /// from sim-time trace events.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.members.len() * 128);
        for (&id, health) in &self.members {
            health.write_json(id, &mut out);
            out.push('\n');
        }
        out
    }
}

fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read side of a [`HealthSink`], alive after the sink is boxed away.
#[derive(Debug, Clone)]
pub struct HealthHandle(Arc<Mutex<HealthAccumulator>>);

impl HealthHandle {
    /// The accumulated records as the `.health.jsonl` sidecar body.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        lock_unpoisoned(&self.0).to_jsonl()
    }

    /// Number of members with a timeline.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.0).len()
    }

    /// True when no member has been seen.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        lock_unpoisoned(&self.0).is_empty()
    }
}

/// A tee sink: forwards every event to `inner` unchanged while folding it
/// into a shared [`HealthAccumulator`].
#[derive(Debug)]
pub struct HealthSink<S> {
    inner: S,
    acc: Arc<Mutex<HealthAccumulator>>,
}

impl<S> HealthSink<S> {
    /// Wraps `inner`, returning the sink and the read handle.
    #[must_use]
    pub fn new(inner: S) -> (HealthSink<S>, HealthHandle) {
        let acc = Arc::new(Mutex::new(HealthAccumulator::new()));
        let handle = HealthHandle(Arc::clone(&acc));
        (HealthSink { inner, acc }, handle)
    }
}

impl<S: Sink + fmt::Debug> Sink for HealthSink<S> {
    fn record(&mut self, event: &TraceEvent) {
        lock_unpoisoned(&self.acc).observe(event);
        self.inner.record(event);
    }

    fn flush(&mut self) {
        self.inner.flush();
    }

    fn is_enabled(&self) -> bool {
        self.inner.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, sub: Subsystem, kind: &'static str) -> TraceEvent {
        TraceEvent::new(t, sub, kind)
    }

    #[test]
    fn join_after_rejection_yields_ttfp() {
        let mut acc = HealthAccumulator::new();
        acc.observe(&ev(1.0, Subsystem::Churn, "join_rejected").u64("id", 7));
        acc.observe(&ev(4.5, Subsystem::Churn, "join").u64("id", 7).u64("parent", 1));
        let m = acc.member_health(7).expect("seen");
        assert_eq!(m.rejections, 1);
        assert_eq!(m.joins, 1);
        assert_eq!(m.ttfp_secs().map(f64::to_bits), Some(3.5_f64.to_bits()));
    }

    #[test]
    fn switches_and_rejoins_count_as_parent_switches() {
        let mut acc = HealthAccumulator::new();
        acc.observe(&ev(1.0, Subsystem::Churn, "join").u64("id", 3));
        acc.observe(&ev(2.0, Subsystem::Rost, "switch").u64("id", 3));
        acc.observe(&ev(3.0, Subsystem::Rost, "switch_busy").u64("id", 3));
        acc.observe(&ev(4.0, Subsystem::Churn, "rejoin").u64("id", 3));
        let m = acc.member_health(3).expect("seen");
        assert_eq!(m.parent_switches, 2);
        assert_eq!(m.control_msgs(), 4);
    }

    #[test]
    fn repairs_fold_latency_and_starving() {
        let mut acc = HealthAccumulator::new();
        acc.observe(
            &ev(20.0, Subsystem::Cer, "repair")
                .u64("member", 9)
                .f64("latency_secs", 15.0)
                .f64("starved_secs", 2.5),
        );
        acc.observe(
            &ev(60.0, Subsystem::Cer, "repair")
                .u64("member", 9)
                .f64("latency_secs", 5.0)
                .f64("starved_secs", 0.5),
        );
        let m = acc.member_health(9).expect("seen");
        assert_eq!(m.recovery_episodes, 2);
        assert_eq!(m.recovery_latency_max_secs.to_bits(), 15.0_f64.to_bits());
        assert_eq!(m.recovery_latency_sum_secs.to_bits(), 20.0_f64.to_bits());
        assert_eq!(m.starving_secs.to_bits(), 3.0_f64.to_bits());
    }

    #[test]
    fn jsonl_is_id_ordered_and_stable() {
        let mut acc = HealthAccumulator::new();
        acc.observe(&ev(1.0, Subsystem::Churn, "join").u64("id", 42));
        acc.observe(&ev(2.0, Subsystem::Churn, "join").u64("id", 7));
        let text = acc.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"id\":7,"));
        assert!(lines[1].starts_with("{\"id\":42,"));
        assert_eq!(text, acc.to_jsonl());
    }

    #[test]
    fn tee_sink_forwards_and_accumulates() {
        use crate::trace::{JsonlSink, SharedBuffer, Tracer};
        let buf = SharedBuffer::new();
        let (sink, health) = HealthSink::new(JsonlSink::new(buf.clone()));
        let mut tracer = Tracer::to_sink(Box::new(sink));
        tracer.emit(ev(1.0, Subsystem::Churn, "join").u64("id", 5));
        tracer.finish();
        assert_eq!(health.len(), 1);
        let plain = SharedBuffer::new();
        let mut direct = Tracer::to_sink(Box::new(JsonlSink::new(plain.clone())));
        direct.emit(ev(1.0, Subsystem::Churn, "join").u64("id", 5));
        direct.finish();
        assert_eq!(buf.contents(), plain.contents());
    }
}
