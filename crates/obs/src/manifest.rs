//! Run provenance: a small manifest identifying exactly which run
//! produced a results file, so every `results/*.csv` row is reproducible.

use std::collections::BTreeMap;

use crate::json;

/// 64-bit FNV-1a hash — the workspace's standard content digest for
/// provenance (stable across platforms, no dependencies).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Provenance record for one simulation run, emitted next to its trace
/// and CSV output.
///
/// Two identical-seed runs must produce identical manifests; the
/// determinism tests compare them field by field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// Human name of the run (e.g. the bench binary).
    pub name: String,
    /// The single `u64` seed the run derives all randomness from.
    pub seed: u64,
    /// FNV-1a digest of the full config's `Debug` rendering.
    pub config_digest: u64,
    /// Version of the workspace that produced the run.
    pub crate_version: String,
    /// Total events the simulation loop processed.
    pub events_processed: u64,
    /// Trace events recorded (post-filter).
    pub trace_events: u64,
    /// `RunOutcome` of the simulation, as text (`Drained`,
    /// `HorizonReached`, `BudgetExhausted`).
    pub outcome: String,
    /// Free-form extra provenance (metric digests, scale knobs), ordered.
    pub extra: BTreeMap<String, String>,
}

impl RunManifest {
    /// A manifest with the given identity and everything else zeroed.
    #[must_use]
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        RunManifest {
            name: name.into(),
            seed,
            config_digest: 0,
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            events_processed: 0,
            trace_events: 0,
            outcome: String::new(),
            extra: BTreeMap::new(),
        }
    }

    /// Adds a free-form provenance entry (builder style).
    #[must_use]
    pub fn with_extra(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.extra.insert(key.into(), value.into());
        self
    }

    /// Serializes the manifest as one deterministic JSON object
    /// (trailing newline included, so the file is a valid JSONL line).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"name\":");
        json::push_str_literal(&mut out, &self.name);
        out.push_str(",\"seed\":");
        json::push_u64(&mut out, self.seed);
        out.push_str(",\"config_digest\":");
        json::push_u64(&mut out, self.config_digest);
        out.push_str(",\"crate_version\":");
        json::push_str_literal(&mut out, &self.crate_version);
        out.push_str(",\"events_processed\":");
        json::push_u64(&mut out, self.events_processed);
        out.push_str(",\"trace_events\":");
        json::push_u64(&mut out, self.trace_events);
        out.push_str(",\"outcome\":");
        json::push_str_literal(&mut out, &self.outcome);
        out.push_str(",\"extra\":{");
        let mut first = true;
        for (key, value) in &self.extra {
            if !first {
                out.push(',');
            }
            first = false;
            json::push_str_literal(&mut out, key);
            out.push(':');
            json::push_str_literal(&mut out, value);
        }
        out.push_str("}}\n");
        out
    }
}

/// Aggregate provenance for a multi-run sweep: every traced cell's
/// [`RunManifest`] keyed by its `(point, seed)` grid coordinates, merged
/// into one record.
///
/// Workers may insert in any completion order; [`SweepManifest::to_json`]
/// and [`SweepManifest::cells`] always present cells sorted by
/// `(point, seed)`, so the serialized aggregate is independent of worker
/// count and scheduling — the property the parallel sweep engine's
/// determinism wall pins.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SweepManifest {
    /// Human name of the sweep (e.g. the bench binary).
    pub name: String,
    cells: Vec<(usize, u64, RunManifest)>,
}

impl SweepManifest {
    /// An empty aggregate named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        SweepManifest {
            name: name.into(),
            cells: Vec::new(),
        }
    }

    /// Records the manifest of the cell at grid coordinates
    /// `(point, seed)`. Insertion order is irrelevant.
    pub fn push(&mut self, point: usize, seed: u64, manifest: RunManifest) {
        self.cells.push((point, seed, manifest));
    }

    /// Number of recorded cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no cell was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The recorded cells, sorted by `(point, seed)`.
    #[must_use]
    pub fn cells(&self) -> Vec<&(usize, u64, RunManifest)> {
        let mut sorted: Vec<_> = self.cells.iter().collect();
        sorted.sort_by_key(|(point, seed, _)| (*point, *seed));
        sorted
    }

    /// Sum of `events_processed` across all cells.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.cells.iter().map(|(_, _, m)| m.events_processed).sum()
    }

    /// Sum of recorded trace events across all cells.
    #[must_use]
    pub fn trace_events(&self) -> u64 {
        self.cells.iter().map(|(_, _, m)| m.trace_events).sum()
    }

    /// Serializes the aggregate as one deterministic JSON object with
    /// cells sorted by `(point, seed)` (trailing newline included). The
    /// `cells_digest` field is the FNV-1a hash over the sorted per-cell
    /// manifest JSONs, so two aggregates are byte-comparable at a glance.
    #[must_use]
    pub fn to_json(&self) -> String {
        let sorted = self.cells();
        let mut body = String::with_capacity(256 * (1 + sorted.len()));
        let mut digest_input = String::new();
        let mut first = true;
        for (point, seed, manifest) in sorted {
            if !first {
                body.push(',');
            }
            first = false;
            let cell_json = manifest.to_json();
            let cell_json = cell_json.trim_end();
            digest_input.push_str(cell_json);
            body.push_str("{\"point\":");
            json::push_u64(&mut body, *point as u64);
            body.push_str(",\"seed\":");
            json::push_u64(&mut body, *seed);
            body.push_str(",\"manifest\":");
            body.push_str(cell_json);
            body.push('}');
        }

        let mut out = String::with_capacity(body.len() + 128);
        out.push_str("{\"name\":");
        json::push_str_literal(&mut out, &self.name);
        out.push_str(",\"cells\":");
        json::push_u64(&mut out, self.cells.len() as u64);
        out.push_str(",\"events_processed\":");
        json::push_u64(&mut out, self.events_processed());
        out.push_str(",\"trace_events\":");
        json::push_u64(&mut out, self.trace_events());
        out.push_str(",\"cells_digest\":\"");
        use std::fmt::Write as _;
        let _ = write!(out, "{:016x}", fnv1a(digest_input.as_bytes()));
        out.push_str("\",\"runs\":[");
        out.push_str(&body);
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"hello"), 0xa430_d846_80aa_bd0b);
        // Same input, same digest — always.
        assert_eq!(fnv1a(b"config"), fnv1a(b"config"));
        assert_ne!(fnv1a(b"config-a"), fnv1a(b"config-b"));
    }

    #[test]
    fn manifest_json_round_trip_shape() {
        let m = RunManifest::new("fig14_rost_cer", 42)
            .with_extra("metrics_digest", "123")
            .with_extra("alg", "rost");
        let js = m.to_json();
        assert!(js.starts_with("{\"name\":\"fig14_rost_cer\",\"seed\":42,"));
        assert!(js.ends_with("}}\n"));
        // BTreeMap: "alg" before "metrics_digest" regardless of insertion.
        let a = js.find("\"alg\"").expect("alg present");
        let b = js.find("\"metrics_digest\"").expect("digest present");
        assert!(a < b);
    }

    #[test]
    fn sweep_manifest_sorts_cells_regardless_of_insertion_order() {
        let cell = |name: &str, seed: u64, events: u64| {
            let mut m = RunManifest::new(name, seed);
            m.events_processed = events;
            m.trace_events = events / 2;
            m.outcome = "HorizonReached".to_string();
            m
        };
        // Completion order (worker-dependent) vs grid order.
        let mut scrambled = SweepManifest::new("sweep");
        scrambled.push(1, 2, cell("b", 2, 40));
        scrambled.push(0, 1, cell("a", 1, 10));
        scrambled.push(1, 1, cell("b", 1, 30));
        scrambled.push(0, 2, cell("a", 2, 20));
        let mut ordered = SweepManifest::new("sweep");
        ordered.push(0, 1, cell("a", 1, 10));
        ordered.push(0, 2, cell("a", 2, 20));
        ordered.push(1, 1, cell("b", 1, 30));
        ordered.push(1, 2, cell("b", 2, 40));

        assert_eq!(scrambled.to_json(), ordered.to_json());
        assert_eq!(scrambled.len(), 4);
        assert_eq!(scrambled.events_processed(), 100);
        assert_eq!(scrambled.trace_events(), 50);
        let coords: Vec<(usize, u64)> = scrambled
            .cells()
            .iter()
            .map(|(p, s, _)| (*p, *s))
            .collect();
        assert_eq!(coords, vec![(0, 1), (0, 2), (1, 1), (1, 2)]);
    }

    #[test]
    fn sweep_manifest_json_shape() {
        let mut sweep = SweepManifest::new("fig04");
        sweep.push(0, 1, RunManifest::new("fig04_rost", 1));
        let js = sweep.to_json();
        assert!(js.starts_with("{\"name\":\"fig04\",\"cells\":1,"));
        assert!(js.contains("\"runs\":[{\"point\":0,\"seed\":1,\"manifest\":{\"name\":\"fig04_rost\""));
        assert!(js.ends_with("]}\n"));
        // Embedded manifests must not carry their trailing newline.
        assert_eq!(js.matches('\n').count(), 1);

        let empty = SweepManifest::new("empty");
        assert!(empty.is_empty());
        assert!(empty.to_json().contains("\"runs\":[]"));
    }

    #[test]
    fn identical_manifests_compare_equal() {
        let mk = || {
            let mut m = RunManifest::new("run", 7);
            m.config_digest = fnv1a(b"cfg");
            m.events_processed = 100;
            m.trace_events = 10;
            m.outcome = "HorizonReached".to_string();
            m
        };
        assert_eq!(mk(), mk());
        assert_eq!(mk().to_json(), mk().to_json());
    }
}
