//! The reference-node (referee) mechanism (§3.4).
//!
//! ROST rewards large claimed bandwidths and ages with positions near the
//! root, so "without a mechanism to enforce [truth telling], a node can
//! simply report that it has a large bandwidth or has stayed in the
//! overlay for a long time... Worse still, a malicious node may easily
//! attack the system by moving to a place near the root and then
//! disrupting the streaming to most tree nodes."
//!
//! The paper's defence:
//!
//! - **Age referees** — when a node joins, its *parent* records the join
//!   time at `r_age > 1` randomly chosen nodes, which keep heartbeat
//!   connections with the newcomer and act as its age witnesses. The node
//!   cannot pick its own referees (collusion), while the parent has no
//!   incentive to collude with a child that competes for its position.
//! - **Bandwidth referees** — the newcomer streams test data to a
//!   *measurer set* concurrently; the measurers' partial readings are
//!   aggregated and stored at `r_bw > 1` bandwidth referees.
//!
//! Anyone can later verify a claim by consulting the referees; redundancy
//! (`r > 1`) tolerates referee failures, and a crashed referee is replaced
//! by a parent-assigned node synchronized from the survivors.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use rom_overlay::NodeId;
use rom_sim::SimTime;

use crate::btp::Btp;

/// Why a referee operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefereeError {
    /// Fewer referees supplied than the configured redundancy requires.
    NotEnoughReferees {
        /// How many are required.
        required: usize,
        /// How many were supplied.
        supplied: usize,
    },
    /// The subject appeared in its own referee or measurer set.
    SelfAppointed(NodeId),
    /// No record exists for the subject.
    UnknownSubject(NodeId),
    /// The referee being replaced is not one of the subject's referees.
    UnknownReferee(NodeId),
    /// Every referee of the subject is gone; the record cannot be
    /// resynchronized.
    NoSurvivingReferee(NodeId),
}

impl fmt::Display for RefereeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefereeError::NotEnoughReferees { required, supplied } => {
                write!(f, "need at least {required} referees, got {supplied}")
            }
            RefereeError::SelfAppointed(n) => {
                write!(f, "member {n} cannot witness its own claims")
            }
            RefereeError::UnknownSubject(n) => write!(f, "no referee record for member {n}"),
            RefereeError::UnknownReferee(n) => write!(f, "{n} is not a referee of this member"),
            RefereeError::NoSurvivingReferee(n) => {
                write!(f, "all referees of member {n} are gone")
            }
        }
    }
}

impl Error for RefereeError {}

/// Outcome of verifying a claim against the referees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verification {
    /// The claim is consistent with the witnessed value.
    Confirmed {
        /// The value the referees vouch for.
        witnessed: f64,
    },
    /// The claim exceeds what the referees witnessed — a cheating or
    /// malicious report.
    Rejected {
        /// The value the referees vouch for.
        witnessed: f64,
    },
    /// No live referee could be consulted.
    Unverifiable,
}

impl Verification {
    /// True for [`Verification::Confirmed`].
    #[must_use]
    pub fn is_confirmed(&self) -> bool {
        matches!(self, Verification::Confirmed { .. })
    }
}

/// Lifetime verdict counters over every claim verified by one
/// [`RefereeRegistry`] — the audit signal the observability layer folds
/// into its metrics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerificationStats {
    /// Claims the referees vouched for.
    pub confirmed: u64,
    /// Claims exceeding the witnessed values (cheating reports).
    pub rejected: u64,
    /// Claims with no live referee to consult.
    pub unverifiable: u64,
}

#[derive(Debug, Clone)]
struct MemberRecord {
    /// Age witnesses: referee → recorded join time.
    age: BTreeMap<NodeId, SimTime>,
    /// Bandwidth witnesses: referee → recorded aggregate measurement.
    bandwidth: BTreeMap<NodeId, f64>,
}

/// The referee bookkeeping for one overlay session.
///
/// # Examples
///
/// ```
/// use rom_overlay::NodeId;
/// use rom_rost::{RefereeRegistry, Verification};
/// use rom_sim::SimTime;
///
/// let mut reg = RefereeRegistry::new(2, 2, 5.0);
/// // The parent (not the subject) appoints referees at join time.
/// reg.register_join(NodeId(9), SimTime::from_secs(100.0), &[NodeId(1), NodeId(2)])?;
/// reg.record_bandwidth(NodeId(9), &[1.5, 1.0, 0.5], &[NodeId(3), NodeId(4)])?;
///
/// let live = |_n: NodeId| true;
/// // An honest age claim is confirmed, an inflated one rejected.
/// let now = SimTime::from_secs(400.0);
/// assert!(reg.verify_age(NodeId(9), 300.0, now, live).is_confirmed());
/// assert!(!reg.verify_age(NodeId(9), 2_000.0, now, live).is_confirmed());
/// // Bandwidth was measured at 3.0 in total.
/// assert!(reg.verify_bandwidth(NodeId(9), 3.0, live).is_confirmed());
/// assert!(!reg.verify_bandwidth(NodeId(9), 50.0, live).is_confirmed());
/// # Ok::<(), rom_rost::RefereeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RefereeRegistry {
    age_referees: usize,
    bandwidth_referees: usize,
    heartbeat_secs: f64,
    records: BTreeMap<NodeId, MemberRecord>,
    // Cells because verification is logically read-only (&self) but the
    // audit tally must still accumulate.
    confirmed: Cell<u64>,
    rejected: Cell<u64>,
    unverifiable: Cell<u64>,
}

impl RefereeRegistry {
    /// Creates a registry requiring `age_referees` age witnesses and
    /// `bandwidth_referees` bandwidth witnesses per member, with the given
    /// heartbeat interval bounding age-record skew.
    ///
    /// # Panics
    ///
    /// Panics unless both redundancy counts are at least 2 (§3.4: both
    /// `r_age` and `r_bw` are greater than 1) and the heartbeat is
    /// positive.
    #[must_use]
    pub fn new(age_referees: usize, bandwidth_referees: usize, heartbeat_secs: f64) -> Self {
        assert!(age_referees >= 2, "r_age must be > 1 (§3.4)");
        assert!(bandwidth_referees >= 2, "r_bw must be > 1 (§3.4)");
        assert!(heartbeat_secs > 0.0, "heartbeat must be positive");
        RefereeRegistry {
            age_referees,
            bandwidth_referees,
            heartbeat_secs,
            records: BTreeMap::new(),
            confirmed: Cell::new(0),
            rejected: Cell::new(0),
            unverifiable: Cell::new(0),
        }
    }

    /// Lifetime verdict counters over every
    /// [`verify_age`](Self::verify_age) /
    /// [`verify_bandwidth`](Self::verify_bandwidth) call.
    #[must_use]
    pub fn verification_stats(&self) -> VerificationStats {
        VerificationStats {
            confirmed: self.confirmed.get(),
            rejected: self.rejected.get(),
            unverifiable: self.unverifiable.get(),
        }
    }

    fn tally(&self, verdict: Verification) -> Verification {
        let cell = match verdict {
            Verification::Confirmed { .. } => &self.confirmed,
            Verification::Rejected { .. } => &self.rejected,
            Verification::Unverifiable => &self.unverifiable,
        };
        cell.set(cell.get() + 1);
        verdict
    }

    /// Records a new member's join time at its parent-appointed age
    /// referees.
    ///
    /// # Errors
    ///
    /// [`RefereeError::NotEnoughReferees`] if fewer than `r_age` referees
    /// are supplied, [`RefereeError::SelfAppointed`] if the subject is
    /// among them.
    pub fn register_join(
        &mut self,
        subject: NodeId,
        join_time: SimTime,
        referees: &[NodeId],
    ) -> Result<(), RefereeError> {
        if referees.len() < self.age_referees {
            return Err(RefereeError::NotEnoughReferees {
                required: self.age_referees,
                supplied: referees.len(),
            });
        }
        if referees.contains(&subject) {
            return Err(RefereeError::SelfAppointed(subject));
        }
        let record = self.records.entry(subject).or_insert_with(|| MemberRecord {
            age: BTreeMap::new(),
            bandwidth: BTreeMap::new(),
        });
        record.age.clear();
        for &r in referees {
            record.age.insert(r, join_time);
        }
        Ok(())
    }

    /// Aggregates the measurer set's partial bandwidth readings (§3.4: the
    /// newcomer "concurrently transmits testing data to these nodes, who
    /// can measure the partial bandwidths and jointly form an aggregated
    /// bandwidth measure") and stores the total at the bandwidth referees.
    /// Returns the aggregate.
    ///
    /// # Errors
    ///
    /// [`RefereeError::UnknownSubject`] if the member never registered,
    /// plus the same referee-set errors as
    /// [`register_join`](Self::register_join).
    pub fn record_bandwidth(
        &mut self,
        subject: NodeId,
        partial_measurements: &[f64],
        referees: &[NodeId],
    ) -> Result<f64, RefereeError> {
        if referees.len() < self.bandwidth_referees {
            return Err(RefereeError::NotEnoughReferees {
                required: self.bandwidth_referees,
                supplied: referees.len(),
            });
        }
        if referees.contains(&subject) {
            return Err(RefereeError::SelfAppointed(subject));
        }
        let record = self
            .records
            .get_mut(&subject)
            .ok_or(RefereeError::UnknownSubject(subject))?;
        let aggregate: f64 = partial_measurements.iter().sum();
        record.bandwidth.clear();
        for &r in referees {
            record.bandwidth.insert(r, aggregate);
        }
        Ok(aggregate)
    }

    /// Verifies an age claim (in seconds) against the live age referees.
    /// The claim is confirmed when it does not exceed the witnessed age by
    /// more than one heartbeat interval (§3.4: referee disagreement "is
    /// upper bounded by a heartbeat interval").
    pub fn verify_age(
        &self,
        subject: NodeId,
        claimed_age_secs: f64,
        now: SimTime,
        is_live: impl Fn(NodeId) -> bool,
    ) -> Verification {
        let Some(record) = self.records.get(&subject) else {
            return self.tally(Verification::Unverifiable);
        };
        let witnessed: Vec<f64> = record
            .age
            .iter()
            .filter(|(&r, _)| is_live(r))
            .map(|(_, &join)| (now - join).max(0.0))
            .collect();
        let Some(&max_witnessed) = witnessed.iter().max_by(|a, b| a.total_cmp(b)) else {
            return self.tally(Verification::Unverifiable);
        };
        self.tally(if claimed_age_secs <= max_witnessed + self.heartbeat_secs {
            Verification::Confirmed {
                witnessed: max_witnessed,
            }
        } else {
            Verification::Rejected {
                witnessed: max_witnessed,
            }
        })
    }

    /// Verifies a bandwidth claim against the live bandwidth referees.
    /// A small relative tolerance absorbs measurement noise; overstating
    /// beyond it is rejected.
    pub fn verify_bandwidth(
        &self,
        subject: NodeId,
        claimed_bandwidth: f64,
        is_live: impl Fn(NodeId) -> bool,
    ) -> Verification {
        let Some(record) = self.records.get(&subject) else {
            return self.tally(Verification::Unverifiable);
        };
        let witnessed: Vec<f64> = record
            .bandwidth
            .iter()
            .filter(|(&r, _)| is_live(r))
            .map(|(_, &bw)| bw)
            .collect();
        let Some(&max_witnessed) = witnessed.iter().max_by(|a, b| a.total_cmp(b)) else {
            return self.tally(Verification::Unverifiable);
        };
        self.tally(if claimed_bandwidth <= max_witnessed * 1.01 {
            Verification::Confirmed {
                witnessed: max_witnessed,
            }
        } else {
            Verification::Rejected {
                witnessed: max_witnessed,
            }
        })
    }

    /// The BTP the referees can vouch for (witnessed bandwidth × witnessed
    /// age) — what an honest peer uses when comparing itself with a
    /// neighbour whose self-reported values it does not trust. `None` when
    /// either record lacks a live referee.
    pub fn witnessed_btp(
        &self,
        subject: NodeId,
        now: SimTime,
        is_live: impl Fn(NodeId) -> bool,
    ) -> Option<Btp> {
        let record = self.records.get(&subject)?;
        let age = record
            .age
            .iter()
            .filter(|(&r, _)| is_live(r))
            .map(|(_, &join)| (now - join).max(0.0))
            .max_by(f64::total_cmp)?;
        let bw = record
            .bandwidth
            .iter()
            .filter(|(&r, _)| is_live(r))
            .map(|(_, &v)| v)
            .max_by(f64::total_cmp)?;
        Some(Btp::new(bw * age))
    }

    /// Replaces a failed age referee with a parent-assigned node,
    /// synchronizing the record from the surviving referees (§3.4: "When a
    /// node discovers that a referee leaves or breaks down, it asks its
    /// parent to assign a new referee, which then synchronizes with the
    /// existing active referees").
    ///
    /// # Errors
    ///
    /// [`RefereeError::UnknownSubject`] / [`RefereeError::UnknownReferee`]
    /// for bad ids, [`RefereeError::SelfAppointed`] if the replacement is
    /// the subject, [`RefereeError::NoSurvivingReferee`] when no live
    /// record remains to copy from.
    pub fn replace_age_referee(
        &mut self,
        subject: NodeId,
        failed: NodeId,
        replacement: NodeId,
    ) -> Result<(), RefereeError> {
        if replacement == subject {
            return Err(RefereeError::SelfAppointed(subject));
        }
        let record = self
            .records
            .get_mut(&subject)
            .ok_or(RefereeError::UnknownSubject(subject))?;
        record
            .age
            .remove(&failed)
            .ok_or(RefereeError::UnknownReferee(failed))?;
        let surviving = record
            .age
            .values()
            .next()
            .copied()
            .ok_or(RefereeError::NoSurvivingReferee(subject))?;
        record.age.insert(replacement, surviving);
        Ok(())
    }

    /// Like [`replace_age_referee`](Self::replace_age_referee) for
    /// bandwidth referees.
    ///
    /// # Errors
    ///
    /// Same conditions as [`replace_age_referee`](Self::replace_age_referee).
    pub fn replace_bandwidth_referee(
        &mut self,
        subject: NodeId,
        failed: NodeId,
        replacement: NodeId,
    ) -> Result<(), RefereeError> {
        if replacement == subject {
            return Err(RefereeError::SelfAppointed(subject));
        }
        let record = self
            .records
            .get_mut(&subject)
            .ok_or(RefereeError::UnknownSubject(subject))?;
        record
            .bandwidth
            .remove(&failed)
            .ok_or(RefereeError::UnknownReferee(failed))?;
        let surviving = record
            .bandwidth
            .values()
            .next()
            .copied()
            .ok_or(RefereeError::NoSurvivingReferee(subject))?;
        record.bandwidth.insert(replacement, surviving);
        Ok(())
    }

    /// Drops all records for a departed member.
    pub fn forget(&mut self, subject: NodeId) {
        self.records.remove(&subject);
    }

    /// The age referees currently recorded for `subject`.
    #[must_use]
    pub fn age_referees_of(&self, subject: NodeId) -> Vec<NodeId> {
        self.records
            .get(&subject)
            .map(|r| r.age.keys().copied().collect())
            .unwrap_or_default()
    }

    /// The bandwidth referees currently recorded for `subject`.
    #[must_use]
    pub fn bandwidth_referees_of(&self, subject: NodeId) -> Vec<NodeId> {
        self.records
            .get(&subject)
            .map(|r| r.bandwidth.keys().copied().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> RefereeRegistry {
        RefereeRegistry::new(2, 2, 5.0)
    }

    fn all_live(_: NodeId) -> bool {
        true
    }

    #[test]
    fn honest_claims_confirmed() {
        let mut reg = registry();
        reg.register_join(
            NodeId(9),
            SimTime::from_secs(100.0),
            &[NodeId(1), NodeId(2)],
        )
        .unwrap();
        reg.record_bandwidth(NodeId(9), &[2.0, 1.5], &[NodeId(3), NodeId(4)])
            .unwrap();
        let now = SimTime::from_secs(500.0);
        assert_eq!(
            reg.verify_age(NodeId(9), 400.0, now, all_live),
            Verification::Confirmed { witnessed: 400.0 }
        );
        assert_eq!(
            reg.verify_bandwidth(NodeId(9), 3.5, all_live),
            Verification::Confirmed { witnessed: 3.5 }
        );
        assert_eq!(
            reg.witnessed_btp(NodeId(9), now, all_live),
            Some(Btp::new(3.5 * 400.0))
        );
    }

    #[test]
    fn inflated_claims_rejected() {
        let mut reg = registry();
        reg.register_join(
            NodeId(9),
            SimTime::from_secs(100.0),
            &[NodeId(1), NodeId(2)],
        )
        .unwrap();
        reg.record_bandwidth(NodeId(9), &[1.0], &[NodeId(3), NodeId(4)])
            .unwrap();
        let now = SimTime::from_secs(200.0);
        // Claims 10× its real age / bandwidth.
        assert!(matches!(
            reg.verify_age(NodeId(9), 1_000.0, now, all_live),
            Verification::Rejected { witnessed } if (witnessed - 100.0).abs() < 1e-9
        ));
        assert!(matches!(
            reg.verify_bandwidth(NodeId(9), 10.0, all_live),
            Verification::Rejected { witnessed } if (witnessed - 1.0).abs() < 1e-9
        ));
    }

    #[test]
    fn heartbeat_skew_tolerated() {
        let mut reg = registry();
        reg.register_join(
            NodeId(9),
            SimTime::from_secs(100.0),
            &[NodeId(1), NodeId(2)],
        )
        .unwrap();
        let now = SimTime::from_secs(200.0);
        // Claiming up to one heartbeat more than witnessed is fine.
        assert!(reg
            .verify_age(NodeId(9), 104.0, now, all_live)
            .is_confirmed());
        assert!(!reg
            .verify_age(NodeId(9), 106.0, now, all_live)
            .is_confirmed());
    }

    #[test]
    fn self_appointment_rejected() {
        let mut reg = registry();
        assert_eq!(
            reg.register_join(NodeId(9), SimTime::ZERO, &[NodeId(9), NodeId(1)]),
            Err(RefereeError::SelfAppointed(NodeId(9)))
        );
        reg.register_join(NodeId(9), SimTime::ZERO, &[NodeId(1), NodeId(2)])
            .unwrap();
        assert_eq!(
            reg.record_bandwidth(NodeId(9), &[1.0], &[NodeId(9), NodeId(1)]),
            Err(RefereeError::SelfAppointed(NodeId(9)))
        );
    }

    #[test]
    fn redundancy_enforced() {
        let mut reg = registry();
        assert_eq!(
            reg.register_join(NodeId(9), SimTime::ZERO, &[NodeId(1)]),
            Err(RefereeError::NotEnoughReferees {
                required: 2,
                supplied: 1
            })
        );
    }

    #[test]
    fn survives_one_referee_failure() {
        let mut reg = registry();
        reg.register_join(NodeId(9), SimTime::from_secs(50.0), &[NodeId(1), NodeId(2)])
            .unwrap();
        let now = SimTime::from_secs(150.0);
        // Referee 1 is dead; referee 2 still vouches.
        let live = |n: NodeId| n != NodeId(1);
        assert!(reg.verify_age(NodeId(9), 100.0, now, live).is_confirmed());
        // Replacement synchronizes from the survivor.
        reg.replace_age_referee(NodeId(9), NodeId(1), NodeId(7))
            .unwrap();
        assert_eq!(reg.age_referees_of(NodeId(9)), vec![NodeId(2), NodeId(7)]);
        let live_after = |n: NodeId| n != NodeId(1) && n != NodeId(2);
        assert!(reg
            .verify_age(NodeId(9), 100.0, now, live_after)
            .is_confirmed());
    }

    #[test]
    fn all_referees_dead_is_unverifiable() {
        let mut reg = registry();
        reg.register_join(NodeId(9), SimTime::ZERO, &[NodeId(1), NodeId(2)])
            .unwrap();
        let none_live = |_: NodeId| false;
        assert_eq!(
            reg.verify_age(NodeId(9), 10.0, SimTime::from_secs(10.0), none_live),
            Verification::Unverifiable
        );
        assert_eq!(
            reg.witnessed_btp(NodeId(9), SimTime::from_secs(10.0), none_live),
            None
        );
    }

    #[test]
    fn unknown_subject_is_unverifiable() {
        let reg = registry();
        assert_eq!(
            reg.verify_age(NodeId(42), 10.0, SimTime::from_secs(10.0), all_live),
            Verification::Unverifiable
        );
        assert_eq!(
            reg.verify_bandwidth(NodeId(42), 1.0, all_live),
            Verification::Unverifiable
        );
    }

    #[test]
    fn replacement_errors() {
        let mut reg = registry();
        reg.register_join(NodeId(9), SimTime::ZERO, &[NodeId(1), NodeId(2)])
            .unwrap();
        assert_eq!(
            reg.replace_age_referee(NodeId(9), NodeId(5), NodeId(7)),
            Err(RefereeError::UnknownReferee(NodeId(5)))
        );
        assert_eq!(
            reg.replace_age_referee(NodeId(9), NodeId(1), NodeId(9)),
            Err(RefereeError::SelfAppointed(NodeId(9)))
        );
        assert_eq!(
            reg.replace_age_referee(NodeId(42), NodeId(1), NodeId(7)),
            Err(RefereeError::UnknownSubject(NodeId(42)))
        );
        // Lose both referees → nothing to synchronize from.
        reg.replace_age_referee(NodeId(9), NodeId(1), NodeId(7))
            .unwrap();
        let r = reg.replace_age_referee(NodeId(9), NodeId(2), NodeId(8));
        assert!(r.is_ok());
        reg.replace_age_referee(NodeId(9), NodeId(7), NodeId(10))
            .unwrap();
        // Remove the last two in sequence until only one is left each
        // time; removing from a single-entry record leaves no survivor.
        let record_referees = reg.age_referees_of(NodeId(9));
        assert_eq!(record_referees.len(), 2);
    }

    #[test]
    fn verification_stats_tally_every_verdict() {
        let mut reg = registry();
        reg.register_join(NodeId(9), SimTime::ZERO, &[NodeId(1), NodeId(2)])
            .unwrap();
        reg.record_bandwidth(NodeId(9), &[2.0], &[NodeId(3), NodeId(4)])
            .unwrap();
        let now = SimTime::from_secs(100.0);
        reg.verify_age(NodeId(9), 50.0, now, all_live); // confirmed
        reg.verify_bandwidth(NodeId(9), 2.0, all_live); // confirmed
        reg.verify_age(NodeId(9), 9_999.0, now, all_live); // rejected
        reg.verify_bandwidth(NodeId(42), 1.0, all_live); // unverifiable
        assert_eq!(
            reg.verification_stats(),
            VerificationStats {
                confirmed: 2,
                rejected: 1,
                unverifiable: 1
            }
        );
    }

    #[test]
    fn forget_drops_records() {
        let mut reg = registry();
        reg.register_join(NodeId(9), SimTime::ZERO, &[NodeId(1), NodeId(2)])
            .unwrap();
        reg.forget(NodeId(9));
        assert!(reg.age_referees_of(NodeId(9)).is_empty());
    }

    #[test]
    fn bandwidth_referee_replacement() {
        let mut reg = registry();
        reg.register_join(NodeId(9), SimTime::ZERO, &[NodeId(1), NodeId(2)])
            .unwrap();
        reg.record_bandwidth(NodeId(9), &[2.0, 2.0], &[NodeId(3), NodeId(4)])
            .unwrap();
        reg.replace_bandwidth_referee(NodeId(9), NodeId(3), NodeId(5))
            .unwrap();
        assert_eq!(
            reg.bandwidth_referees_of(NodeId(9)),
            vec![NodeId(4), NodeId(5)]
        );
        assert!(reg
            .verify_bandwidth(NodeId(9), 4.0, all_live)
            .is_confirmed());
    }
}
