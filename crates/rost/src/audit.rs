//! Audited switching: §3.3's condition evaluated over §3.4's *verified*
//! values instead of self-reports.
//!
//! "Truth telling is critical for ROST. Without a mechanism to enforce
//! this, a node can simply report that it has a large bandwidth or has
//! stayed in the overlay for a long time in order to have itself gradually
//! moved up toward the root of the tree." The audited protocol closes that
//! hole: before a parent agrees to swap positions with a child, it
//! consults the child's referees; claims the referees will not vouch for
//! are refused, and members whose referees cannot be reached at all are
//! treated as newcomers (no switch).

use rom_overlay::{MulticastTree, NodeId};
use rom_sim::SimTime;

use crate::btp::Btp;
use crate::referee::{RefereeRegistry, Verification};
use crate::switching::{SwitchOutcome, SwitchingProtocol};

/// A member's self-reported resources, as carried in its switch request.
/// Honest members report their profile; cheaters report whatever they
/// like.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceClaim {
    /// Claimed outbound bandwidth (stream-rate units).
    pub bandwidth: f64,
    /// Claimed age in seconds.
    pub age_secs: f64,
}

impl ResourceClaim {
    /// The claim an honest member makes at `now`: its true profile values.
    #[must_use]
    pub fn honest(tree: &MulticastTree, member: NodeId, now: SimTime) -> Option<Self> {
        let profile = tree.profile(member)?;
        Some(ResourceClaim {
            bandwidth: profile.bandwidth,
            age_secs: profile.age(now),
        })
    }

    /// The claimed bandwidth-time product.
    #[must_use]
    pub fn btp(&self) -> Btp {
        Btp::new((self.bandwidth * self.age_secs).max(0.0))
    }
}

/// Why an audited switch request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditRefusal {
    /// The referees contradict the claimed bandwidth (§3.4 cheating).
    BandwidthRejected,
    /// The referees contradict the claimed age (§3.4 cheating).
    AgeRejected,
    /// No live referee could vouch either way; the claim is treated as
    /// untrusted.
    Unverifiable,
    /// The claim is genuine but the §3.3 switching condition does not hold
    /// against the parent's witnessed values.
    ConditionNotMet,
}

/// Result of one audited switching attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditedOutcome {
    /// The claim passed the audit and the switch proceeded (which may
    /// still report lock contention etc. through the inner outcome).
    Proceeded(SwitchOutcome),
    /// The claim was refused before any tree mutation.
    Refused(AuditRefusal),
}

/// Audits one switch request: verifies the child's claimed bandwidth and
/// age against its referees, recomputes the §3.3 condition from *witnessed*
/// values, and only then lets the underlying protocol attempt the switch.
///
/// `is_live` reports referee liveness (the engine passes current
/// membership).
pub fn attempt_audited(
    protocol: &mut SwitchingProtocol,
    registry: &RefereeRegistry,
    tree: &mut MulticastTree,
    child: NodeId,
    claim: ResourceClaim,
    now: SimTime,
    is_live: impl Fn(NodeId) -> bool + Copy,
) -> AuditedOutcome {
    // Verify the two halves of the claim independently, exactly as a
    // suspicious parent would.
    match registry.verify_bandwidth(child, claim.bandwidth, is_live) {
        Verification::Confirmed { .. } => {}
        Verification::Rejected { .. } => {
            return AuditedOutcome::Refused(AuditRefusal::BandwidthRejected)
        }
        Verification::Unverifiable => return AuditedOutcome::Refused(AuditRefusal::Unverifiable),
    }
    match registry.verify_age(child, claim.age_secs, now, is_live) {
        Verification::Confirmed { .. } => {}
        Verification::Rejected { .. } => return AuditedOutcome::Refused(AuditRefusal::AgeRejected),
        Verification::Unverifiable => return AuditedOutcome::Refused(AuditRefusal::Unverifiable),
    }

    // The claim is consistent with the witnesses. Evaluate the §3.3
    // condition on the *witnessed* BTPs — never on self-reports.
    let Some(child_ix) = tree.index_of(child) else {
        return AuditedOutcome::Refused(AuditRefusal::ConditionNotMet);
    };
    let Some(parent_ix) = tree.parent_ix(child_ix) else {
        return AuditedOutcome::Refused(AuditRefusal::ConditionNotMet);
    };
    let parent = tree.id_of(parent_ix);
    if parent == tree.root() {
        return AuditedOutcome::Refused(AuditRefusal::ConditionNotMet);
    }
    let Some(child_btp) = registry.witnessed_btp(child, now, is_live) else {
        return AuditedOutcome::Refused(AuditRefusal::Unverifiable);
    };
    // The parent's own standing: witnessed where possible, profile
    // otherwise (the parent is not the one requesting promotion, so the
    // incentive to inflate is absent — §3.4's collusion argument).
    let parent_profile = tree.profile_ix(parent_ix);
    let parent_btp = registry
        .witnessed_btp(parent, now, is_live)
        .unwrap_or_else(|| Btp::of(parent_profile, now));
    if child_btp <= parent_btp {
        return AuditedOutcome::Refused(AuditRefusal::ConditionNotMet);
    }

    AuditedOutcome::Proceeded(protocol.attempt(tree, child, now))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RostConfig;
    use rom_overlay::{paper_source, Location, MemberProfile};

    fn profile(id: u64, bw: f64, join_secs: f64) -> MemberProfile {
        MemberProfile::new(
            NodeId(id),
            bw,
            SimTime::from_secs(join_secs),
            1e9,
            Location(id as u32),
        )
    }

    /// source → 1 (bw 1, old) → 2 (bw 4, newer): a genuine inversion.
    fn setup() -> (MulticastTree, SwitchingProtocol, RefereeRegistry) {
        let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
        tree.attach(profile(1, 1.0, 0.0), NodeId(0)).unwrap();
        tree.attach(profile(2, 4.0, 100.0), NodeId(1)).unwrap();
        let protocol = SwitchingProtocol::new(RostConfig::paper());
        let mut registry = RefereeRegistry::new(2, 2, 5.0);
        for (member, join, bw) in [(NodeId(1), 0.0, 1.0), (NodeId(2), 100.0, 4.0)] {
            registry
                .register_join(member, SimTime::from_secs(join), &[NodeId(90), NodeId(91)])
                .unwrap();
            registry
                .record_bandwidth(member, &[bw], &[NodeId(92), NodeId(93)])
                .unwrap();
        }
        (tree, protocol, registry)
    }

    #[test]
    fn honest_claim_switches() {
        let (mut tree, mut protocol, registry) = setup();
        let now = SimTime::from_secs(500.0);
        let claim = ResourceClaim::honest(&tree, NodeId(2), now).unwrap();
        let outcome = attempt_audited(
            &mut protocol,
            &registry,
            &mut tree,
            NodeId(2),
            claim,
            now,
            |_| true,
        );
        match outcome {
            AuditedOutcome::Proceeded(SwitchOutcome::Switched { op, .. }) => {
                protocol.release(op);
            }
            other => panic!("expected a switch, got {other:?}"),
        }
        assert_eq!(tree.parent(NodeId(2)), Some(NodeId(0)));
    }

    #[test]
    fn inflated_bandwidth_refused() {
        let (mut tree, mut protocol, registry) = setup();
        // Node 2 at t=150 has BTP 200 < node 1's 150... actually 4·50=200
        // vs 1·150=150 — eligible. Instead test a node lying 10×.
        let now = SimTime::from_secs(150.0);
        let claim = ResourceClaim {
            bandwidth: 40.0,
            age_secs: 50.0,
        };
        let outcome = attempt_audited(
            &mut protocol,
            &registry,
            &mut tree,
            NodeId(2),
            claim,
            now,
            |_| true,
        );
        assert_eq!(
            outcome,
            AuditedOutcome::Refused(AuditRefusal::BandwidthRejected)
        );
        assert_eq!(tree.parent(NodeId(2)), Some(NodeId(1)), "tree untouched");
    }

    #[test]
    fn inflated_age_refused() {
        let (mut tree, mut protocol, registry) = setup();
        let now = SimTime::from_secs(150.0);
        let claim = ResourceClaim {
            bandwidth: 4.0,
            age_secs: 5_000.0, // true age is 50 s
        };
        let outcome = attempt_audited(
            &mut protocol,
            &registry,
            &mut tree,
            NodeId(2),
            claim,
            now,
            |_| true,
        );
        assert_eq!(outcome, AuditedOutcome::Refused(AuditRefusal::AgeRejected));
    }

    #[test]
    fn cheater_cannot_climb_early_with_honest_looking_claim() {
        // The subtle attack: claim values the referees WILL vouch for but
        // pretend the condition holds. The audit recomputes the condition
        // from witnessed values, so an early (not yet eligible) member is
        // refused even with a "valid" claim.
        let (mut tree, mut protocol, registry) = setup();
        let now = SimTime::from_secs(110.0); // node 2's BTP 40 < node 1's 110
        let claim = ResourceClaim::honest(&tree, NodeId(2), now).unwrap();
        let outcome = attempt_audited(
            &mut protocol,
            &registry,
            &mut tree,
            NodeId(2),
            claim,
            now,
            |_| true,
        );
        assert_eq!(
            outcome,
            AuditedOutcome::Refused(AuditRefusal::ConditionNotMet)
        );
    }

    #[test]
    fn unverifiable_members_are_refused() {
        let (mut tree, mut protocol, registry) = setup();
        let now = SimTime::from_secs(500.0);
        let claim = ResourceClaim::honest(&tree, NodeId(2), now).unwrap();
        // All referees dead.
        let outcome = attempt_audited(
            &mut protocol,
            &registry,
            &mut tree,
            NodeId(2),
            claim,
            now,
            |_| false,
        );
        assert_eq!(outcome, AuditedOutcome::Refused(AuditRefusal::Unverifiable));
    }

    #[test]
    fn unregistered_member_is_unverifiable() {
        let (mut tree, mut protocol, _) = setup();
        let empty = RefereeRegistry::new(2, 2, 5.0);
        let now = SimTime::from_secs(500.0);
        let claim = ResourceClaim::honest(&tree, NodeId(2), now).unwrap();
        let outcome = attempt_audited(
            &mut protocol,
            &empty,
            &mut tree,
            NodeId(2),
            claim,
            now,
            |_| true,
        );
        assert_eq!(outcome, AuditedOutcome::Refused(AuditRefusal::Unverifiable));
    }

    #[test]
    fn claim_btp_matches_product() {
        let claim = ResourceClaim {
            bandwidth: 2.5,
            age_secs: 100.0,
        };
        assert_eq!(claim.btp(), Btp::new(250.0));
        let negative = ResourceClaim {
            bandwidth: 1.0,
            age_secs: -5.0,
        };
        assert_eq!(negative.btp(), Btp::ZERO);
    }
}
