//! ROST's join rule.
//!
//! §3.3: a new member gathers a partial view (up to ~100 members), sends
//! JOIN requests, and among the accepting parents "chooses the one with
//! the smallest tree depth... If multiple such parents exist at the same
//! layer, it chooses the nearest parent in terms of network delay" — i.e.
//! the minimum-depth rule over the member's partial view. New members
//! always start low: "placing a new member at the leaf layer first and
//! then adjusting its position according to its behavior" protects the
//! tree from short-lived clients; climbing happens only through switching.

use rom_overlay::algorithms::{min_depth_parent, JoinContext, JoinDecision, TreeAlgorithm};
use rom_overlay::Proximity;

/// ROST's join-time placement: minimum depth over the partial view.
///
/// Distinct from `rom_overlay::algorithms::MinimumDepth` only in name —
/// the difference between the two *protocols* is the switching maintenance
/// this crate adds on top, plus the referee verification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RostJoin;

impl TreeAlgorithm for RostJoin {
    fn name(&self) -> &'static str {
        "rost"
    }

    fn select(&self, ctx: &JoinContext<'_>, proximity: &dyn Proximity) -> JoinDecision {
        match min_depth_parent(ctx, proximity) {
            Some(parent) => JoinDecision::Attach { parent },
            None => JoinDecision::Reject,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rom_overlay::algorithms::MinimumDepth;
    use rom_overlay::{
        paper_source, Location, MemberProfile, MulticastTree, NodeId, ZeroProximity,
    };
    use rom_sim::SimTime;

    #[test]
    fn join_matches_min_depth() {
        let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
        tree.attach(
            MemberProfile::new(NodeId(1), 2.0, SimTime::ZERO, 1e6, Location(1)),
            NodeId(0),
        )
        .unwrap();
        let joiner = MemberProfile::new(NodeId(9), 1.0, SimTime::ZERO, 1e6, Location(9));
        let candidates = vec![NodeId(0), NodeId(1)];
        let ctx = JoinContext {
            tree: &tree,
            joiner: &joiner,
            candidates: &candidates,
            now: SimTime::ZERO,
        };
        assert_eq!(
            RostJoin.select(&ctx, &ZeroProximity),
            MinimumDepth.select(&ctx, &ZeroProximity)
        );
    }

    #[test]
    fn is_distributed_and_named() {
        assert!(!RostJoin.is_centralized());
        assert_eq!(RostJoin.name(), "rost");
    }
}
