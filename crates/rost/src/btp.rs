//! The Bandwidth-Time Product (BTP), ROST's ordering criterion.
//!
//! §3.2: "a metric called Bandwidth-Time Product (BTP), which is defined as
//! the product of a node's outbound bandwidth and its age. The basic idea
//! of the algorithm is to move nodes with large BTPs higher in the tree...
//! Since either a large bandwidth or a long service time helps to increase
//! BTP, a node can be encouraged to contribute more bandwidth resource or
//! longer service time as a trade for service quality."

use std::cmp::Ordering;
use std::fmt;

use rom_overlay::MemberProfile;
use rom_sim::SimTime;

/// A bandwidth-time product value.
///
/// The multicast source is pre-assigned [`Btp::INFINITE`] "and always
/// remains at the top of the tree" (§3.3); a freshly joined member starts
/// at zero and grows at a rate proportional to its bandwidth.
///
/// # Examples
///
/// ```
/// use rom_rost::Btp;
/// use rom_overlay::{Location, MemberProfile, NodeId};
/// use rom_sim::SimTime;
///
/// let m = MemberProfile::new(NodeId(1), 2.0, SimTime::ZERO, 600.0, Location(0));
/// let b = Btp::of(&m, SimTime::from_secs(30.0));
/// assert_eq!(b.value(), 60.0);
/// assert!(b < Btp::INFINITE);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Btp(f64);

impl Btp {
    /// The source's BTP: larger than any finite product.
    pub const INFINITE: Btp = Btp(f64::INFINITY);

    /// A zero product (a member the instant it joins).
    pub const ZERO: Btp = Btp(0.0);

    /// Creates a BTP from a raw value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or NaN.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(value >= 0.0, "BTP cannot be negative or NaN");
        Btp(value)
    }

    /// The BTP of `member` at `now`: bandwidth × age.
    #[must_use]
    pub fn of(member: &MemberProfile, now: SimTime) -> Self {
        Btp::new(member.btp(now))
    }

    /// The raw product.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// True for the source's sentinel value.
    #[must_use]
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }
}

// The comparison stack is built on `total_cmp` (construction bans NaN, so
// the total order coincides with the numeric one), keeping Eq and Ord
// consistent by definition.
impl PartialEq for Btp {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Btp {}

impl PartialOrd for Btp {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Btp {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for Btp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{:.2}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rom_overlay::{Location, NodeId};

    fn member(bw: f64, join_secs: f64) -> MemberProfile {
        MemberProfile::new(
            NodeId(1),
            bw,
            SimTime::from_secs(join_secs),
            1e6,
            Location(0),
        )
    }

    #[test]
    fn grows_linearly_with_age() {
        let m = member(3.0, 100.0);
        assert_eq!(Btp::of(&m, SimTime::from_secs(100.0)), Btp::ZERO);
        assert_eq!(Btp::of(&m, SimTime::from_secs(110.0)).value(), 30.0);
        assert_eq!(Btp::of(&m, SimTime::from_secs(120.0)).value(), 60.0);
    }

    #[test]
    fn higher_bandwidth_overtakes_given_time() {
        // §3.3: "If its bandwidth is larger than its parent, then there
        // must be some time point in the future when its BTP exceeds its
        // parent".
        let parent = member(1.0, 0.0);
        let child = member(4.0, 300.0); // joins later, 4× the bandwidth
        let early = SimTime::from_secs(310.0);
        let late = SimTime::from_secs(500.0);
        assert!(Btp::of(&child, early) < Btp::of(&parent, early));
        assert!(Btp::of(&child, late) > Btp::of(&parent, late));
    }

    #[test]
    fn infinite_dominates() {
        let m = member(100.0, 0.0);
        let b = Btp::of(&m, SimTime::from_secs(1e9));
        assert!(b < Btp::INFINITE);
        assert!(Btp::INFINITE.is_infinite());
        assert!(!b.is_infinite());
        assert_eq!(Btp::INFINITE.to_string(), "∞");
    }

    #[test]
    fn total_order() {
        let mut v = vec![Btp::new(5.0), Btp::INFINITE, Btp::ZERO, Btp::new(2.0)];
        v.sort();
        assert_eq!(
            v,
            vec![Btp::ZERO, Btp::new(2.0), Btp::new(5.0), Btp::INFINITE]
        );
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_rejected() {
        let _ = Btp::new(-1.0);
    }

    #[test]
    fn display_finite() {
        assert_eq!(Btp::new(1.5).to_string(), "1.50");
    }
}
