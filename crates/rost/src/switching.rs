//! The BTP-based switching protocol (§3.3).
//!
//! Every switching interval a member compares its BTP with its parent's.
//! "If its BTP exceeds that of its parent, and its bandwidth is no less
//! than the parent's bandwidth, then the switching operation is triggered.
//! The bandwidth comparing avoids unnecessary switching since if the child
//! has a smaller bandwidth, the BTP will eventually be exceeded by the
//! parent, and it will ultimately be placed below the parent."
//!
//! The operation locks the parent, grandparent, children and siblings; on
//! contention the member backs off for [`RostConfig::lock_retry_secs`] and
//! tries again.

use rom_overlay::{MulticastTree, NodeId, SwitchRecord};
use rom_sim::SimTime;

use crate::btp::Btp;
use crate::config::RostConfig;
use crate::locks::{LockTable, OpId};

/// Result of one switching attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum SwitchOutcome {
    /// The switch happened; the record carries the reconnection counts and
    /// the operation still holds its locks (release after
    /// [`RostConfig::lock_hold_secs`]).
    Switched {
        /// The tree surgery record.
        record: SwitchRecord,
        /// The lock-holding operation to release later.
        op: OpId,
    },
    /// The BTP/bandwidth condition does not hold — check again next
    /// interval.
    NotEligible,
    /// Some node in the lock set is busy with another operation — retry
    /// after the configured back-off.
    Busy,
}

/// Lifetime outcome counters for one [`SwitchingProtocol`], broken down
/// by [`SwitchOutcome`] variant. `attempts` is always the sum of the
/// other three.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Total calls to [`SwitchingProtocol::attempt`].
    pub attempts: u64,
    /// Attempts that promoted the child ([`SwitchOutcome::Switched`]).
    pub switched: u64,
    /// Attempts refused by lock contention ([`SwitchOutcome::Busy`]).
    pub busy: u64,
    /// Attempts failing the §3.3 condition
    /// ([`SwitchOutcome::NotEligible`]).
    pub not_eligible: u64,
}

/// Driver state for ROST switching over one tree.
///
/// # Examples
///
/// ```
/// use rom_overlay::{Location, MemberProfile, MulticastTree, NodeId, paper_source};
/// use rom_rost::{RostConfig, SwitchOutcome, SwitchingProtocol};
/// use rom_sim::SimTime;
///
/// let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
/// // A weak early parent and a strong late child.
/// let weak = MemberProfile::new(NodeId(1), 1.0, SimTime::ZERO, 1e6, Location(1));
/// let strong = MemberProfile::new(NodeId(2), 5.0, SimTime::from_secs(60.0), 1e6, Location(2));
/// tree.attach(weak, NodeId::SOURCE)?;
/// tree.attach(strong, NodeId(1))?;
///
/// let mut rost = SwitchingProtocol::new(RostConfig::paper());
/// // Early on the child's BTP is still smaller.
/// assert_eq!(rost.attempt(&mut tree, NodeId(2), SimTime::from_secs(70.0)), SwitchOutcome::NotEligible);
/// // Five minutes later it has overtaken: 5·(t−60) > 1·t for t > 75.
/// match rost.attempt(&mut tree, NodeId(2), SimTime::from_secs(400.0)) {
///     SwitchOutcome::Switched { op, .. } => rost.release(op),
///     other => panic!("expected a switch, got {other:?}"),
/// }
/// assert_eq!(tree.parent(NodeId(2)), Some(NodeId::SOURCE));
/// assert_eq!(tree.parent(NodeId(1)), Some(NodeId(2)));
/// # Ok::<(), rom_overlay::TreeError>(())
/// ```
#[derive(Debug)]
pub struct SwitchingProtocol {
    config: RostConfig,
    locks: LockTable,
    next_op: u64,
    stats: SwitchStats,
    /// Reusable lock-set buffer: one switching attempt per event makes
    /// this the hottest allocation in the ROST loop, so it is kept warm
    /// across attempts.
    lock_buf: Vec<NodeId>,
}

impl SwitchingProtocol {
    /// Creates a driver with the given configuration.
    #[must_use]
    pub fn new(config: RostConfig) -> Self {
        SwitchingProtocol {
            config,
            locks: LockTable::new(),
            next_op: 0,
            stats: SwitchStats::default(),
            lock_buf: Vec::new(),
        }
    }

    /// Lifetime counters over every [`attempt`](Self::attempt) outcome.
    #[must_use]
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// The protocol configuration.
    #[must_use]
    pub fn config(&self) -> &RostConfig {
        &self.config
    }

    /// Access to the lock table, so the engine can also lock nodes engaged
    /// in failure recovery (the paper treats recovery as a competing
    /// locker).
    pub fn locks_mut(&mut self) -> &mut LockTable {
        &mut self.locks
    }

    /// Read-only view of the lock table.
    #[must_use]
    pub fn locks(&self) -> &LockTable {
        &self.locks
    }

    /// Allocates a fresh operation id (also used by the engine for
    /// recovery locks).
    pub fn allocate_op(&mut self) -> OpId {
        let op = OpId(self.next_op);
        self.next_op += 1;
        op
    }

    /// The §3.3 switching condition: BTP strictly exceeds the parent's and
    /// bandwidth is no less than the parent's. False for detached members,
    /// children of the source, and unknown ids.
    #[must_use]
    pub fn eligible(tree: &MulticastTree, node: NodeId, now: SimTime) -> bool {
        Self::eligible_with(tree, node, now, true)
    }

    /// Like [`eligible`](Self::eligible), optionally skipping the
    /// bandwidth guard (ablation; see
    /// [`RostConfig::without_bandwidth_guard`]).
    #[must_use]
    pub fn eligible_with(
        tree: &MulticastTree,
        node: NodeId,
        now: SimTime,
        bandwidth_guard: bool,
    ) -> bool {
        // Intern once: the whole check then runs on arena indices with a
        // single id→index lookup instead of one per accessor.
        let Some(ix) = tree.index_of(node) else {
            return false;
        };
        let Some(pix) = tree.parent_ix(ix) else {
            return false;
        };
        if tree.id_of(pix) == tree.root() || !tree.is_attached_ix(ix) {
            return false;
        }
        let child_profile = tree.profile_ix(ix);
        let parent_profile = tree.profile_ix(pix);
        Btp::of(child_profile, now) > Btp::of(parent_profile, now)
            && (!bandwidth_guard || child_profile.bandwidth >= parent_profile.bandwidth)
    }

    /// The nodes a switch by `node` must lock: itself, its parent,
    /// grandparent, children and siblings (§3.3).
    #[must_use]
    pub fn lock_set(tree: &MulticastTree, node: NodeId) -> Vec<NodeId> {
        let mut set = Vec::new();
        Self::lock_set_into(tree, node, &mut set);
        set
    }

    /// [`lock_set`](Self::lock_set) into a caller-owned buffer (cleared
    /// first): the per-attempt path reuses one warm buffer instead of
    /// allocating a fresh `Vec` per switching check.
    pub fn lock_set_into(tree: &MulticastTree, node: NodeId, set: &mut Vec<NodeId>) {
        set.clear();
        set.push(node);
        let Some(ix) = tree.index_of(node) else {
            return;
        };
        if let Some(pix) = tree.parent_ix(ix) {
            set.push(tree.id_of(pix));
            if let Some(gp) = tree.parent_ix(pix) {
                set.push(tree.id_of(gp));
            }
            set.extend(
                tree.children_ix(pix)
                    .iter()
                    .filter(|&&s| s != ix)
                    .map(|&s| tree.id_of(s)),
            );
        }
        set.extend(tree.children_ix(ix).iter().map(|&c| tree.id_of(c)));
    }

    /// Runs one switching check for `node` at `now`.
    ///
    /// On success the locks stay held under the returned [`OpId`]; call
    /// [`release`](Self::release) once [`RostConfig::lock_hold_secs`] have
    /// elapsed.
    pub fn attempt(
        &mut self,
        tree: &mut MulticastTree,
        node: NodeId,
        now: SimTime,
    ) -> SwitchOutcome {
        let _span = tree.prof().span("rost.attempt");
        self.stats.attempts += 1;
        if !Self::eligible_with(tree, node, now, self.config.bandwidth_guard) {
            self.stats.not_eligible += 1;
            return SwitchOutcome::NotEligible;
        }
        let locked = {
            let _locking = tree.prof().span("rost.lock_assembly");
            let mut set = std::mem::take(&mut self.lock_buf);
            Self::lock_set_into(tree, node, &mut set);
            let op = self.allocate_op();
            let locked = self.locks.try_lock_all(op, &set);
            self.lock_buf = set;
            locked.then_some(op)
        };
        let Some(op) = locked else {
            self.stats.busy += 1;
            return SwitchOutcome::Busy;
        };
        match tree.swap_with_parent(node, |p| p.btp(now)) {
            Ok(record) => {
                self.stats.switched += 1;
                SwitchOutcome::Switched { record, op }
            }
            // The capacity guard can only fire for a zero-capacity child,
            // which the bandwidth condition excludes (its parent would
            // need capacity 0 too and could never have had a child); any
            // error leaves the tree untouched, so release the locks and
            // report the node ineligible.
            Err(_) => {
                self.locks.release(op);
                self.stats.not_eligible += 1;
                SwitchOutcome::NotEligible
            }
        }
    }

    /// Releases the locks of a completed switch.
    pub fn release(&mut self, op: OpId) {
        self.locks.release(op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rom_overlay::{paper_source, Location, MemberProfile};

    fn profile(id: u64, bw: f64, join_secs: f64) -> MemberProfile {
        MemberProfile::new(
            NodeId(id),
            bw,
            SimTime::from_secs(join_secs),
            1e6,
            Location(id as u32),
        )
    }

    /// root → 1 → 2, where 2 out-bandwidths 1.
    fn two_level_tree() -> MulticastTree {
        let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
        tree.attach(profile(1, 1.0, 0.0), NodeId(0)).unwrap();
        tree.attach(profile(2, 4.0, 100.0), NodeId(1)).unwrap();
        tree
    }

    #[test]
    fn eligibility_needs_btp_and_bandwidth() {
        let tree = two_level_tree();
        // t=120: BTP(1)=120, BTP(2)=80 → not yet.
        assert!(!SwitchingProtocol::eligible(
            &tree,
            NodeId(2),
            SimTime::from_secs(120.0)
        ));
        // t=200: BTP(1)=200, BTP(2)=400 → eligible.
        assert!(SwitchingProtocol::eligible(
            &tree,
            NodeId(2),
            SimTime::from_secs(200.0)
        ));
    }

    #[test]
    fn bandwidth_guard_blocks_weaker_children() {
        // §3.3: even with a larger BTP, a smaller-bandwidth child must not
        // switch (the parent would overtake it again).
        let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
        tree.attach(profile(1, 2.0, 500.0), NodeId(0)).unwrap();
        tree.attach(profile(2, 1.0, 0.0), NodeId(1)).unwrap();
        // t=600: BTP(1)=200, BTP(2)=600 — BTP condition holds, bandwidth
        // does not.
        assert!(!SwitchingProtocol::eligible(
            &tree,
            NodeId(2),
            SimTime::from_secs(600.0)
        ));
    }

    #[test]
    fn children_of_source_never_switch() {
        let tree = two_level_tree();
        assert!(!SwitchingProtocol::eligible(
            &tree,
            NodeId(1),
            SimTime::from_secs(1e6)
        ));
    }

    #[test]
    fn lock_set_covers_family() {
        let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
        tree.attach(profile(1, 2.0, 0.0), NodeId(0)).unwrap();
        tree.attach(profile(2, 4.0, 100.0), NodeId(1)).unwrap();
        tree.attach(profile(3, 0.5, 0.0), NodeId(1)).unwrap(); // sibling of 2
        tree.attach(profile(4, 0.5, 0.0), NodeId(2)).unwrap(); // child of 2
        let mut set = SwitchingProtocol::lock_set(&tree, NodeId(2));
        set.sort();
        assert_eq!(
            set,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn busy_when_family_locked() {
        let mut tree = two_level_tree();
        let mut rost = SwitchingProtocol::new(RostConfig::paper());
        let recovery = rost.allocate_op();
        assert!(rost.locks_mut().try_lock_all(recovery, &[NodeId(1)]));
        assert_eq!(
            rost.attempt(&mut tree, NodeId(2), SimTime::from_secs(500.0)),
            SwitchOutcome::Busy
        );
        // After the competing operation completes, the switch goes through.
        rost.release(recovery);
        match rost.attempt(&mut tree, NodeId(2), SimTime::from_secs(500.0)) {
            SwitchOutcome::Switched { record, op } => {
                assert_eq!(record.promoted, NodeId(2));
                // Locks held until released.
                assert!(rost.locks().is_locked(NodeId(2)));
                rost.release(op);
                assert_eq!(rost.locks().locked_count(), 0);
            }
            other => panic!("expected switch, got {other:?}"),
        }
        tree.check_invariants().unwrap();
        assert_eq!(tree.parent(NodeId(2)), Some(NodeId(0)));
    }

    #[test]
    fn switch_overhead_is_2d_plus_1_shaped() {
        // Fig. 2's shape: parent with 2 children, child with 3.
        let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
        tree.attach(profile(1, 2.0, 0.0), NodeId(0)).unwrap();
        tree.attach(profile(2, 3.0, 10.0), NodeId(1)).unwrap();
        tree.attach(profile(3, 0.5, 0.0), NodeId(1)).unwrap();
        for i in 4..7 {
            tree.attach(profile(i, 0.5, 0.0), NodeId(2)).unwrap();
        }
        let mut rost = SwitchingProtocol::new(RostConfig::paper());
        match rost.attempt(&mut tree, NodeId(2), SimTime::from_secs(10_000.0)) {
            SwitchOutcome::Switched { record, op } => {
                assert_eq!(record.parent_changes, 5); // 2d+1 with d=2
                rost.release(op);
            }
            other => panic!("expected switch, got {other:?}"),
        }
    }

    #[test]
    fn stats_break_down_by_outcome() {
        let mut tree = two_level_tree();
        let mut rost = SwitchingProtocol::new(RostConfig::paper());
        // Not eligible yet.
        rost.attempt(&mut tree, NodeId(2), SimTime::from_secs(101.0));
        // Busy: the family is locked by a competing operation.
        let recovery = rost.allocate_op();
        assert!(rost.locks_mut().try_lock_all(recovery, &[NodeId(1)]));
        rost.attempt(&mut tree, NodeId(2), SimTime::from_secs(500.0));
        rost.release(recovery);
        // Switched.
        match rost.attempt(&mut tree, NodeId(2), SimTime::from_secs(500.0)) {
            SwitchOutcome::Switched { op, .. } => rost.release(op),
            other => panic!("expected switch, got {other:?}"),
        }
        let stats = rost.stats();
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.switched, 1);
        assert_eq!(stats.busy, 1);
        assert_eq!(stats.not_eligible, 1);
        assert_eq!(
            stats.attempts,
            stats.switched + stats.busy + stats.not_eligible
        );
    }

    #[test]
    fn not_eligible_outcome_for_fresh_member() {
        let mut tree = two_level_tree();
        let mut rost = SwitchingProtocol::new(RostConfig::paper());
        assert_eq!(
            rost.attempt(&mut tree, NodeId(2), SimTime::from_secs(101.0)),
            SwitchOutcome::NotEligible
        );
        assert_eq!(rost.locks().locked_count(), 0);
    }
}
