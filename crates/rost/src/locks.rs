//! The distributed-lock abstraction behind ROST's switching operation.
//!
//! §3.3: "When a node decides to switch with its parent, it first tries to
//! 'lock' a set of relevant nodes, including its parent, its grandparent
//! and all of its children and siblings, in order to maintain a consistent
//! state... If any of these nodes is already in the process of another
//! switching, or operations such as overlay failure recovery, the lock
//! cannot be acquired and the initiating node waits."
//!
//! In the simulation the table is a centralized stand-in for the
//! distributed handshakes; acquisition is all-or-nothing, exactly like the
//! protocol's outcome.

use std::collections::BTreeMap;

use rom_overlay::NodeId;

/// Identifier of one locking operation (a switch or a recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u64);

/// An all-or-nothing multi-node lock table.
///
/// # Examples
///
/// ```
/// use rom_rost::{LockTable, OpId};
/// use rom_overlay::NodeId;
///
/// let mut locks = LockTable::new();
/// assert!(locks.try_lock_all(OpId(1), &[NodeId(1), NodeId(2)]));
/// // Overlapping set: refused, nothing newly locked.
/// assert!(!locks.try_lock_all(OpId(2), &[NodeId(2), NodeId(3)]));
/// assert!(!locks.is_locked(NodeId(3)));
/// locks.release(OpId(1));
/// assert!(locks.try_lock_all(OpId(2), &[NodeId(2), NodeId(3)]));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    holders: BTreeMap<NodeId, OpId>,
    ops: BTreeMap<OpId, Vec<NodeId>>,
    grants: u64,
    denials: u64,
}

impl LockTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Attempts to lock every node in `set` for `op`. Either all locks are
    /// taken and `true` is returned, or none are and `false` is returned.
    /// Duplicate ids within `set` are tolerated.
    ///
    /// # Panics
    ///
    /// Panics if `op` already holds locks (operations lock once).
    pub fn try_lock_all(&mut self, op: OpId, set: &[NodeId]) -> bool {
        assert!(
            !self.ops.contains_key(&op),
            "operation {op:?} already holds locks"
        );
        if set.iter().any(|n| self.holders.contains_key(n)) {
            self.denials += 1;
            return false;
        }
        self.grants += 1;
        let mut held = Vec::with_capacity(set.len());
        for &n in set {
            if self.holders.insert(n, op).is_none() {
                held.push(n);
            }
        }
        self.ops.insert(op, held);
        true
    }

    /// Releases every lock held by `op`. Releasing an unknown op is a
    /// no-op (the op may have locked nothing).
    pub fn release(&mut self, op: OpId) {
        if let Some(held) = self.ops.remove(&op) {
            for n in held {
                self.holders.remove(&n);
            }
        }
    }

    /// True if any operation currently holds `node`.
    #[must_use]
    pub fn is_locked(&self, node: NodeId) -> bool {
        self.holders.contains_key(&node)
    }

    /// The operation holding `node`, if any.
    #[must_use]
    pub fn holder(&self, node: NodeId) -> Option<OpId> {
        self.holders.get(&node).copied()
    }

    /// Number of currently locked nodes.
    #[must_use]
    pub fn locked_count(&self) -> usize {
        self.holders.len()
    }

    /// Number of successful [`LockTable::try_lock_all`] acquisitions over
    /// this table's lifetime.
    #[must_use]
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Number of refused [`LockTable::try_lock_all`] acquisitions (some
    /// node in the set was busy) — the contention signal the §3.3
    /// back-off responds to.
    #[must_use]
    pub fn denials(&self) -> u64 {
        self.denials
    }

    /// Drops locks held on `node` regardless of owner — used when a locked
    /// node crashes mid-operation (the failure detector supersedes the
    /// lock). The owning operation keeps its other locks.
    pub fn evict_node(&mut self, node: NodeId) {
        if let Some(op) = self.holders.remove(&node) {
            if let Some(held) = self.ops.get_mut(&op) {
                held.retain(|&n| n != node);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_or_nothing() {
        let mut t = LockTable::new();
        assert!(t.try_lock_all(OpId(1), &[NodeId(1), NodeId(2), NodeId(3)]));
        assert_eq!(t.locked_count(), 3);
        assert!(!t.try_lock_all(OpId(2), &[NodeId(9), NodeId(3)]));
        // Nothing from the failed attempt leaked.
        assert!(!t.is_locked(NodeId(9)));
        assert_eq!(t.locked_count(), 3);
    }

    #[test]
    fn release_frees_everything() {
        let mut t = LockTable::new();
        t.try_lock_all(OpId(1), &[NodeId(1), NodeId(2)]);
        t.release(OpId(1));
        assert_eq!(t.locked_count(), 0);
        assert!(t.try_lock_all(OpId(2), &[NodeId(1), NodeId(2)]));
    }

    #[test]
    fn grant_and_denial_counters_accumulate() {
        let mut t = LockTable::new();
        assert_eq!((t.grants(), t.denials()), (0, 0));
        assert!(t.try_lock_all(OpId(1), &[NodeId(1)]));
        assert!(!t.try_lock_all(OpId(2), &[NodeId(1), NodeId(2)]));
        assert!(!t.try_lock_all(OpId(3), &[NodeId(1)]));
        t.release(OpId(1));
        assert!(t.try_lock_all(OpId(4), &[NodeId(1)]));
        assert_eq!((t.grants(), t.denials()), (2, 2));
    }

    #[test]
    fn release_unknown_is_noop() {
        let mut t = LockTable::new();
        t.release(OpId(42));
        assert_eq!(t.locked_count(), 0);
    }

    #[test]
    fn duplicate_ids_tolerated() {
        let mut t = LockTable::new();
        assert!(t.try_lock_all(OpId(1), &[NodeId(1), NodeId(1)]));
        t.release(OpId(1));
        assert!(!t.is_locked(NodeId(1)));
    }

    #[test]
    fn holder_lookup() {
        let mut t = LockTable::new();
        t.try_lock_all(OpId(7), &[NodeId(1)]);
        assert_eq!(t.holder(NodeId(1)), Some(OpId(7)));
        assert_eq!(t.holder(NodeId(2)), None);
    }

    #[test]
    fn evict_node_keeps_other_locks() {
        let mut t = LockTable::new();
        t.try_lock_all(OpId(1), &[NodeId(1), NodeId(2)]);
        t.evict_node(NodeId(1));
        assert!(!t.is_locked(NodeId(1)));
        assert!(t.is_locked(NodeId(2)));
        t.release(OpId(1));
        assert_eq!(t.locked_count(), 0);
    }

    #[test]
    #[should_panic(expected = "already holds")]
    fn double_lock_by_same_op_panics() {
        let mut t = LockTable::new();
        t.try_lock_all(OpId(1), &[NodeId(1)]);
        t.try_lock_all(OpId(1), &[NodeId(2)]);
    }
}
