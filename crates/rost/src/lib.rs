//! # rom-rost: the Reliability-Oriented Switching Tree algorithm
//!
//! The proactive half of the DSN 2006 paper's contribution (§3). ROST
//! keeps the overlay tree partially ordered by the **bandwidth-time
//! product** (BTP = outbound bandwidth × age):
//!
//! - members join like minimum-depth (shallowest known parent with a free
//!   slot, nearest on ties) and start at the leaves,
//! - every *switching interval* each member compares its BTP with its
//!   parent's; when it exceeds it *and* its bandwidth is no smaller, the
//!   two **switch positions** under a family-wide lock,
//! - claimed bandwidths and ages are made verifiable by the **referee
//!   mechanism**, so cheaters cannot climb the tree.
//!
//! The result combines the short tree of bandwidth ordering with the
//! stable upper layers of time ordering, at an overhead of ≈ 2d + 1 parent
//! changes per (rare) switch.
//!
//! Crate contents:
//!
//! - [`Btp`] — the ordering metric,
//! - [`RostConfig`] — protocol parameters (§5 defaults),
//! - [`SwitchingProtocol`] / [`SwitchOutcome`] — the switching state
//!   machine over a `rom_overlay::MulticastTree`,
//! - [`LockTable`] / [`OpId`] — the all-or-nothing family locks,
//! - [`RefereeRegistry`] / [`Verification`] — the anti-cheating mechanism,
//! - [`RostJoin`] — the join rule as a `rom_overlay` algorithm.

mod audit;
mod btp;
mod config;
mod join;
mod locks;
mod referee;
mod switching;

pub use audit::{attempt_audited, AuditRefusal, AuditedOutcome, ResourceClaim};
pub use btp::Btp;
pub use config::RostConfig;
pub use join::RostJoin;
pub use locks::{LockTable, OpId};
pub use referee::{RefereeError, RefereeRegistry, Verification, VerificationStats};
pub use switching::{SwitchOutcome, SwitchStats, SwitchingProtocol};
