//! ROST protocol parameters.

/// Tunable parameters of the ROST protocol.
///
/// Defaults follow §5 of the paper: a 360-second switching interval, a
/// 15-second lock retry delay (§3.3), and two referees of each kind
/// ("Both r_age and r_bw are greater than 1 for the purpose of fault
/// tolerance", §3.4).
#[derive(Debug, Clone, PartialEq)]
pub struct RostConfig {
    /// Seconds between a member's switching-condition checks (§3.3; the
    /// paper's default is 360 s, Fig. 11 sweeps 480–1800 s).
    pub switching_interval_secs: f64,
    /// How long a member waits before re-checking when it could not lock
    /// the nodes involved in a switch (§3.3 suggests ~15 s).
    pub lock_retry_secs: f64,
    /// How long the locks of one switching operation are held (the time
    /// the coordinated reconnections take).
    pub lock_hold_secs: f64,
    /// Number of age referees per member (`r_age > 1`, §3.4).
    pub age_referees: usize,
    /// Number of bandwidth referees per member (`r_bw > 1`, §3.4).
    pub bandwidth_referees: usize,
    /// Number of nodes in the bandwidth-measurer set (§3.4).
    pub bandwidth_measurers: usize,
    /// Heartbeat interval of referee connections; bounds the disagreement
    /// between referees' age records (§3.4).
    pub heartbeat_secs: f64,
    /// Whether the §3.3 bandwidth guard is enforced ("its bandwidth is no
    /// less than the parent's bandwidth"). Disabling it is an ablation:
    /// pure BTP ordering, where a strong-BTP weak-bandwidth member can
    /// climb only to be overtaken again later.
    pub bandwidth_guard: bool,
}

impl RostConfig {
    /// The paper's §5 defaults.
    #[must_use]
    pub fn paper() -> Self {
        RostConfig::default()
    }

    /// A copy with a different switching interval (Fig. 11's sweep).
    #[must_use]
    pub fn with_switching_interval(mut self, secs: f64) -> Self {
        assert!(secs > 0.0, "switching interval must be positive");
        self.switching_interval_secs = secs;
        self
    }

    /// A copy without the §3.3 bandwidth guard (ablation).
    #[must_use]
    pub fn without_bandwidth_guard(mut self) -> Self {
        self.bandwidth_guard = false;
        self
    }
}

impl Default for RostConfig {
    fn default() -> Self {
        RostConfig {
            switching_interval_secs: 360.0,
            lock_retry_secs: 15.0,
            lock_hold_secs: 2.0,
            age_referees: 2,
            bandwidth_referees: 2,
            bandwidth_measurers: 3,
            heartbeat_secs: 5.0,
            bandwidth_guard: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section5() {
        let c = RostConfig::paper();
        assert_eq!(c.switching_interval_secs, 360.0);
        assert_eq!(c.lock_retry_secs, 15.0);
        assert!(c.age_referees > 1, "r_age > 1 per §3.4");
        assert!(c.bandwidth_referees > 1, "r_bw > 1 per §3.4");
    }

    #[test]
    fn interval_override() {
        let c = RostConfig::paper().with_switching_interval(480.0);
        assert_eq!(c.switching_interval_secs, 480.0);
        assert_eq!(c.lock_retry_secs, 15.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = RostConfig::paper().with_switching_interval(0.0);
    }
}
