//! # `fig_chaos` — chaos scenarios under runtime invariant checking
//!
//! Not a paper figure: a fault-injection harness. Runs one named
//! rom-chaos scenario through the full streaming engine with every
//! cross-cutting invariant armed, prints a one-row summary, and exits
//! non-zero if any invariant tripped. The scenario's injections are
//! scheduled mid-measurement so warmup equilibrium is undisturbed.
//!
//! ```text
//! fig_chaos --scenario <name> --seed <n> [--paper] [--trace PATH]
//! fig_chaos --list
//! ```
//!
//! With `--trace`, the run's JSONL trace lands at `PATH` with the usual
//! `PATH.manifest.json` / `PATH.metrics.json` sidecars; invariant
//! violations appear in the trace as `chaos`-subsystem error events.

use rom_bench::{obs_to_file, trace_sidecars};
use rom_chaos::{InvariantRegistry, Scenario};
use rom_engine::{AlgorithmKind, ChurnConfig, StreamingConfig, StreamingSim};
use rom_obs::{fnv1a, Obs};

struct Args {
    scenario: String,
    seed: u64,
    paper: bool,
    trace: Option<String>,
}

fn usage() -> ! {
    eprintln!("usage: fig_chaos [--scenario NAME] [--seed N] [--paper] [--trace PATH] [--list]");
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut parsed = Args {
        scenario: "combined".to_string(),
        seed: 42,
        paper: false,
        trace: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => parsed.scenario = args.next().unwrap_or_else(|| usage()),
            "--seed" => {
                parsed.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--paper" => parsed.paper = true,
            "--trace" => parsed.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--list" => {
                for name in Scenario::NAMES {
                    println!("{name}");
                }
                std::process::exit(0)
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    parsed
}

fn main() {
    let args = parse_args();

    // Inject after warmup has settled and finish well inside the
    // measurement window (quick: 300 s warmup + 900 s measure; paper:
    // 1 800 s + 3 600 s).
    let (size, start_secs, span_secs) = if args.paper {
        (2_000, 2_400.0, 2_400.0)
    } else {
        (250, 450.0, 600.0)
    };
    let mut churn = if args.paper {
        ChurnConfig::paper(AlgorithmKind::Rost, size)
    } else {
        ChurnConfig::quick(AlgorithmKind::Rost, size)
    }
    .with_seed(args.seed);

    let Some(scenario) = Scenario::by_name(&args.scenario, start_secs, span_secs) else {
        eprintln!(
            "error: unknown scenario `{}` (--list prints the catalogue)",
            args.scenario
        );
        std::process::exit(2)
    };
    let injections = scenario.injections.len();
    churn.chaos = Some(scenario);
    let cfg = StreamingConfig::paper(churn, 2);
    let config_digest = fnv1a(format!("{cfg:?}").as_bytes());

    let obs = match args.trace.as_deref() {
        Some(path) => obs_to_file(path),
        None => Obs::metrics_only(),
    };
    let registry = InvariantRegistry::with_all();
    let armed = registry.names().join("+");
    let (report, registry, obs) = StreamingSim::new(cfg).run_checked(registry, obs);

    println!(
        "# fig_chaos — scenario `{}` (injections: {injections}) seed {} under invariants [{armed}]",
        args.scenario, args.seed
    );
    println!("scenario,seed,outcome,events,outages,violations");
    println!(
        "{},{},{:?},{},{},{}",
        args.scenario,
        args.seed,
        report.outcome(),
        report.events_processed(),
        report.outages,
        registry.violations().len()
    );

    if let Some(path) = args.trace.as_deref() {
        trace_sidecars(
            path,
            &format!("fig_chaos:{}", args.scenario),
            args.seed,
            config_digest,
            &obs,
            report.events_processed(),
            report.outcome(),
        );
    }

    if !registry.is_clean() {
        for v in registry.violations() {
            let subject = v
                .subject
                .map_or(String::new(), |id| format!(" member={}", id.0));
            eprintln!(
                "violation: t={:.3}s invariant={}{subject}: {}",
                v.time, v.invariant, v.detail
            );
        }
        std::process::exit(1)
    }
}
