//! # `fig_chaos` — chaos scenarios under runtime invariant checking
//!
//! Not a paper figure: a fault-injection harness. Runs one named
//! rom-chaos scenario through the full streaming engine with every
//! cross-cutting invariant armed, prints a one-row summary, and exits
//! non-zero if any invariant tripped. The scenario's injections are
//! scheduled mid-measurement so warmup equilibrium is undisturbed.
//!
//! ```text
//! fig_chaos --scenario <name> --seed <n> [--paper] [--jobs N] [--trace PATH]
//! fig_chaos --list
//! ```
//!
//! With `--trace`, the run's JSONL trace lands at `PATH` with the
//! aggregate manifest at `PATH.manifest.json` and the metrics snapshot
//! at `PATH.metrics.json` (the same merged-sweep format every figure
//! binary writes); invariant violations appear in the trace as
//! `chaos`-subsystem error events.

use rom_bench::{default_jobs, run_manifest, CellOut, CellTrace, Sweep};
use rom_chaos::{InvariantRegistry, Scenario};
use rom_engine::{AlgorithmKind, ChurnConfig, StreamingConfig, StreamingSim};
use rom_obs::{fnv1a, JsonlSink, Obs, SharedBuffer, Tracer};

struct Args {
    scenario: String,
    seed: u64,
    paper: bool,
    jobs: usize,
    trace: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: fig_chaos [--scenario NAME] [--seed N] [--paper] [--jobs N] [--trace PATH] [--list]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut parsed = Args {
        scenario: "combined".to_string(),
        seed: 42,
        paper: false,
        jobs: default_jobs(),
        trace: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => parsed.scenario = args.next().unwrap_or_else(|| usage()),
            "--seed" => {
                parsed.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--paper" => parsed.paper = true,
            "--jobs" => {
                parsed.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--trace" => parsed.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--list" => {
                for name in Scenario::NAMES {
                    println!("{name}");
                }
                std::process::exit(0)
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    parsed
}

fn main() {
    let args = parse_args();

    // Inject after warmup has settled and finish well inside the
    // measurement window (quick: 300 s warmup + 900 s measure; paper:
    // 1 800 s + 3 600 s).
    let (size, start_secs, span_secs) = if args.paper {
        (2_000, 2_400.0, 2_400.0)
    } else {
        (250, 450.0, 600.0)
    };
    let mut churn = if args.paper {
        ChurnConfig::paper(AlgorithmKind::Rost, size)
    } else {
        ChurnConfig::quick(AlgorithmKind::Rost, size)
    }
    .with_seed(args.seed);

    let Some(scenario) = Scenario::by_name(&args.scenario, start_secs, span_secs) else {
        eprintln!(
            "error: unknown scenario `{}` (--list prints the catalogue)",
            args.scenario
        );
        std::process::exit(2)
    };
    let injections = scenario.injections.len();
    churn.chaos = Some(scenario);
    let cfg = StreamingConfig::paper(churn, 2);
    let config_digest = fnv1a(format!("{cfg:?}").as_bytes());
    let name = format!("fig_chaos:{}", args.scenario);

    // A single checked cell through the sweep engine, so the trace
    // artifacts merge and land exactly like every other binary's.
    let mut out = Sweep::with_jobs(args.jobs).run(1, 1, |_cell| {
        let registry = InvariantRegistry::with_all();
        if args.trace.is_some() {
            let buffer = SharedBuffer::new();
            let obs = Obs::new(Tracer::to_sink(Box::new(JsonlSink::new(buffer.clone()))));
            let (report, registry, obs) = StreamingSim::new(cfg.clone()).run_checked(registry, obs);
            let trace = CellTrace {
                jsonl: buffer.contents(),
                metrics_json: obs.snapshot().to_json(),
                manifest: run_manifest(
                    &name,
                    args.seed,
                    config_digest,
                    &obs,
                    report.events_processed(),
                    report.outcome(),
                ),
            };
            CellOut {
                report: (report, registry),
                warnings: Vec::new(),
                trace: Some(trace),
            }
        } else {
            let (report, registry, _obs) =
                StreamingSim::new(cfg.clone()).run_checked(registry, Obs::metrics_only());
            CellOut::plain((report, registry))
        }
    });
    // The grid is 1×1, so its cell coordinates carry no information;
    // stamp the user's --seed into the aggregate manifest instead.
    for (id, _) in &mut out.traces {
        id.seed = args.seed;
    }
    if let Some(path) = args.trace.as_deref() {
        out.write_trace(path, &name);
    }
    let (report, registry) = out
        .into_single_point()
        .into_iter()
        .next()
        .expect("one cell ran");

    let armed = registry.names().join("+");
    println!(
        "# fig_chaos — scenario `{}` (injections: {injections}) seed {} under invariants [{armed}]",
        args.scenario, args.seed
    );
    println!("scenario,seed,outcome,events,outages,violations");
    println!(
        "{},{},{:?},{},{},{}",
        args.scenario,
        args.seed,
        report.outcome(),
        report.events_processed(),
        report.outages,
        registry.violations().len()
    );

    if !registry.is_clean() {
        for v in registry.violations() {
            let subject = v
                .subject
                .map_or(String::new(), |id| format!(" member={}", id.0));
            eprintln!(
                "violation: t={:.3}s invariant={}{subject}: {}",
                v.time, v.invariant, v.detail
            );
        }
        std::process::exit(1)
    }
}
