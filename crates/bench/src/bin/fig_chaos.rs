//! # `fig_chaos` — chaos scenarios under runtime invariant checking
//!
//! Not a paper figure: a fault-injection harness. Runs one named
//! rom-chaos scenario through the full streaming engine with every
//! cross-cutting invariant armed, prints a one-row summary, and exits
//! non-zero if any invariant tripped. The scenario's injections are
//! scheduled mid-measurement so warmup equilibrium is undisturbed.
//!
//! ```text
//! fig_chaos --scenario <name> --seed <n> [--paper] [--jobs N] [--trace PATH] [--profile PATH]
//! fig_chaos --list
//! ```
//!
//! With `--trace`, the run's JSONL trace lands at `PATH` with the
//! aggregate manifest at `PATH.manifest.json`, the metrics snapshot at
//! `PATH.metrics.json` and the per-member health timeline at
//! `PATH.health.jsonl` (the same merged-sweep format every figure
//! binary writes); invariant violations appear in the trace as
//! `chaos`-subsystem error events. With `--profile`, the run's span
//! profile (the only artifact carrying wall-clock time) lands at the
//! given path.

use rom_bench::{default_jobs, run_manifest, CellOut, CellTrace, Sweep};
use rom_chaos::{InvariantRegistry, Scenario};
use rom_engine::{AlgorithmKind, ChurnConfig, StreamingConfig, StreamingSim};
use rom_obs::{fnv1a, HealthSink, JsonlSink, Obs, Prof, SharedBuffer, Tracer};
use std::time::Instant;

struct Args {
    scenario: String,
    seed: u64,
    paper: bool,
    jobs: usize,
    trace: Option<String>,
    profile: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: fig_chaos [--scenario NAME] [--seed N] [--paper] [--jobs N] [--trace PATH] [--profile PATH] [--list]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut parsed = Args {
        scenario: "combined".to_string(),
        seed: 42,
        paper: false,
        jobs: default_jobs(),
        trace: None,
        profile: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => parsed.scenario = args.next().unwrap_or_else(|| usage()),
            "--seed" => {
                parsed.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--paper" => parsed.paper = true,
            "--jobs" => {
                parsed.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--trace" => parsed.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--profile" => parsed.profile = Some(args.next().unwrap_or_else(|| usage())),
            "--list" => {
                for name in Scenario::NAMES {
                    println!("{name}");
                }
                std::process::exit(0)
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    parsed
}

fn main() {
    let args = parse_args();

    // Inject after warmup has settled and finish well inside the
    // measurement window (quick: 300 s warmup + 900 s measure; paper:
    // 1 800 s + 3 600 s).
    let (size, start_secs, span_secs) = if args.paper {
        (2_000, 2_400.0, 2_400.0)
    } else {
        (250, 450.0, 600.0)
    };
    let mut churn = if args.paper {
        ChurnConfig::paper(AlgorithmKind::Rost, size)
    } else {
        ChurnConfig::quick(AlgorithmKind::Rost, size)
    }
    .with_seed(args.seed);

    let Some(scenario) = Scenario::by_name(&args.scenario, start_secs, span_secs) else {
        eprintln!(
            "error: unknown scenario `{}` (--list prints the catalogue)",
            args.scenario
        );
        std::process::exit(2)
    };
    let injections = scenario.injections.len();
    churn.chaos = Some(scenario);
    let cfg = StreamingConfig::paper(churn, 2);
    let config_digest = fnv1a(format!("{cfg:?}").as_bytes());
    let name = format!("fig_chaos:{}", args.scenario);

    // A single checked cell through the sweep engine, so the trace
    // artifacts merge and land exactly like every other binary's.
    let mut out = Sweep::with_jobs(args.jobs).run(1, 1, |_cell| {
        let registry = InvariantRegistry::with_all();
        let (obs, pipe) = if args.trace.is_some() {
            let buffer = SharedBuffer::new();
            let (sink, health) = HealthSink::new(JsonlSink::new(buffer.clone()));
            let obs = Obs::new(Tracer::to_sink(Box::new(sink)));
            (obs, Some((buffer, health)))
        } else {
            (Obs::metrics_only(), None)
        };
        let prof = if args.profile.is_some() {
            Prof::enabled()
        } else {
            Prof::disabled()
        };
        let started = Instant::now();
        let (report, registry, obs) =
            StreamingSim::new(cfg.clone()).run_checked(registry, obs.with_prof(prof));
        let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let trace = pipe.map(|(buffer, health)| CellTrace {
            jsonl: buffer.contents(),
            metrics_json: obs.snapshot().to_json(),
            manifest: run_manifest(
                &name,
                args.seed,
                config_digest,
                &obs,
                report.events_processed(),
                report.outcome(),
            ),
            health: Some(health.to_jsonl()),
        });
        let profile = obs
            .prof()
            .report()
            .map(|r| r.to_json(&name, args.seed, report.events_processed(), wall_ns));
        CellOut {
            report: (report, registry),
            warnings: Vec::new(),
            trace,
            profile,
        }
    });
    // The grid is 1×1, so its cell coordinates carry no information;
    // stamp the user's --seed into the aggregate manifest instead.
    for (id, _) in &mut out.traces {
        id.seed = args.seed;
    }
    if let Some(path) = args.trace.as_deref() {
        out.write_trace(path, &name);
    }
    if let Some(path) = args.profile.as_deref() {
        out.write_profile(path);
    }
    let (report, registry) = out
        .into_single_point()
        .into_iter()
        .next()
        .expect("one cell ran");

    let armed = registry.names().join("+");
    println!(
        "# fig_chaos — scenario `{}` (injections: {injections}) seed {} under invariants [{armed}]",
        args.scenario, args.seed
    );
    println!("scenario,seed,outcome,events,outages,violations");
    println!(
        "{},{},{:?},{},{},{}",
        args.scenario,
        args.seed,
        report.outcome(),
        report.events_processed(),
        report.outages,
        registry.violations().len()
    );

    if !registry.is_clean() {
        for v in registry.violations() {
            let subject = v
                .subject
                .map_or(String::new(), |id| format!(" member={}", id.0));
            eprintln!(
                "violation: t={:.3}s invariant={}{subject}: {}",
                v.time, v.invariant, v.detail
            );
        }
        std::process::exit(1)
    }
}
