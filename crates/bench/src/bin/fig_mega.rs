//! # `fig_mega` — million-member scale sweep
//!
//! Not a paper figure: a scale study. Runs the full churn engine (ROST)
//! at 100k, 300k and 1M steady-state members under the paper's §5
//! dynamics, with [`ChurnConfig::mega`]'s fixed event budget as the
//! designed stopping rule — every cell is a complete measurement of the
//! same number of dispatches, so events/second is comparable across
//! sizes. Cells run serially in ascending size order so each cell's
//! process-peak-RSS reading is dominated by its own footprint.
//!
//! ```text
//! fig_mega [--seed N] [--sizes a,b,c] [--profile PATH]
//! ```
//!
//! Stdout carries only deterministic quantities (events, exact queue
//! peaks, population); wall-clock throughput, the calibration spin and
//! peak RSS go to `BENCH_mega.json` in the working directory, following
//! the `BENCH_headline.json` convention. `--profile PATH` records a
//! span profile of the **largest** cell (the one whose hotspots matter
//! at scale) — profiling never perturbs stdout.

use rom_bench::{calibration_spin_ns, instrumented_churn_cell, Sidecars};
use rom_engine::{AlgorithmKind, ChurnConfig, ChurnSim};
use std::time::Instant;

/// The default member-count sweep: the tree wall's 100k point, a middle
/// point, and the headline 1M cell.
const SIZES: [usize; 3] = [100_000, 300_000, 1_000_000];

struct Args {
    seed: u64,
    sizes: Vec<usize>,
    profile: Option<String>,
}

fn usage() -> ! {
    eprintln!("usage: fig_mega [--seed N] [--sizes a,b,c] [--profile PATH]");
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut parsed = Args {
        seed: 42,
        sizes: SIZES.to_vec(),
        profile: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                parsed.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--sizes" => {
                let list = args.next().unwrap_or_else(|| usage());
                parsed.sizes = list
                    .split(',')
                    .map(|v| v.parse().unwrap_or_else(|_| usage()))
                    .collect();
                if parsed.sizes.is_empty() {
                    usage()
                }
            }
            "--profile" => parsed.profile = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    parsed
}

/// The wall-clock record of one cell (everything here is quarantined to
/// `BENCH_mega.json`; stdout never sees it).
struct Cell {
    members: usize,
    wall_secs: f64,
    events: u64,
    peak_queue: u64,
    peak_queue_bytes: u64,
    peak_rss_bytes: Option<u64>,
}

fn main() {
    let args = parse_args();
    println!(
        "# fig_mega — ROST churn at mega scale (seed {}, fixed event budget)",
        args.seed
    );
    println!("members,outcome,events,peak_queue,peak_queue_bytes,population_mean,disruptions");

    let spin_ns = calibration_spin_ns();
    let mut cells = Vec::new();
    let mut sizes = args.sizes.clone();
    sizes.sort_unstable();
    let largest = *sizes.last().expect("at least one size");
    for members in sizes {
        let cfg = ChurnConfig::mega(AlgorithmKind::Rost, members).with_seed(args.seed);
        let profile_path = args.profile.as_deref().filter(|_| members == largest);
        let started = Instant::now();
        let report = if let Some(path) = profile_path {
            let sidecars = Sidecars {
                trace: None,
                // Leaked to 'static like Scale does for its paths: one
                // leak per process invocation.
                profile: Some(Box::leak(path.to_string().into_boxed_str())),
            };
            let (report, _, profile) =
                instrumented_churn_cell("fig_mega", cfg, args.seed, sidecars);
            if let Some(json) = profile {
                if let Err(err) = std::fs::write(path, json) {
                    eprintln!("error: cannot write {path}: {err}");
                    std::process::exit(2)
                }
            }
            report
        } else {
            ChurnSim::new(cfg).run()
        };
        let wall_secs = started.elapsed().as_secs_f64();
        println!(
            "{members},{:?},{},{},{},{:.1},{:.4}",
            report.outcome,
            report.events_processed,
            report.queue_high_water,
            report.queue_bytes_high_water,
            report.population.mean(),
            report.disruptions_per_mean_lifetime(),
        );
        cells.push(Cell {
            members,
            wall_secs,
            events: report.events_processed,
            peak_queue: report.queue_high_water,
            peak_queue_bytes: report.queue_bytes_high_water,
            peak_rss_bytes: rom_obs::peak_rss_bytes(),
        });
    }

    write_baseline(&cells, args.seed, spin_ns);
    println!("# perf baseline written to BENCH_mega.json");
}

/// Writes the machine-readable scale baseline. Peak RSS is a process-
/// lifetime high-water mark, so with cells run in ascending size order
/// each reading is effectively the largest-so-far cell's footprint.
fn write_baseline(cells: &[Cell], seed: u64, spin_ns: f64) {
    let per_sec = |events: u64, wall: f64| {
        if wall > 0.0 {
            events as f64 / wall
        } else {
            0.0
        }
    };
    let mut json = String::with_capacity(1024);
    json.push_str("{\"name\":\"fig_mega\"");
    json.push_str(&format!(
        ",\"seed\":{seed},\"calibration_spin_ns\":{spin_ns},\"cells\":["
    ));
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"members\":{},\"wall_secs\":{},\"events\":{},\"events_per_sec\":{},\
             \"peak_queue_high_water\":{},\"peak_queue_bytes\":{},\"peak_rss_bytes\":{}}}",
            c.members,
            c.wall_secs,
            c.events,
            per_sec(c.events, c.wall_secs),
            c.peak_queue,
            c.peak_queue_bytes,
            c.peak_rss_bytes
                .map_or("null".to_string(), |b| b.to_string()),
        ));
    }
    json.push_str("]}\n");
    if let Err(err) = std::fs::write("BENCH_mega.json", json) {
        eprintln!("error: cannot write BENCH_mega.json: {err}");
        std::process::exit(2)
    }
}
