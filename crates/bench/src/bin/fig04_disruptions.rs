//! Figure 4: average number of streaming disruptions per node vs network
//! size, for all five construction algorithms.
//!
//! Expected shape (paper §6): minimum-depth and longest-first worst and
//! most size-sensitive; relaxed BO better; relaxed TO better still; ROST
//! lowest, 36–57% below relaxed BO, and much less size-sensitive.

use rom_bench::{banner, churn_config, fmt, mean_over, replicate_churn_traced, row, Scale};
use rom_engine::AlgorithmKind;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 4",
        "avg. streaming disruptions per node (per mean lifetime) vs steady-state size",
        scale,
    );
    let mut header = vec!["size".to_string(), "avg_population".to_string()];
    header.extend(AlgorithmKind::ALL.iter().map(|a| a.name().to_string()));
    println!("{}", row(header));
    let smallest = scale.sizes()[0];
    for size in scale.sizes() {
        let mut cells = vec![size.to_string()];
        let mut population = 0.0;
        let mut values = Vec::new();
        for alg in AlgorithmKind::ALL {
            // --trace/--profile capture the smallest ROST point
            // (smallest artifacts).
            let reports = replicate_churn_traced(
                "fig04_rost_smallest",
                |seed| churn_config(alg, size, seed),
                scale,
                scale
                    .sidecars()
                    .when(alg == AlgorithmKind::Rost && size == smallest),
            );
            population = mean_over(&reports, |r| r.population.mean());
            values.push(fmt(mean_over(&reports, |r| {
                r.disruptions_per_mean_lifetime()
            })));
        }
        cells.push(fmt(population));
        cells.extend(values);
        println!("{}", row(cells));
    }
}
