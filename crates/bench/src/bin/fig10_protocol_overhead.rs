//! Figure 10: protocol overhead — optimization-induced reconnections per
//! node lifetime vs network size.
//!
//! Expected shape: minimum-depth and longest-first exactly zero; relaxed
//! BO/TO substantial (evictions); ROST far below one reconnection per
//! lifetime.

use rom_bench::{banner, churn_config, fmt, mean_over, replicate_churn_traced, row, Scale};
use rom_engine::AlgorithmKind;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 10",
        "avg. optimization reconnections per node lifetime vs size",
        scale,
    );
    let mut header = vec!["size".to_string()];
    header.extend(AlgorithmKind::ALL.iter().map(|a| a.name().to_string()));
    println!("{}", row(header));
    let smallest = scale.sizes()[0];
    for size in scale.sizes() {
        let mut cells = vec![size.to_string()];
        for alg in AlgorithmKind::ALL {
            // --trace/--profile capture the smallest ROST point.
            let reports = replicate_churn_traced(
                "fig10_rost_smallest",
                |seed| churn_config(alg, size, seed),
                scale,
                scale
                    .sidecars()
                    .when(alg == AlgorithmKind::Rost && size == smallest),
            );
            cells.push(fmt(mean_over(&reports, |r| {
                r.reconnections_per_lifetime.mean()
            })));
        }
        println!("{}", row(cells));
    }
}
