//! Perf-regression smoke: compares a fresh `BENCH_headline.json` against
//! the committed baseline and fails when throughput regressed.
//!
//! Raw events/sec is hostage to the machine it ran on, so the comparison
//! is normalized: both files carry `calibration_spin_ns` (the cost of a
//! fixed integer spin on that machine), and `events_per_sec × spin_ns` —
//! events per spin-unit of CPU — cancels single-core speed to first order.
//! The tolerance (default 20%, `--tolerance` / `ROM_PERF_TOLERANCE`)
//! absorbs what normalization cannot: turbo states, cache topology, and
//! co-tenant noise. Runs being compared must use the same `--jobs`
//! setting; the spin is single-core and does not model parallel speedup.
//!
//! Baselines written before the calibration field existed compare on raw
//! events/sec (a warning is printed) rather than failing the smoke.
//!
//! Usage: `perf_smoke --baseline <committed.json> --fresh <new.json>
//! [--tolerance 0.20]`

/// The fields of one baseline this smoke consumes.
struct Baseline {
    events_per_sec: f64,
    spin_ns: Option<f64>,
    jobs: Option<f64>,
}

/// Extracts the first JSON number following `key` in `s`.
fn num_after(s: &str, key: &str) -> Option<f64> {
    let start = s.find(key)? + key.len();
    let rest = &s[start..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn load(path: &str) -> Baseline {
    let json = match std::fs::read_to_string(path) {
        Ok(json) => json,
        Err(err) => {
            eprintln!("error: cannot read {path}: {err}");
            std::process::exit(2);
        }
    };
    // The total block is the sweep-wide number; phase entries also carry
    // an events_per_sec, so anchor on "total" first.
    let Some(total_at) = json.find("\"total\":") else {
        eprintln!("error: {path} has no \"total\" block");
        std::process::exit(2);
    };
    let Some(events_per_sec) = num_after(&json[total_at..], "\"events_per_sec\":") else {
        eprintln!("error: {path} total block has no events_per_sec");
        std::process::exit(2);
    };
    Baseline {
        events_per_sec,
        spin_ns: num_after(&json, "\"calibration_spin_ns\":"),
        jobs: num_after(&json, "\"jobs\":"),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut baseline_path = String::from("BENCH_headline.json");
    let mut fresh_path = String::new();
    let mut tolerance = std::env::var("ROM_PERF_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.20);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = args.next().unwrap_or_default(),
            "--fresh" => fresh_path = args.next().unwrap_or_default(),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(tolerance);
            }
            other => {
                eprintln!("error: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    if fresh_path.is_empty() {
        eprintln!("usage: perf_smoke --baseline <committed.json> --fresh <new.json> [--tolerance 0.20]");
        std::process::exit(2);
    }

    let committed = load(&baseline_path);
    let fresh = load(&fresh_path);
    if let (Some(a), Some(b)) = (committed.jobs, fresh.jobs) {
        if (a - b).abs() > 0.5 {
            eprintln!("error: jobs mismatch (baseline {a}, fresh {b}); rerun with matching --jobs");
            std::process::exit(2);
        }
    }

    let (old_score, new_score, unit) = match (committed.spin_ns, fresh.spin_ns) {
        (Some(a), Some(b)) => (
            committed.events_per_sec * a,
            fresh.events_per_sec * b,
            "events_per_spin_unit",
        ),
        _ => {
            println!("warning: calibration_spin_ns missing; comparing raw events/sec");
            (committed.events_per_sec, fresh.events_per_sec, "events_per_sec")
        }
    };
    let floor = old_score * (1.0 - tolerance);
    println!(
        "perf_smoke: baseline {old_score:.1} {unit}, fresh {new_score:.1}, floor {floor:.1} (tolerance {tolerance})"
    );
    if new_score < floor {
        eprintln!(
            "error: headline throughput regressed more than {:.0}%: {new_score:.1} < {floor:.1} {unit}",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!("perf_smoke: ok");
}
