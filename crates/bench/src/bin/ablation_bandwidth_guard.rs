//! Ablation: ROST with and without the §3.3 bandwidth guard ("its
//! bandwidth is no less than the parent's bandwidth").
//!
//! The guard "avoids unnecessary switching since if the child has a
//! smaller bandwidth, the BTP will eventually be exceeded by the parent".
//! Removing it lets high-BTP free-riders climb over stronger parents:
//! switching overhead rises and the tree loses bandwidth ordering (taller,
//! slower), for no reliability gain.

use rom_bench::{banner, churn_config, fmt, mean_over, replicate_churn_traced, row, Scale};
use rom_engine::AlgorithmKind;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Ablation A2",
        "ROST with vs without the bandwidth guard",
        scale,
    );
    let size = scale.focus_size();
    println!("# focus size: {size} members");
    println!(
        "{}",
        row([
            "variant".into(),
            "disruptions".into(),
            "delay_ms".into(),
            "stretch".into(),
            "depth".into(),
            "reconnections".into(),
            "switches".into(),
        ])
    );
    for (name, guard) in [("guarded (paper)", true), ("unguarded", false)] {
        // --trace/--profile capture the paper (guarded) variant.
        let reports = replicate_churn_traced(
            "ablation_a2_guarded",
            |seed| {
                let mut cfg = churn_config(AlgorithmKind::Rost, size, seed);
                if !guard {
                    cfg.rost = cfg.rost.clone().without_bandwidth_guard();
                }
                cfg
            },
            scale,
            scale.sidecars().when(guard),
        );
        println!(
            "{}",
            row([
                name.to_string(),
                fmt(mean_over(&reports, |r| r.disruptions_per_mean_lifetime())),
                fmt(mean_over(&reports, |r| r.service_delay_ms.mean())),
                fmt(mean_over(&reports, |r| r.stretch.mean())),
                fmt(mean_over(&reports, |r| r.depth.mean())),
                fmt(mean_over(&reports, |r| r.reconnections_per_lifetime.mean())),
                fmt(mean_over(&reports, |r| r.switches as f64)),
            ])
        );
    }
}
