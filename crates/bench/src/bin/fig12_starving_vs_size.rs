//! Figure 12: average starving-time ratio vs network size for recovery
//! group sizes 1–4 (minimum-depth tree, cooperative recovery).
//!
//! Expected shape: a small increase in group size cuts the starving ratio
//! dramatically — group size 3 roughly an order of magnitude below size 1.

use rom_bench::{banner, fmt, mean_over, replicate_streaming_traced, row, Scale};
use rom_engine::{AlgorithmKind, ChurnConfig, StreamingConfig};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 12",
        "avg. starving time ratio (%) vs steady-state size, group sizes 1-4",
        scale,
    );
    println!(
        "{}",
        row([
            "size".into(),
            "K=1".into(),
            "K=2".into(),
            "K=3".into(),
            "K=4".into(),
        ])
    );
    let smallest = scale.sizes()[0];
    for size in scale.sizes() {
        let mut cells = vec![size.to_string()];
        for k in 1..=4usize {
            // --trace/--profile capture the smallest K=1 point (smallest
            // artifacts).
            let reports = replicate_streaming_traced(
                "fig12_k1_smallest",
                |seed| {
                    StreamingConfig::paper(
                        ChurnConfig::paper(AlgorithmKind::MinimumDepth, size).with_seed(seed),
                        k,
                    )
                },
                scale,
                scale.sidecars().when(k == 1 && size == smallest),
            );
            cells.push(fmt(mean_over(&reports, |r| {
                r.starving_ratio_percent.mean()
            })));
        }
        println!("{}", row(cells));
    }
}
