//! Figure 14: ROST+CER vs Minimum-depth+Single-source, recovery group
//! sizes 1–3, with 95% confidence intervals.
//!
//! Expected shape: ROST+CER reduces the starving ratio by roughly an
//! order of magnitude at each group size; ROST+CER at K=1 already beats
//! the baseline at K=2.

use rom_bench::{banner, fmt, replicate_streaming, replicate_streaming_traced, row, Scale};
use rom_engine::{AlgorithmKind, ChurnConfig, RecoveryStrategy, StreamingConfig};
use rom_stats::Summary;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 14",
        "ROST+CER vs MinDepth+SingleSource: starving ratio (%) with 95% CI",
        scale,
    );
    let size = scale.focus_size();
    println!("# focus size: {size} members");
    println!(
        "{}",
        row([
            "group_size".into(),
            "mindepth_single_mean".into(),
            "mindepth_single_ci95".into(),
            "rost_cer_mean".into(),
            "rost_cer_ci95".into(),
        ])
    );
    for k in 1..=3usize {
        let baseline = pooled(replicate_streaming(
            |seed| {
                let mut cfg = StreamingConfig::paper(
                    ChurnConfig::paper(AlgorithmKind::MinimumDepth, size).with_seed(seed),
                    k,
                );
                cfg.strategy = RecoveryStrategy::SingleSource;
                cfg
            },
            scale,
        ));
        // --trace/--profile capture the flagship configuration:
        // ROST+CER at K=1.
        let rost_cer = pooled(replicate_streaming_traced(
            "fig14_rost_cer_k1",
            |seed| {
                StreamingConfig::paper(
                    ChurnConfig::paper(AlgorithmKind::Rost, size).with_seed(seed),
                    k,
                )
            },
            scale,
            scale.sidecars().when(k == 1),
        ));
        println!(
            "{}",
            row([
                k.to_string(),
                fmt(baseline.mean()),
                fmt(baseline.ci95_half_width()),
                fmt(rost_cer.mean()),
                fmt(rost_cer.ci95_half_width()),
            ])
        );
    }
}

/// Pools the per-member ratio summaries of replicated runs.
fn pooled(reports: Vec<rom_engine::StreamingReport>) -> Summary {
    let mut pooled = Summary::new();
    for r in &reports {
        pooled.merge(&r.starving_ratio_percent);
    }
    pooled
}
