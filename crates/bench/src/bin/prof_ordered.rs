//! Profiling harness for the centralized relaxed-ordered baseline: one
//! relaxed-bw-ordered churn cell run with whatever sidecars are requested,
//! so CI's prof-smoke job can assert the per-depth eviction indices keep
//! `overlay.find_eviction` out of the top self-time spans. Before the
//! indices that span was the sweep's dominant cost — an O(M) layer scan
//! per placement. Not a paper figure; a perf-observability bin.

use rom_bench::{banner, churn_config, fmt, mean_over, replicate_churn_traced, row, Scale};
use rom_engine::AlgorithmKind;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Relaxed-BO profile",
        "one profiled relaxed-bw-ordered churn cell (perf observability)",
        scale,
    );
    println!(
        "{}",
        row(vec![
            "size".to_string(),
            "avg_population".to_string(),
            "disruptions".to_string(),
        ])
    );
    let size = scale.focus_size();
    let reports = replicate_churn_traced(
        "prof_relaxed_bw",
        |seed| churn_config(AlgorithmKind::RelaxedBandwidthOrdered, size, seed),
        scale,
        scale.sidecars(),
    );
    println!(
        "{}",
        row(vec![
            size.to_string(),
            fmt(mean_over(&reports, |r| r.population.mean())),
            fmt(mean_over(&reports, |r| r.disruptions_per_mean_lifetime())),
        ])
    );
}
