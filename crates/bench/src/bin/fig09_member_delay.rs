//! Figure 9: service delay of the typical member over time.
//!
//! Expected shape: under ROST and relaxed-TO the member's delay falls as
//! it ages (rising tree position); under the other algorithms it
//! fluctuates without converging.

use rom_bench::{banner, churn_config, fmt, row, Scale};
use rom_engine::{AlgorithmKind, ChurnSim, ObserverSpec};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 9",
        "service delay (ms) of a typical member over time (minutes)",
        scale,
    );
    let size = scale.focus_size();
    let horizon_min = scale.observer_minutes();
    println!("# focus size: {size} members, horizon: {horizon_min} minutes");
    println!("{}", row(["algorithm".into(), "minute:delay_ms...".into()]));
    for alg in AlgorithmKind::ALL {
        let mut cfg = churn_config(alg, size, 1);
        cfg.measure_secs = horizon_min * 60.0;
        cfg.observer = Some(ObserverSpec {
            bandwidth: 2.0,
            lifetime_secs: horizon_min * 60.0 + 600.0,
        });
        let report = ChurnSim::new(cfg).run();
        let trace = report.observer.expect("observer configured");
        let mut cells = vec![alg.name().to_string()];
        for &(minute, delay) in &trace.delay_samples {
            cells.push(format!("{}:{}", fmt(minute), fmt(delay)));
        }
        println!("{}", row(cells));
    }
}
