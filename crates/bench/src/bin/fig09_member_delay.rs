//! Figure 9: service delay of the typical member over time.
//!
//! Expected shape: under ROST and relaxed-TO the member's delay falls as
//! it ages (rising tree position); under the other algorithms it
//! fluctuates without converging.

use rom_bench::{banner, churn_config, fmt, row, CellOut, Scale};
use rom_engine::{AlgorithmKind, ChurnSim, ObserverSpec};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 9",
        "service delay (ms) of a typical member over time (minutes)",
        scale,
    );
    let size = scale.focus_size();
    let horizon_min = scale.observer_minutes();
    println!("# focus size: {size} members, horizon: {horizon_min} minutes");
    println!("{}", row(["algorithm".into(), "minute:delay_ms...".into()]));
    // One fixed-seed run per algorithm: five sweep points, one seed each.
    let out = scale.sweep().run(AlgorithmKind::ALL.len(), 1, |cell| {
        let mut cfg = churn_config(AlgorithmKind::ALL[cell.point], size, 1);
        cfg.measure_secs = horizon_min * 60.0;
        cfg.observer = Some(ObserverSpec {
            bandwidth: 2.0,
            lifetime_secs: horizon_min * 60.0 + 600.0,
        });
        CellOut::plain(ChurnSim::new(cfg).run())
    });
    for (alg, reports) in AlgorithmKind::ALL.into_iter().zip(out.reports) {
        let report = reports.into_iter().next().expect("one seed per point");
        let trace = report.observer.expect("observer configured");
        let mut cells = vec![alg.name().to_string()];
        for &(minute, delay) in &trace.delay_samples {
            cells.push(format!("{}:{}", fmt(minute), fmt(delay)));
        }
        println!("{}", row(cells));
    }
}
