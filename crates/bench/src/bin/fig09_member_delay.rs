//! Figure 9: service delay of the typical member over time.
//!
//! Expected shape: under ROST and relaxed-TO the member's delay falls as
//! it ages (rising tree position); under the other algorithms it
//! fluctuates without converging.

use rom_bench::{
    banner, churn_config, fmt, instrumented_churn_cell, row, write_sidecars, CellOut, Scale,
};
use rom_engine::{AlgorithmKind, ObserverSpec};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 9",
        "service delay (ms) of a typical member over time (minutes)",
        scale,
    );
    let size = scale.focus_size();
    let horizon_min = scale.observer_minutes();
    println!("# focus size: {size} members, horizon: {horizon_min} minutes");
    println!("{}", row(["algorithm".into(), "minute:delay_ms...".into()]));
    // One fixed-seed run per algorithm: five sweep points, one seed each.
    // --trace/--profile capture the ROST point.
    let out = scale.sweep().run(AlgorithmKind::ALL.len(), 1, |cell| {
        let alg = AlgorithmKind::ALL[cell.point];
        let mut cfg = churn_config(alg, size, 1);
        cfg.measure_secs = horizon_min * 60.0;
        cfg.observer = Some(ObserverSpec {
            bandwidth: 2.0,
            lifetime_secs: horizon_min * 60.0 + 600.0,
        });
        let (report, trace, profile) = instrumented_churn_cell(
            "fig09_rost_observer",
            cfg,
            cell.seed,
            scale.sidecars().when(alg == AlgorithmKind::Rost),
        );
        CellOut {
            report,
            warnings: Vec::new(),
            trace,
            profile,
        }
    });
    write_sidecars(&out, "fig09_rost_observer", scale.sidecars());
    for (alg, reports) in AlgorithmKind::ALL.into_iter().zip(out.reports) {
        let report = reports.into_iter().next().expect("one seed per point");
        let trace = report.observer.expect("observer configured");
        let mut cells = vec![alg.name().to_string()];
        for &(minute, delay) in &trace.delay_samples {
            cells.push(format!("{}:{}", fmt(minute), fmt(delay)));
        }
        println!("{}", row(cells));
    }
}
