//! Figure 11: effect of the ROST switching interval (four sub-plots:
//! disruptions, service delay, stretch, protocol overhead) at the focus
//! size.
//!
//! Expected shape: smaller intervals improve reliability, delay and
//! stretch at a modest overhead cost (≤ ~0.15 reconnections per lifetime
//! even at the smallest interval).

use rom_bench::{banner, churn_config, fmt, mean_over, replicate_churn_traced, row, Scale};
use rom_engine::AlgorithmKind;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 11",
        "effect of the ROST switching interval (four sub-plots)",
        scale,
    );
    let size = scale.focus_size();
    println!("# focus size: {size} members");
    println!(
        "{}",
        row([
            "interval_s".into(),
            "disruptions".into(),
            "service_delay_ms".into(),
            "stretch".into(),
            "reconnections".into(),
        ])
    );
    for interval in [480.0f64, 960.0, 1200.0, 1800.0] {
        // --trace/--profile capture the shortest-interval point (the
        // most switching activity).
        let reports = replicate_churn_traced(
            "fig11_interval_480",
            |seed| {
                let mut cfg = churn_config(AlgorithmKind::Rost, size, seed);
                cfg.rost = cfg.rost.with_switching_interval(interval);
                cfg
            },
            scale,
            scale.sidecars().when(interval.to_bits() == (480.0f64).to_bits()),
        );
        println!(
            "{}",
            row([
                fmt(interval),
                fmt(mean_over(&reports, |r| r.disruptions_per_mean_lifetime())),
                fmt(mean_over(&reports, |r| r.service_delay_ms.mean())),
                fmt(mean_over(&reports, |r| r.stretch.mean())),
                fmt(mean_over(&reports, |r| r.reconnections_per_lifetime.mean())),
            ])
        );
    }
}
