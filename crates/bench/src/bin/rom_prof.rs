//! # `rom-prof` — analyzer for profile and health sidecars
//!
//! Reads the artifacts the figure binaries emit under `--profile` /
//! `--trace` and turns them into actionable reports:
//!
//! ```text
//! rom_prof report <run.profile.json> [--top N]
//! rom_prof health <trace.health.jsonl>
//! rom_prof diff <old.profile.json> <new.profile.json> [--fail-above PCT]
//! rom_prof diff <run.profile.json> <BENCH_headline.json> [--fail-above PCT]
//! ```
//!
//! `report` prints the span hotspots: top-k spans by self time (the
//! targeting data for hot-path work) and the per-phase breakdown over
//! root spans (`engine.*` event handlers). `health` summarizes the
//! per-member protocol timelines: time-to-first-packet, starving-ratio
//! distribution (Fig 12 semantics), recovery latency and control
//! overhead. `diff` compares run throughput and per-span self time
//! between two profiles, or a profile against the committed
//! `BENCH_headline.json` perf baseline (recognized by its `phases`
//! array); it is report-only unless `--fail-above` is given, in which
//! case a throughput regression beyond the threshold exits non-zero.
//!
//! Everything printed from wall-clock numbers is explicitly
//! run-dependent; this binary is an analysis tool, not a deterministic
//! artifact producer.

use rom_bench::Json;

fn usage() -> ! {
    eprintln!(
        "usage: rom_prof report <run.profile.json> [--top N]\n       rom_prof health <trace.health.jsonl>\n       rom_prof diff <old.profile.json> <new.profile.json|BENCH_headline.json> [--fail-above PCT]"
    );
    std::process::exit(2)
}

fn read_file(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(body) => body,
        Err(err) => {
            eprintln!("error: cannot read {path}: {err}");
            std::process::exit(2)
        }
    }
}

/// Parses a `.profile.json` file. The bench harness writes one JSON
/// document per line (one per designated cell); the first is analyzed
/// and any extras are reported.
fn load_profile(path: &str) -> Json {
    let body = read_file(path);
    let mut docs = body.lines().filter(|l| !l.trim().is_empty());
    let Some(first) = docs.next() else {
        eprintln!("error: {path} is empty");
        std::process::exit(2)
    };
    let doc = match Json::parse(first) {
        Ok(doc) => doc,
        Err(err) => {
            eprintln!("error: {path}: {err}");
            std::process::exit(2)
        }
    };
    let extra = docs.count();
    if extra > 0 {
        println!("# note: {path} holds {extra} further profile(s); analyzing the first");
    }
    doc
}

/// One span row lifted out of the parsed document.
struct Span {
    path: String,
    count: u64,
    total_ns: u64,
    self_ns: u64,
}

fn spans_of(doc: &Json, path: &str) -> Vec<Span> {
    let Some(spans) = doc.get("spans").and_then(Json::as_arr) else {
        eprintln!("error: {path} has no spans array — not a rom-profile?");
        std::process::exit(2)
    };
    spans
        .iter()
        .map(|s| Span {
            path: s.str_field("path").unwrap_or_default().to_string(),
            count: s.u64_field("count").unwrap_or(0),
            total_ns: s.u64_field("total_ns").unwrap_or(0),
            self_ns: s.u64_field("self_ns").unwrap_or(0),
        })
        .collect()
}

fn events_per_sec(events: u64, wall_ns: u64) -> f64 {
    if wall_ns == 0 {
        0.0
    } else {
        events as f64 / (wall_ns as f64 / 1e9)
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn per_op_ns(span: &Span) -> f64 {
    if span.count == 0 {
        0.0
    } else {
        span.self_ns as f64 / span.count as f64
    }
}

fn report(path: &str, top: usize) {
    let doc = load_profile(path);
    let name = doc.str_field("name").unwrap_or("?");
    let seed = doc.u64_field("seed").unwrap_or(0);
    let events = doc.u64_field("events_processed").unwrap_or(0);
    let wall_ns = doc.u64_field("run_wall_ns").unwrap_or(0);
    println!("# rom-prof report — {name} (seed {seed})");
    println!(
        "# events: {events}, wall: {:.3} s, throughput: {:.0} events/s",
        wall_ns as f64 / 1e9,
        events_per_sec(events, wall_ns)
    );

    let mut spans = spans_of(&doc, path);
    let recorded_ns: u64 = spans.iter().map(|s| s.self_ns).sum();

    println!("\n## top {top} spans by self time");
    println!("rank,span,count,self_ms,self_%,ns_per_op,total_ms");
    spans.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.path.cmp(&b.path)));
    for (i, s) in spans.iter().take(top).enumerate() {
        let share = if recorded_ns == 0 {
            0.0
        } else {
            s.self_ns as f64 / recorded_ns as f64 * 100.0
        };
        println!(
            "{},{},{},{:.3},{:.1},{:.0},{:.3}",
            i + 1,
            s.path,
            s.count,
            ms(s.self_ns),
            share,
            per_op_ns(s),
            ms(s.total_ns),
        );
    }

    // Per-phase breakdown: root spans are the engine event handlers, so
    // their totals partition the instrumented run by event type.
    let mut roots: Vec<&Span> = spans.iter().filter(|s| !s.path.contains('/')).collect();
    roots.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.path.cmp(&b.path)));
    let root_total: u64 = roots.iter().map(|s| s.total_ns).sum();
    println!("\n## per-phase breakdown (root spans by total time)");
    println!("phase,count,total_ms,total_%");
    for s in roots {
        let share = if root_total == 0 {
            0.0
        } else {
            s.total_ns as f64 / root_total as f64 * 100.0
        };
        println!("{},{},{:.3},{:.1}", s.path, s.count, ms(s.total_ns), share);
    }
}

/// Percentile of an ascending-sorted slice (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn dist_row(label: &str, values: &mut Vec<f64>) {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mean = if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    };
    println!(
        "{label},{},{:.4},{:.4},{:.4},{:.4}",
        values.len(),
        mean,
        percentile(values, 50.0),
        percentile(values, 90.0),
        values.last().copied().unwrap_or(0.0),
    );
}

fn health(path: &str) {
    let body = read_file(path);
    let mut members = 0u64;
    let mut joined = 0u64;
    let mut departed = 0u64;
    let mut ttfp = Vec::new();
    let mut starving_ratio_pct = Vec::new();
    let mut recovery_latency = Vec::new();
    let mut parent_switches = 0u64;
    let mut episodes = 0u64;
    let mut control = 0u64;
    for (lineno, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = match Json::parse(line) {
            Ok(doc) => doc,
            Err(err) => {
                eprintln!("error: {path}:{}: {err}", lineno + 1);
                std::process::exit(2)
            }
        };
        members += 1;
        if let Some(t) = doc.f64_field("ttfp_secs") {
            ttfp.push(t);
        }
        let join = doc.f64_field("joined_secs");
        if join.is_some() {
            joined += 1;
        }
        let depart = doc.f64_field("departed_secs");
        if depart.is_some() {
            departed += 1;
        }
        // Starving ratio over the member's observed streaming lifetime —
        // the Fig 12 quantity; members that never departed in-window are
        // excluded rather than guessed at.
        if let (Some(j), Some(d)) = (join, depart) {
            if d > j {
                let starving = doc.f64_field("starving_secs").unwrap_or(0.0);
                starving_ratio_pct.push(starving / (d - j) * 100.0);
            }
        }
        if let Some(recovery) = doc.get("recovery") {
            let n = recovery.u64_field("episodes").unwrap_or(0);
            episodes += n;
            if n > 0 {
                let sum = recovery.f64_field("latency_sum_secs").unwrap_or(0.0);
                recovery_latency.push(sum / n as f64);
            }
        }
        parent_switches += doc.u64_field("parent_switches").unwrap_or(0);
        control += doc
            .get("control")
            .and_then(|c| c.u64_field("total"))
            .unwrap_or(0);
    }
    println!("# rom-prof health — {path}");
    println!(
        "# members: {members}, joined: {joined}, departed in-window: {departed}, recovery episodes: {episodes}"
    );
    println!(
        "# parent switches: {parent_switches} ({:.3}/member), control messages: {control} ({:.3}/member)",
        parent_switches as f64 / (members.max(1)) as f64,
        control as f64 / (members.max(1)) as f64,
    );
    println!("\nmetric,n,mean,p50,p90,max");
    dist_row("ttfp_secs", &mut ttfp);
    dist_row("starving_ratio_%", &mut starving_ratio_pct);
    dist_row("recovery_latency_secs", &mut recovery_latency);
}

/// Throughput of a parsed baseline: a rom-profile (events/run_wall_ns)
/// or a BENCH_headline.json (total.events_per_sec).
fn throughput_of(doc: &Json, path: &str) -> (f64, &'static str) {
    if doc.get("phases").is_some() {
        let per_sec = doc
            .get("total")
            .and_then(|t| t.f64_field("events_per_sec"))
            .unwrap_or_else(|| {
                eprintln!("error: {path} has phases but no total.events_per_sec");
                std::process::exit(2)
            });
        (per_sec, "headline")
    } else {
        let events = doc.u64_field("events_processed").unwrap_or(0);
        let wall_ns = doc.u64_field("run_wall_ns").unwrap_or(0);
        (events_per_sec(events, wall_ns), "profile")
    }
}

fn pct_delta(old: f64, new: f64) -> f64 {
    if old.abs().to_bits() == 0 {
        0.0
    } else {
        (new / old - 1.0) * 100.0
    }
}

fn diff(old_path: &str, new_path: &str, fail_above: Option<f64>) {
    let old = load_profile(old_path);
    let new = load_profile(new_path);
    let (old_tp, old_kind) = throughput_of(&old, old_path);
    let (new_tp, new_kind) = throughput_of(&new, new_path);
    println!("# rom-prof diff — {old_path} ({old_kind}) vs {new_path} ({new_kind})");
    println!(
        "throughput,events_per_sec,{old_tp:.0},{new_tp:.0},{:+.1}%",
        pct_delta(old_tp, new_tp)
    );

    // Span-level deltas only make sense between two profiles.
    if old_kind == "profile" && new_kind == "profile" {
        let old_spans = spans_of(&old, old_path);
        let new_spans = spans_of(&new, new_path);
        println!("\nspan,old_self_ms,new_self_ms,self_delta_%,old_count,new_count");
        for o in &old_spans {
            let Some(n) = new_spans.iter().find(|n| n.path == o.path) else {
                println!("{},{:.3},absent,,{},", o.path, ms(o.self_ns), o.count);
                continue;
            };
            println!(
                "{},{:.3},{:.3},{:+.1},{},{}",
                o.path,
                ms(o.self_ns),
                ms(n.self_ns),
                pct_delta(o.self_ns as f64, n.self_ns as f64),
                o.count,
                n.count,
            );
        }
        for n in &new_spans {
            if !old_spans.iter().any(|o| o.path == n.path) {
                println!("{},absent,{:.3},,,{}", n.path, ms(n.self_ns), n.count);
            }
        }
    }

    // A throughput *drop* beyond the threshold is the regression signal;
    // without --fail-above this stays report-only for CI triage.
    if let Some(threshold) = fail_above {
        let drop_pct = -pct_delta(old_tp, new_tp);
        if drop_pct > threshold {
            eprintln!(
                "error: throughput dropped {drop_pct:.1}% (> {threshold}% allowed): {old_tp:.0} -> {new_tp:.0} events/s"
            );
            std::process::exit(1)
        }
        println!("# throughput within {threshold}% of baseline");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("report") => {
            let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let mut top = 10usize;
            let mut rest = args[2..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--top" => {
                        top = rest
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n >= 1)
                            .unwrap_or_else(|| usage());
                    }
                    _ => usage(),
                }
            }
            report(path, top);
        }
        Some("health") => {
            let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            if args.len() > 2 {
                usage();
            }
            health(path);
        }
        Some("diff") => {
            let old_path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let new_path = args.get(2).map(String::as_str).unwrap_or_else(|| usage());
            let mut fail_above = None;
            let mut rest = args[3..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--fail-above" => {
                        fail_above = Some(
                            rest.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage()),
                        );
                    }
                    _ => usage(),
                }
            }
            diff(old_path, new_path, fail_above);
        }
        _ => usage(),
    }
}
