//! Ablation: how much of CER's benefit comes from *minimum-loss-
//! correlation* group selection (Algorithm 1) versus simply having
//! multiple recovery sources?
//!
//! The paper motivates MLC with the failure-correlation argument (§4.1)
//! but does not isolate it experimentally; this ablation swaps Algorithm 1
//! for uniform random selection at equal group sizes, keeping everything
//! else fixed.

use rom_bench::{banner, fmt, mean_over, replicate_streaming_traced, row, Scale};
use rom_engine::{AlgorithmKind, ChurnConfig, GroupSelection, StreamingConfig};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Ablation A1",
        "MLC (Algorithm 1) vs random recovery-group selection: starving ratio (%)",
        scale,
    );
    let size = scale.focus_size();
    println!("# focus size: {size} members, cooperative recovery");
    println!(
        "{}",
        row([
            "group_size".into(),
            "mlc_mean".into(),
            "random_mean".into(),
            "mlc_advantage_%".into(),
        ])
    );
    for k in 1..=4usize {
        // --trace/--profile capture the MLC K=1 cell.
        let run = |selection: GroupSelection| {
            replicate_streaming_traced(
                "ablation_a1_mlc_k1",
                |seed| {
                    let mut cfg = StreamingConfig::paper(
                        ChurnConfig::paper(AlgorithmKind::MinimumDepth, size).with_seed(seed),
                        k,
                    );
                    cfg.selection = selection;
                    cfg
                },
                scale,
                scale
                    .sidecars()
                    .when(k == 1 && selection == GroupSelection::MinimumLossCorrelation),
            )
        };
        let mlc = mean_over(&run(GroupSelection::MinimumLossCorrelation), |r| {
            r.starving_ratio_percent.mean()
        });
        let random = mean_over(&run(GroupSelection::Random), |r| {
            r.starving_ratio_percent.mean()
        });
        let advantage = if random > 0.0 {
            (1.0 - mlc / random) * 100.0
        } else {
            0.0
        };
        println!(
            "{}",
            row([k.to_string(), fmt(mlc), fmt(random), fmt(advantage)])
        );
    }
}
