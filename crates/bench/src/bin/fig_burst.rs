//! # `fig_burst` — bursty loss vs the uniform baseline, matched average
//!
//! Not a paper figure: a pathology study. Sweeps the Gilbert–Elliott
//! burst factor β ∈ {1, 2, 4, 8} at a **matched average loss rate** —
//! β = 1 *is* the uniform-loss baseline, bit for bit (the degenerate
//! equivalence pinned by `pathology_properties`) — and reports how loss
//! clustering alone moves the starving-time ratio and the CER repair
//! success rate. Every cell runs with the full invariant registry armed;
//! any violation exits non-zero.
//!
//! ```text
//! fig_burst --seed <n> [--paper] [--jobs N] [--trace PATH] [--profile PATH]
//! ```
//!
//! With `--trace`, the grid's merged JSONL trace lands at `PATH` with
//! the aggregate manifest at `PATH.manifest.json` and the metrics
//! snapshots at `PATH.metrics.json` (one object per cell, grid order).
//! Cells merge in grid order regardless of `--jobs`, so every artifact
//! — including the CSV on stdout — is byte-identical at any worker
//! count and across repeated runs of the same seed.

use rom_bench::{default_jobs, run_manifest, CellOut, CellTrace, Sweep};
use rom_chaos::{ChaosAction, Injection, InvariantRegistry, Scenario};
use rom_engine::{AlgorithmKind, ChurnConfig, StreamingConfig, StreamingSim};
use rom_obs::{fnv1a, HealthSink, JsonlSink, Obs, Prof, SharedBuffer, Tracer};
use std::time::Instant;

/// The burst-factor grid; β = 1 is the uniform-loss control.
const BETAS: [f64; 4] = [1.0, 2.0, 4.0, 8.0];
/// The matched average loss rate every β runs at.
const AVG_LOSS: f64 = 0.1;
/// Fraction of attached members whose access links turn bursty.
const FRACTION: f64 = 0.4;

struct Args {
    seed: u64,
    paper: bool,
    jobs: usize,
    trace: Option<String>,
    profile: Option<String>,
}

fn usage() -> ! {
    eprintln!("usage: fig_burst [--seed N] [--paper] [--jobs N] [--trace PATH] [--profile PATH]");
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut parsed = Args {
        seed: 42,
        paper: false,
        jobs: default_jobs(),
        trace: None,
        profile: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                parsed.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--paper" => parsed.paper = true,
            "--jobs" => {
                parsed.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--trace" => parsed.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--profile" => parsed.profile = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    parsed
}

/// One bursty-loss injection covering the middle of the measurement
/// window, at the matched average rate with the given burst factor.
fn burst_scenario(start_secs: f64, span_secs: f64, burst_factor: f64) -> Scenario {
    Scenario {
        name: "fig-burst",
        injections: vec![Injection {
            at_secs: start_secs + 0.1 * span_secs,
            action: ChaosAction::BurstyLoss {
                fraction: FRACTION,
                avg_loss: AVG_LOSS,
                burst_factor,
                duration_secs: 0.6 * span_secs,
            },
        }],
    }
}

fn main() {
    let args = parse_args();
    let (size, start_secs, span_secs) = if args.paper {
        (2_000, 2_400.0, 2_400.0)
    } else {
        (250, 450.0, 600.0)
    };

    let name = "fig_burst".to_string();
    let out = Sweep::with_jobs(args.jobs).run(BETAS.len(), 1, |cell| {
        let beta = BETAS[cell.point];
        let mut churn = if args.paper {
            ChurnConfig::paper(AlgorithmKind::Rost, size)
        } else {
            ChurnConfig::quick(AlgorithmKind::Rost, size)
        }
        .with_seed(args.seed);
        churn.chaos = Some(burst_scenario(start_secs, span_secs, beta));
        let cfg = StreamingConfig::paper(churn, 2);
        let config_digest = fnv1a(format!("{cfg:?}").as_bytes());

        let registry = InvariantRegistry::with_all();
        let (obs, pipe) = if args.trace.is_some() {
            let buffer = SharedBuffer::new();
            let (sink, health) = HealthSink::new(JsonlSink::new(buffer.clone()));
            let obs = Obs::new(Tracer::to_sink(Box::new(sink)));
            (obs, Some((buffer, health)))
        } else {
            (Obs::metrics_only(), None)
        };
        let prof = if args.profile.is_some() {
            Prof::enabled()
        } else {
            Prof::disabled()
        };
        let started = Instant::now();
        let (report, registry, obs) =
            StreamingSim::new(cfg).run_checked(registry, obs.with_prof(prof));
        let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let trace = pipe.map(|(buffer, health)| CellTrace {
            jsonl: buffer.contents(),
            metrics_json: obs.snapshot().to_json(),
            manifest: run_manifest(
                "fig_burst",
                args.seed,
                config_digest,
                &obs,
                report.events_processed(),
                report.outcome(),
            ),
            health: Some(health.to_jsonl()),
        });
        let profile = obs
            .prof()
            .report()
            .map(|r| r.to_json("fig_burst", args.seed, report.events_processed(), wall_ns));
        CellOut {
            report: (report, registry),
            warnings: Vec::new(),
            trace,
            profile,
        }
    });
    // Every cell ran the user's --seed; the grid point already encodes β.
    let mut out = out;
    for (id, _) in &mut out.traces {
        id.seed = args.seed;
    }
    if let Some(path) = args.trace.as_deref() {
        out.write_trace(path, &name);
    }
    if let Some(path) = args.profile.as_deref() {
        out.write_profile(path);
    }

    println!(
        "# fig_burst — GE burst factor sweep at matched {:.0}% average loss \
         (fraction {FRACTION}, seed {}, β=1 is the uniform baseline)",
        AVG_LOSS * 100.0,
        args.seed
    );
    println!(
        "model,burst_factor,seed,outcome,starving_ratio_mean_pct,outages,\
         repaired_on_time,starved,repair_success_pct,violations"
    );
    let mut tripped = Vec::new();
    for (point, mut reports) in out.reports.into_iter().enumerate() {
        let (report, registry) = reports.remove(0);
        let beta = BETAS[point];
        let model = if point == 0 { "uniform" } else { "bursty" };
        let repaired = report.packets_repaired_on_time;
        let starved = report.packets_starved;
        let attempted = repaired + starved;
        let success_pct = if attempted == 0 {
            100.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                repaired as f64 / attempted as f64 * 100.0
            }
        };
        println!(
            "{model},{beta},{},{:?},{:.4},{},{repaired},{starved},{success_pct:.2},{}",
            args.seed,
            report.outcome(),
            report.starving_ratio_percent.mean(),
            report.outages,
            registry.violations().len()
        );
        if !registry.is_clean() {
            tripped.push((beta, registry));
        }
    }

    if !tripped.is_empty() {
        for (beta, registry) in &tripped {
            for v in registry.violations() {
                let subject = v
                    .subject
                    .map_or(String::new(), |id| format!(" member={}", id.0));
                eprintln!(
                    "violation: β={beta} t={:.3}s invariant={}{subject}: {}",
                    v.time, v.invariant, v.detail
                );
            }
        }
        std::process::exit(1)
    }
}
