//! Ablation: how much of the disruption problem is *abruptness*?
//!
//! The paper evaluates "the extreme case in which every node departs
//! abruptly without notification" (§6). This ablation sweeps the graceful
//! fraction to show how cooperative departures shrink the problem ROST
//! solves — and that ROST still wins on whatever abrupt remainder exists.

use rom_bench::{banner, churn_config, fmt, mean_over, replicate_churn_traced, row, Scale};
use rom_engine::AlgorithmKind;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Ablation A3",
        "disruptions per mean lifetime vs graceful-departure fraction",
        scale,
    );
    let size = scale.focus_size();
    println!("# focus size: {size} members");
    println!(
        "{}",
        row(["graceful_%".into(), "min-depth".into(), "rost".into()])
    );
    for graceful in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
        // --trace/--profile capture the all-abrupt ROST point (the
        // paper's extreme case).
        let run = |alg: AlgorithmKind| {
            replicate_churn_traced(
                "ablation_a3_abrupt_rost",
                |seed| {
                    let mut cfg = churn_config(alg, size, seed);
                    cfg.graceful_fraction = graceful;
                    cfg
                },
                scale,
                scale
                    .sidecars()
                    .when(graceful.to_bits() == (0.0f64).to_bits() && alg == AlgorithmKind::Rost),
            )
        };
        println!(
            "{}",
            row([
                fmt(graceful * 100.0),
                fmt(mean_over(&run(AlgorithmKind::MinimumDepth), |r| {
                    r.disruptions_per_mean_lifetime()
                })),
                fmt(mean_over(&run(AlgorithmKind::Rost), |r| {
                    r.disruptions_per_mean_lifetime()
                })),
            ])
        );
    }
}
