//! The paper's abstract in one table: runs all five algorithms at one
//! size and prints the quantitative claims §1 makes for ROST —
//!
//! 1. "reduces the average number of streaming disruptions per member by
//!    36–57% compared to a centralized depth-optimal approach";
//! 2. "achieves the smallest end-to-end service delay (or tree depth)
//!    among three representative distributed algorithms, and only incurs
//!    a small increase in service delay of 10–15% compared to the
//!    centralized depth-optimal approach";
//! 3. "introduces a very low protocol overhead".
//!
//! Each algorithm's replicate sweep is one timed *phase*; the machine-
//! readable perf baseline — wall time per phase, events/second, and the
//! exact peak event-queue depth (`ChurnReport::queue_high_water`) — is
//! written to `BENCH_headline.json` in the working directory. Timing
//! never touches stdout, so the printed table stays byte-identical
//! across runs and `--jobs` values.

use rom_bench::{
    banner, calibration_spin_ns, churn_config, fmt, instrumented_churn_cell, mean_over, row,
    truncation_warning, write_sidecars, CellOut, Scale,
};
use rom_engine::{AlgorithmKind, ChurnReport};
use std::time::Instant;

/// The perf-baseline record of one algorithm's replicate sweep.
struct Phase {
    name: &'static str,
    wall_secs: f64,
    events: u64,
    peak_queue: f64,
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "Headline claims",
        "the §1 quantitative claims, measured",
        scale,
    );
    let size = scale.focus_size();
    println!("# focus size: {size} members\n");

    // One timed phase per algorithm. The exact queue peak rides on every
    // report; --trace/--profile capture the seed-1 ROST run (the
    // algorithm the claims are about).
    let run = |alg: AlgorithmKind| -> (Vec<ChurnReport>, Phase) {
        let sidecars = scale.sidecars().when(alg == AlgorithmKind::Rost);
        let started = Instant::now();
        let out = scale.sweep().run(1, scale.seeds, |cell| {
            let cfg = churn_config(alg, size, cell.seed);
            let (report, trace, profile) = instrumented_churn_cell(
                "headline_claims_rost",
                cfg,
                cell.seed,
                sidecars.when(cell.seed == 1),
            );
            CellOut {
                warnings: truncation_warning("headline_claims", cell.seed, report.outcome)
                    .into_iter()
                    .collect(),
                report,
                trace,
                profile,
            }
        });
        let wall_secs = started.elapsed().as_secs_f64();
        write_sidecars(&out, "headline_claims_rost", sidecars);
        let reports: Vec<ChurnReport> = out.into_single_point();
        let events = reports.iter().map(|r| r.events_processed).sum();
        let peak_queue = reports
            .iter()
            .map(|r| r.queue_high_water as f64)
            .fold(0.0, f64::max);
        let phase = Phase {
            name: alg.name(),
            wall_secs,
            events,
            peak_queue,
        };
        (reports, phase)
    };
    let metrics = |reports: &[ChurnReport]| {
        (
            mean_over(reports, |r| r.disruptions_per_mean_lifetime()),
            mean_over(reports, |r| r.service_delay_ms.mean()),
            mean_over(reports, |r| r.depth.mean()),
            mean_over(reports, |r| r.reconnections_per_lifetime.mean()),
        )
    };

    println!(
        "{}",
        row([
            "algorithm".into(),
            "disruptions".into(),
            "delay_ms".into(),
            "depth".into(),
            "overhead".into(),
        ])
    );
    let mut by_alg = Vec::new();
    let mut phases = Vec::new();
    for alg in AlgorithmKind::ALL {
        let (reports, phase) = run(alg);
        let m = metrics(&reports);
        println!(
            "{}",
            row([
                alg.name().to_string(),
                fmt(m.0),
                fmt(m.1),
                fmt(m.2),
                fmt(m.3),
            ])
        );
        by_alg.push((alg, m));
        phases.push(phase);
    }

    let get = |alg: AlgorithmKind| by_alg.iter().find(|(a, _)| *a == alg).unwrap().1;
    let rost = get(AlgorithmKind::Rost);
    let bo = get(AlgorithmKind::RelaxedBandwidthOrdered);
    let to = get(AlgorithmKind::RelaxedTimeOrdered);
    let md = get(AlgorithmKind::MinimumDepth);
    let lf = get(AlgorithmKind::LongestFirst);

    println!("\n# claim 1 — disruption reduction (paper: 36-57% vs relaxed BO):");
    println!("claim1,rost_vs_bo_%,{}", fmt((1.0 - rost.0 / bo.0) * 100.0));
    println!("claim1,rost_vs_to_%,{}", fmt((1.0 - rost.0 / to.0) * 100.0));

    println!("# claim 2 — delay (paper: best distributed; +10-15% vs relaxed BO):");
    println!(
        "claim2,rost_best_distributed,{}",
        rost.1 < md.1 && rost.1 < lf.1
    );
    println!(
        "claim2,rost_delay_increase_vs_bo_%,{}",
        fmt((rost.1 / bo.1 - 1.0) * 100.0)
    );

    println!("# claim 3 — overhead (paper: far below one reconnection/lifetime):");
    println!("claim3,rost_overhead,{}", fmt(rost.3));
    println!("claim3,far_below_one,{}", rost.3 < 0.5);

    write_baseline(&phases, scale, calibration_spin_ns());
    println!("\n# perf baseline written to BENCH_headline.json");
}

/// Writes the machine-readable perf baseline. Wall-clock timing is
/// inherently run-dependent, so it lives only in this file — never on
/// stdout.
fn write_baseline(phases: &[Phase], scale: Scale, spin_ns: f64) {
    let per_sec = |events: u64, wall: f64| {
        if wall > 0.0 {
            events as f64 / wall
        } else {
            0.0
        }
    };
    let mut json = String::with_capacity(1024);
    json.push_str("{\"name\":\"headline_claims\"");
    json.push_str(&format!(
        ",\"paper\":{},\"seeds\":{},\"jobs\":{},\"calibration_spin_ns\":{},\"phases\":[",
        scale.paper, scale.seeds, scale.jobs, spin_ns
    ));
    let mut total_wall = 0.0;
    let mut total_events = 0u64;
    for (i, p) in phases.iter().enumerate() {
        total_wall += p.wall_secs;
        total_events += p.events;
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"phase\":{:?},\"wall_secs\":{},\"events\":{},\"events_per_sec\":{},\"peak_queue_high_water\":{}}}",
            p.name,
            p.wall_secs,
            p.events,
            per_sec(p.events, p.wall_secs),
            p.peak_queue,
        ));
    }
    json.push_str(&format!(
        "],\"total\":{{\"wall_secs\":{},\"events\":{},\"events_per_sec\":{}}}}}\n",
        total_wall,
        total_events,
        per_sec(total_events, total_wall),
    ));
    if let Err(err) = std::fs::write("BENCH_headline.json", json) {
        eprintln!("error: cannot write BENCH_headline.json: {err}");
        std::process::exit(2)
    }
}
