//! The paper's abstract in one table: runs all five algorithms at one
//! size and prints the quantitative claims §1 makes for ROST —
//!
//! 1. "reduces the average number of streaming disruptions per member by
//!    36–57% compared to a centralized depth-optimal approach";
//! 2. "achieves the smallest end-to-end service delay (or tree depth)
//!    among three representative distributed algorithms, and only incurs
//!    a small increase in service delay of 10–15% compared to the
//!    centralized depth-optimal approach";
//! 3. "introduces a very low protocol overhead".

use rom_bench::{banner, churn_config, fmt, mean_over, replicate_churn_traced, row, Scale};
use rom_engine::{AlgorithmKind, ChurnReport};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Headline claims",
        "the §1 quantitative claims, measured",
        scale,
    );
    let size = scale.focus_size();
    println!("# focus size: {size} members\n");

    // --trace captures the ROST run (the algorithm the claims are about).
    let run = |alg: AlgorithmKind| {
        replicate_churn_traced(
            "headline_claims_rost",
            |s| churn_config(alg, size, s),
            scale.seeds,
            scale.trace.filter(|_| alg == AlgorithmKind::Rost),
        )
    };
    let metrics = |reports: &[ChurnReport]| {
        (
            mean_over(reports, |r| r.disruptions_per_mean_lifetime()),
            mean_over(reports, |r| r.service_delay_ms.mean()),
            mean_over(reports, |r| r.depth.mean()),
            mean_over(reports, |r| r.reconnections_per_lifetime.mean()),
        )
    };

    println!(
        "{}",
        row([
            "algorithm".into(),
            "disruptions".into(),
            "delay_ms".into(),
            "depth".into(),
            "overhead".into(),
        ])
    );
    let mut by_alg = Vec::new();
    for alg in AlgorithmKind::ALL {
        let m = metrics(&run(alg));
        println!(
            "{}",
            row([
                alg.name().to_string(),
                fmt(m.0),
                fmt(m.1),
                fmt(m.2),
                fmt(m.3),
            ])
        );
        by_alg.push((alg, m));
    }

    let get = |alg: AlgorithmKind| by_alg.iter().find(|(a, _)| *a == alg).unwrap().1;
    let rost = get(AlgorithmKind::Rost);
    let bo = get(AlgorithmKind::RelaxedBandwidthOrdered);
    let to = get(AlgorithmKind::RelaxedTimeOrdered);
    let md = get(AlgorithmKind::MinimumDepth);
    let lf = get(AlgorithmKind::LongestFirst);

    println!("\n# claim 1 — disruption reduction (paper: 36-57% vs relaxed BO):");
    println!("claim1,rost_vs_bo_%,{}", fmt((1.0 - rost.0 / bo.0) * 100.0));
    println!("claim1,rost_vs_to_%,{}", fmt((1.0 - rost.0 / to.0) * 100.0));

    println!("# claim 2 — delay (paper: best distributed; +10-15% vs relaxed BO):");
    println!(
        "claim2,rost_best_distributed,{}",
        rost.1 < md.1 && rost.1 < lf.1
    );
    println!(
        "claim2,rost_delay_increase_vs_bo_%,{}",
        fmt((rost.1 / bo.1 - 1.0) * 100.0)
    );

    println!("# claim 3 — overhead (paper: far below one reconnection/lifetime):");
    println!("claim3,rost_overhead,{}", fmt(rost.3));
    println!("claim3,far_below_one,{}", rost.3 < 0.5);
}
