//! Figure 8: average network stretch (overlay delay / unicast delay) vs
//! network size. Same expected ordering as Figure 7.

use rom_bench::{banner, churn_config, fmt, mean_over, replicate_churn_traced, row, Scale};
use rom_engine::AlgorithmKind;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 8",
        "avg. network stretch vs steady-state size",
        scale,
    );
    let mut header = vec!["size".to_string()];
    header.extend(AlgorithmKind::ALL.iter().map(|a| a.name().to_string()));
    println!("{}", row(header));
    let smallest = scale.sizes()[0];
    for size in scale.sizes() {
        let mut cells = vec![size.to_string()];
        for alg in AlgorithmKind::ALL {
            // --trace/--profile capture the smallest ROST point.
            let reports = replicate_churn_traced(
                "fig08_rost_smallest",
                |seed| churn_config(alg, size, seed),
                scale,
                scale
                    .sidecars()
                    .when(alg == AlgorithmKind::Rost && size == smallest),
            );
            cells.push(fmt(mean_over(&reports, |r| r.stretch.mean())));
        }
        println!("{}", row(cells));
    }
}
