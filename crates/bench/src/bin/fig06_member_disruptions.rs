//! Figure 6: accumulative number of disruptions of a typical member
//! (moderate bandwidth, long lifetime) over time, per algorithm.
//!
//! Expected shape: under ROST the curve flattens as the member ages and
//! climbs the tree; under the time-blind algorithms it keeps a roughly
//! constant slope.

use rom_bench::{
    banner, churn_config, fmt, instrumented_churn_cell, row, write_sidecars, CellOut, Scale,
};
use rom_engine::{AlgorithmKind, ObserverSpec};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 6",
        "accumulative disruptions of a typical member over time (minutes)",
        scale,
    );
    let size = scale.focus_size();
    let horizon_min = scale.observer_minutes();
    println!("# focus size: {size} members, horizon: {horizon_min} minutes");
    println!(
        "{}",
        row(["algorithm".into(), "minute:cumulative...".into()])
    );
    // The observer trace is one fixed-seed run per algorithm, so the
    // sweep parallelizes over the algorithm axis: five points, one seed.
    // --trace/--profile capture the ROST point.
    let out = scale.sweep().run(AlgorithmKind::ALL.len(), 1, |cell| {
        let alg = AlgorithmKind::ALL[cell.point];
        let mut cfg = churn_config(alg, size, 1);
        cfg.measure_secs = horizon_min * 60.0;
        cfg.observer = Some(ObserverSpec {
            bandwidth: 2.0,
            lifetime_secs: horizon_min * 60.0 + 600.0,
        });
        let (report, trace, profile) = instrumented_churn_cell(
            "fig06_rost_observer",
            cfg,
            cell.seed,
            scale.sidecars().when(alg == AlgorithmKind::Rost),
        );
        CellOut {
            report,
            warnings: Vec::new(),
            trace,
            profile,
        }
    });
    write_sidecars(&out, "fig06_rost_observer", scale.sidecars());
    for (alg, reports) in AlgorithmKind::ALL.into_iter().zip(out.reports) {
        let report = reports.into_iter().next().expect("one seed per point");
        let trace = report.observer.expect("observer configured");
        let mut cells = vec![alg.name().to_string()];
        for (i, minute) in trace.disruption_minutes.iter().enumerate() {
            cells.push(format!("{}:{}", fmt(*minute), i + 1));
        }
        if trace.disruption_minutes.is_empty() {
            cells.push("none".to_string());
        }
        println!("{}", row(cells));
    }
    println!("# each entry is minute:cumulative-count at a disruption instant");
}
