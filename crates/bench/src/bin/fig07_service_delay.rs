//! Figure 7: average end-to-end service delay vs network size.
//!
//! Expected shape: longest-first worst by far (tall tree); ROST the best
//! of the three distributed algorithms; centralized relaxed-BO the global
//! best with ROST within tens of percent.

use rom_bench::{banner, churn_config, fmt, mean_over, replicate_churn_traced, row, Scale};
use rom_engine::AlgorithmKind;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 7",
        "avg. service delay (ms) vs steady-state size",
        scale,
    );
    let mut header = vec!["size".to_string()];
    header.extend(AlgorithmKind::ALL.iter().map(|a| a.name().to_string()));
    println!("{}", row(header));
    let smallest = scale.sizes()[0];
    for size in scale.sizes() {
        let mut cells = vec![size.to_string()];
        for alg in AlgorithmKind::ALL {
            // --trace/--profile capture the smallest ROST point.
            let reports = replicate_churn_traced(
                "fig07_rost_smallest",
                |seed| churn_config(alg, size, seed),
                scale,
                scale
                    .sidecars()
                    .when(alg == AlgorithmKind::Rost && size == smallest),
            );
            cells.push(fmt(mean_over(&reports, |r| r.service_delay_ms.mean())));
        }
        println!("{}", row(cells));
    }
}
