//! Figure 5: CDF of per-node disruption counts at the focus size (8000
//! members at paper scale).
//!
//! Expected shape: ROST's CDF dominates (shifted left — most members see
//! few disruptions); min-depth/longest-first have long right tails.

use rom_bench::{banner, churn_config, fmt, replicate_churn_traced, row, Scale};
use rom_engine::AlgorithmKind;
use rom_stats::Ecdf;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 5",
        "CDF of per-node disruption counts (power-of-two grid)",
        scale,
    );
    let size = scale.focus_size();
    println!("# focus size: {size} members");

    // One pooled ECDF per algorithm across all seeds; --trace/--profile
    // capture the ROST run at the focus size.
    let cdfs: Vec<(AlgorithmKind, Ecdf)> = AlgorithmKind::ALL
        .into_iter()
        .map(|alg| {
            let reports = replicate_churn_traced(
                "fig05_rost_focus",
                |seed| churn_config(alg, size, seed),
                scale,
                scale.sidecars().when(alg == AlgorithmKind::Rost),
            );
            let samples = reports
                .iter()
                .flat_map(|r| r.disruption_counts.iter().copied());
            (alg, Ecdf::from_samples(samples))
        })
        .collect();

    let mut header = vec!["disruptions".to_string()];
    header.extend(cdfs.iter().map(|(a, _)| a.name().to_string()));
    println!("{}", row(header));
    for x in Ecdf::power_of_two_grid(128.0) {
        let mut cells = vec![fmt(x)];
        for (_, cdf) in &cdfs {
            cells.push(fmt(cdf.fraction_at_or_below(x) * 100.0));
        }
        println!("{}", row(cells));
    }
    println!("# values are cumulative percentages of nodes");
}
