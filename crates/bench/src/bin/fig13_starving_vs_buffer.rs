//! Figure 13: average starving-time ratio vs playback buffer size
//! (5–30 s) for recovery group sizes 1–3 at the focus size.
//!
//! Expected shape: larger buffers help, but adding one recovery node is
//! worth tens of seconds of buffer (K=2 at 5 s ≈ K=1 at ~27 s).

use rom_bench::{banner, fmt, mean_over, replicate_streaming_traced, row, Scale};
use rom_engine::{AlgorithmKind, ChurnConfig, StreamingConfig};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 13",
        "avg. starving time ratio (%) vs buffer size (s), group sizes 1-3",
        scale,
    );
    let size = scale.focus_size();
    println!("# focus size: {size} members");
    println!(
        "{}",
        row(["buffer_s".into(), "K=1".into(), "K=2".into(), "K=3".into()])
    );
    for buffer in [5.0f64, 10.0, 15.0, 20.0, 25.0, 30.0] {
        let mut cells = vec![fmt(buffer)];
        for k in 1..=3usize {
            // --trace/--profile capture the hardest cell: the smallest
            // buffer with a single recovery source.
            let reports = replicate_streaming_traced(
                "fig13_buffer5_k1",
                |seed| {
                    let mut cfg = StreamingConfig::paper(
                        ChurnConfig::paper(AlgorithmKind::MinimumDepth, size).with_seed(seed),
                        k,
                    );
                    cfg.buffer_secs = buffer;
                    cfg
                },
                scale,
                scale.sidecars().when(buffer.to_bits() == (5.0f64).to_bits() && k == 1),
            );
            cells.push(fmt(mean_over(&reports, |r| {
                r.starving_ratio_percent.mean()
            })));
        }
        println!("{}", row(cells));
    }
}
