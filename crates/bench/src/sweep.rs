//! The parallel deterministic sweep engine.
//!
//! Every figure binary replicates its data points over independent seeds
//! — an embarrassingly parallel axis that used to run serially. [`Sweep`]
//! fans a `(point, seed)` grid out over scoped worker threads
//! (`std::thread::scope`, no dependencies) while keeping every output
//! byte-identical to the serial run:
//!
//! - **Seed-ordered slots.** Workers pull cells from a shared atomic
//!   cursor and may finish in any order, but each result lands in the
//!   slot preassigned to its grid index. Everything the caller can
//!   observe — report vectors, deferred warnings, merged trace sidecars
//!   — is drained from the slots in `(point, seed)` order after the
//!   join, so completion order cannot leak into output.
//! - **Per-run telemetry.** A traced cell gets its own private
//!   [`Tracer`](rom_obs::Tracer)/[`MetricsRegistry`](rom_obs::MetricsRegistry)
//!   writing into an in-memory buffer; no two runs ever share a sink, so
//!   no cross-thread interleaving can occur. The per-cell artifacts are
//!   merged after the join, sorted by `(point, seed)`, into one JSONL
//!   trace, one aggregate [`SweepManifest`] and one metrics sidecar.
//! - **Deferred warnings.** Runs report anomalies (e.g. truncation) as
//!   strings in their [`CellOut`]; the engine prints them to stderr in
//!   grid order after the join instead of letting worker threads race on
//!   stderr.
//!
//! `jobs = 1` executes the cells inline on the calling thread — today's
//! serial path — and any other worker count produces the same bytes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use rom_obs::{RunManifest, SweepManifest};

/// Grid coordinates of one sweep cell: configuration point × seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellId {
    /// Index of the configuration point (order of the caller's grid).
    pub point: usize,
    /// The replicate seed, `1..=seeds`.
    pub seed: u64,
}

/// Trace artifacts captured by one traced cell, in memory.
#[derive(Debug, Clone)]
pub struct CellTrace {
    /// The run's JSONL trace bytes.
    pub jsonl: Vec<u8>,
    /// The run's provenance manifest.
    pub manifest: RunManifest,
    /// The run's metrics snapshot, serialized.
    pub metrics_json: String,
    /// Per-member health timeline records (one JSON object per member,
    /// id-ascending), when the cell's trace pipeline was health-teed.
    pub health: Option<String>,
}

/// Everything a worker hands back for one cell.
#[derive(Debug)]
pub struct CellOut<R> {
    /// The run's report.
    pub report: R,
    /// Warnings to print (in grid order) after the join.
    pub warnings: Vec<String>,
    /// Trace artifacts, when this cell was traced.
    pub trace: Option<CellTrace>,
    /// The serialized span-profile sidecar body, when this cell was
    /// profiled. Wall-clock numbers live only here — never in `trace`.
    pub profile: Option<String>,
}

impl<R> CellOut<R> {
    /// A cell with no warnings, no trace and no profile.
    #[must_use]
    pub fn plain(report: R) -> Self {
        CellOut {
            report,
            warnings: Vec::new(),
            trace: None,
            profile: None,
        }
    }
}

/// The deterministic parallel sweep engine. See the module docs for the
/// determinism argument.
#[derive(Debug, Clone, Copy)]
pub struct Sweep {
    jobs: usize,
}

impl Sweep {
    /// An engine running at most `jobs` cells concurrently (clamped to at
    /// least 1). `jobs = 1` runs inline on the calling thread.
    #[must_use]
    pub fn with_jobs(jobs: usize) -> Self {
        Sweep { jobs: jobs.max(1) }
    }

    /// The configured worker count.
    #[must_use]
    pub fn jobs(self) -> usize {
        self.jobs
    }

    /// Runs the full `points × seeds` grid through `run_cell` and
    /// collects the results into `(point, seed)`-ordered slots.
    ///
    /// `run_cell` is called exactly once per cell with seeds `1..=seeds`,
    /// from worker threads when `jobs > 1`. It must derive everything
    /// from the [`CellId`] alone (the configs it builds are seeded, so
    /// this holds by construction). Deferred warnings are printed to
    /// stderr, in grid order, before this returns.
    pub fn run<R: Send>(
        self,
        points: usize,
        seeds: u64,
        run_cell: impl Fn(CellId) -> CellOut<R> + Sync,
    ) -> SweepOutput<R> {
        let seeds_per_point = usize::try_from(seeds).unwrap_or(usize::MAX);
        let total = points.saturating_mul(seeds_per_point);
        let cell_of = |index: usize| CellId {
            point: index / seeds_per_point.max(1),
            seed: (index % seeds_per_point.max(1)) as u64 + 1,
        };

        let mut slots: Vec<Option<CellOut<R>>> = (0..total).map(|_| None).collect();
        let workers = self.jobs.min(total);
        if workers <= 1 {
            // The serial path: cells run inline, in grid order.
            for (index, slot) in slots.iter_mut().enumerate() {
                *slot = Some(run_cell(cell_of(index)));
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, CellOut<R>)>();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let cursor = &cursor;
                    let run_cell = &run_cell;
                    scope.spawn(move || loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= total {
                            break;
                        }
                        if tx.send((index, run_cell(cell_of(index)))).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
            });
            // The scope joined every worker (propagating any panic), so
            // the channel holds exactly one result per cell.
            for (index, out) in rx.try_iter() {
                slots[index] = Some(out);
            }
        }

        // Drain in grid order: completion order is now unobservable.
        let mut reports: Vec<Vec<R>> = (0..points).map(|_| Vec::new()).collect();
        let mut traces = Vec::new();
        let mut profiles = Vec::new();
        for (index, slot) in slots.into_iter().enumerate() {
            if let Some(out) = slot {
                for warning in &out.warnings {
                    eprintln!("{warning}");
                }
                let id = cell_of(index);
                if let Some(trace) = out.trace {
                    traces.push((id, trace));
                }
                if let Some(profile) = out.profile {
                    profiles.push((id, profile));
                }
                reports[id.point].push(out.report);
            }
        }
        SweepOutput {
            reports,
            traces,
            profiles,
        }
    }
}

/// The slot-ordered results of one sweep.
#[derive(Debug)]
pub struct SweepOutput<R> {
    /// Reports indexed `[point][seed - 1]`.
    pub reports: Vec<Vec<R>>,
    /// Trace artifacts of every traced cell, sorted by `(point, seed)`.
    pub traces: Vec<(CellId, CellTrace)>,
    /// Profile sidecar bodies of every profiled cell, sorted by
    /// `(point, seed)`.
    pub profiles: Vec<(CellId, String)>,
}

impl<R> SweepOutput<R> {
    /// Flattens the per-point report vectors of a single-point sweep (the
    /// shape every `replicate_*` call produces).
    #[must_use]
    pub fn into_single_point(self) -> Vec<R> {
        self.reports.into_iter().next().unwrap_or_default()
    }

    /// The traced cells' JSONL bytes concatenated in `(point, seed)`
    /// order — with one traced cell, exactly that cell's trace.
    #[must_use]
    pub fn merged_jsonl(&self) -> Vec<u8> {
        let mut merged = Vec::new();
        for (_, trace) in &self.traces {
            merged.extend_from_slice(&trace.jsonl);
        }
        merged
    }

    /// The aggregate manifest over every traced cell, sorted by
    /// `(point, seed)`.
    #[must_use]
    pub fn merged_manifest(&self, name: &str) -> SweepManifest {
        let mut manifest = SweepManifest::new(name);
        for (id, trace) in &self.traces {
            manifest.push(id.point, id.seed, trace.manifest.clone());
        }
        manifest
    }

    /// The traced cells' metrics snapshots, one JSON object per line in
    /// `(point, seed)` order.
    #[must_use]
    pub fn merged_metrics(&self) -> String {
        let mut merged = String::new();
        for (_, trace) in &self.traces {
            merged.push_str(&trace.metrics_json);
            merged.push('\n');
        }
        merged
    }

    /// The traced cells' per-member health timelines concatenated in
    /// `(point, seed)` order, or `None` when no traced cell was
    /// health-teed.
    #[must_use]
    pub fn merged_health(&self) -> Option<String> {
        let mut merged = String::new();
        let mut any = false;
        for (_, trace) in &self.traces {
            if let Some(health) = &trace.health {
                merged.push_str(health);
                any = true;
            }
        }
        any.then_some(merged)
    }

    /// The profiled cells' sidecar bodies, one JSON object per line in
    /// `(point, seed)` order.
    #[must_use]
    pub fn merged_profiles(&self) -> String {
        let mut merged = String::new();
        for (_, profile) in &self.profiles {
            merged.push_str(profile);
            merged.push('\n');
        }
        merged
    }

    /// Writes the merged trace artifacts: the concatenated JSONL at
    /// `path`, the aggregate manifest at `path.manifest.json`, the merged
    /// metrics at `path.metrics.json` and — when any cell carried health
    /// records — the per-member timelines at `path.health.jsonl`.
    ///
    /// Aborts the process when the trace itself cannot be written (the
    /// bench-appropriate policy — a requested trace that silently goes
    /// missing is worse than no run); sidecar failures only warn.
    pub fn write_trace(&self, path: &str, name: &str) {
        if let Err(err) = std::fs::write(path, self.merged_jsonl()) {
            eprintln!("error: cannot write trace file {path}: {err}");
            std::process::exit(2)
        }
        let mut sidecars = vec![
            (
                format!("{path}.manifest.json"),
                self.merged_manifest(name).to_json(),
            ),
            (format!("{path}.metrics.json"), self.merged_metrics()),
        ];
        if let Some(health) = self.merged_health() {
            sidecars.push((format!("{path}.health.jsonl"), health));
        }
        for (file, contents) in sidecars {
            if let Err(err) = std::fs::write(&file, contents) {
                eprintln!("warning: cannot write {file}: {err}");
            }
        }
    }

    /// Writes the merged profile sidecar (one JSON object per profiled
    /// cell) to `path`. Same abort policy as [`write_trace`](Self::write_trace):
    /// a requested profile that cannot be written kills the run.
    pub fn write_profile(&self, path: &str) {
        if let Err(err) = std::fs::write(path, self.merged_profiles()) {
            eprintln!("error: cannot write profile file {path}: {err}");
            std::process::exit(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cell function that records nothing but its own coordinates.
    fn echo(cell: CellId) -> CellOut<(usize, u64)> {
        CellOut::plain((cell.point, cell.seed))
    }

    #[test]
    fn empty_grid_succeeds() {
        for (points, seeds) in [(0, 0), (0, 3), (4, 0)] {
            let out = Sweep::with_jobs(4).run(points, seeds, echo);
            assert_eq!(out.reports.len(), points);
            assert!(out.reports.iter().all(Vec::is_empty));
            assert!(out.traces.is_empty());
            assert!(out.merged_jsonl().is_empty());
        }
        let none: Vec<(usize, u64)> = Sweep::with_jobs(1).run(0, 5, echo).into_single_point();
        assert!(none.is_empty());
    }

    #[test]
    fn one_point_grid_succeeds() {
        for jobs in [1, 2, 8] {
            let out = Sweep::with_jobs(jobs).run(1, 1, echo);
            assert_eq!(out.reports, vec![vec![(0, 1)]]);
        }
    }

    #[test]
    fn slots_are_grid_ordered_for_any_worker_count() {
        let serial = Sweep::with_jobs(1).run(3, 4, echo);
        for jobs in [2, 3, 8, 64] {
            let parallel = Sweep::with_jobs(jobs).run(3, 4, echo);
            assert_eq!(parallel.reports, serial.reports);
        }
        // Slot k of point p is always seed k+1.
        for (point, seeds) in serial.reports.iter().enumerate() {
            for (slot, &(p, s)) in seeds.iter().enumerate() {
                assert_eq!((p, s), (point, slot as u64 + 1));
            }
        }
    }

    #[test]
    fn traces_merge_in_grid_order() {
        let traced = |cell: CellId| CellOut {
            report: (),
            warnings: Vec::new(),
            trace: Some(CellTrace {
                jsonl: format!("{{\"p\":{},\"s\":{}}}\n", cell.point, cell.seed).into_bytes(),
                manifest: RunManifest::new("cell", cell.seed),
                metrics_json: format!("{{\"point\":{}}}", cell.point),
                health: Some(format!("{{\"h\":{}}}\n", cell.seed)),
            }),
            profile: Some(format!("{{\"prof\":{}}}", cell.point)),
        };
        let serial = Sweep::with_jobs(1).run(2, 3, traced);
        for jobs in [2, 8] {
            let parallel = Sweep::with_jobs(jobs).run(2, 3, traced);
            assert_eq!(parallel.merged_jsonl(), serial.merged_jsonl());
            assert_eq!(
                parallel.merged_manifest("m").to_json(),
                serial.merged_manifest("m").to_json()
            );
            assert_eq!(parallel.merged_metrics(), serial.merged_metrics());
            assert_eq!(parallel.merged_health(), serial.merged_health());
            assert_eq!(parallel.merged_profiles(), serial.merged_profiles());
        }
        let text = String::from_utf8(serial.merged_jsonl()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "{\"p\":0,\"s\":1}");
        assert_eq!(lines[5], "{\"p\":1,\"s\":3}");
        let health = serial.merged_health().expect("health teed");
        assert!(health.starts_with("{\"h\":1}\n"));
        let merged_profiles = serial.merged_profiles();
        let profiles: Vec<&str> = merged_profiles.lines().map(str::trim).collect();
        assert_eq!(profiles.len(), 6);
        assert_eq!(profiles[0], "{\"prof\":0}");
    }

    #[test]
    fn plain_cells_yield_no_sidecars() {
        let out = Sweep::with_jobs(2).run(2, 2, echo);
        assert!(out.profiles.is_empty());
        assert!(out.merged_health().is_none());
        assert!(out.merged_profiles().is_empty());
    }

    #[test]
    fn jobs_clamp_to_at_least_one() {
        assert_eq!(Sweep::with_jobs(0).jobs(), 1);
        let out = Sweep::with_jobs(0).run(1, 2, echo);
        assert_eq!(out.reports, vec![vec![(0, 1), (0, 2)]]);
    }
}
