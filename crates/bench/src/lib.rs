//! # rom-bench: figure regeneration and benchmark harness
//!
//! One binary per evaluation figure of the paper (`fig04_disruptions` …
//! `fig14_rost_cer`), each printing the same series the paper plots as
//! CSV rows, plus criterion micro-benchmarks over the core operations.
//!
//! Every binary accepts:
//!
//! - `--paper` — run at the paper's §5 scale (network sizes up to 14 000
//!   members over the 15 600-node topology). The default is a reduced
//!   scale that finishes in seconds-to-minutes on a laptop.
//! - `--seeds N` — number of replicated runs per point (default 3; each
//!   uses an independent seed and the printed value is the mean).
//! - `--jobs N` — number of worker threads for the replicate sweep
//!   (default: available parallelism). Output is byte-identical for any
//!   `N`; `--jobs 1` runs the cells inline on the calling thread.
//! - `--trace PATH` — write a structured JSONL trace of one designated
//!   run (binary-specific; typically the flagship configuration at seed
//!   1) to `PATH`, with the aggregate [`rom_obs::SweepManifest`] at
//!   `PATH.manifest.json` and the metrics snapshots at
//!   `PATH.metrics.json`. Traces are deterministic: same seed, same
//!   bytes — regardless of `--jobs`.

mod sweep;

pub use sweep::{CellId, CellOut, CellTrace, Sweep, SweepOutput};

use rom_engine::{AlgorithmKind, ChurnConfig, ChurnSim, StreamingConfig, StreamingSim};
use rom_engine::{ChurnReport, StreamingReport};
use rom_obs::{fnv1a, JsonlSink, MetricsSnapshot, Obs, RunManifest, SharedBuffer, Tracer};
use rom_sim::RunOutcome;
use rom_stats::Summary;

/// The gauge under which the engine records the exact peak event-queue
/// depth of a run (see `run_inner` in `rom-engine`).
pub const QUEUE_HIGH_WATER_GAUGE: &str = "sim.queue_high_water";

/// Scale and replication options shared by every figure binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Full §5 scale when true.
    pub paper: bool,
    /// Number of replicated seeds per data point.
    pub seeds: u64,
    /// Worker threads for the replicate sweep (`--jobs N`, default:
    /// available parallelism; 1 = serial).
    pub jobs: usize,
    /// JSONL trace output path (`--trace PATH`); tracing is off when
    /// `None`. Leaked to `'static` so `Scale` stays `Copy`.
    pub trace: Option<&'static str>,
}

impl Scale {
    /// Parses `--paper`, `--seeds N`, `--jobs N` and `--trace PATH` from
    /// the process arguments. Unknown arguments abort with a usage
    /// message.
    #[must_use]
    pub fn from_args() -> Self {
        let mut scale = Scale {
            paper: false,
            seeds: 3,
            jobs: default_jobs(),
            trace: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--paper" => scale.paper = true,
                "--seeds" => {
                    let n = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage());
                    scale.seeds = n;
                }
                "--jobs" => {
                    let n: usize = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage());
                    scale.jobs = n;
                }
                "--trace" => {
                    let path = args.next().unwrap_or_else(|| usage());
                    scale.trace = Some(Box::leak(path.into_boxed_str()));
                }
                "--help" | "-h" => usage(),
                _ => usage(),
            }
        }
        scale
    }

    /// The sweep engine configured with this scale's worker count.
    #[must_use]
    pub fn sweep(self) -> Sweep {
        Sweep::with_jobs(self.jobs)
    }

    /// The steady-state sizes swept by the size-axis figures
    /// (Figs. 4, 7, 8, 10, 12).
    #[must_use]
    pub fn sizes(self) -> Vec<usize> {
        if self.paper {
            vec![2_000, 5_000, 8_000, 11_000, 14_000]
        } else {
            vec![500, 1_000, 2_000, 4_000]
        }
    }

    /// The single size used by fixed-size figures (Figs. 5, 6, 9, 11, 13,
    /// 14): the paper uses 8 000.
    #[must_use]
    pub fn focus_size(self) -> usize {
        if self.paper {
            8_000
        } else {
            2_000
        }
    }

    /// The observer horizon for the member-trace figures (Figs. 6, 9):
    /// the paper plots 300 minutes.
    #[must_use]
    pub fn observer_minutes(self) -> f64 {
        if self.paper {
            300.0
        } else {
            120.0
        }
    }
}

/// The default `--jobs`: every available core.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn usage() -> ! {
    eprintln!("usage: <figure-binary> [--paper] [--seeds N] [--jobs N] [--trace PATH]");
    std::process::exit(2)
}

/// The §5 churn configuration for one data point.
#[must_use]
pub fn churn_config(algorithm: AlgorithmKind, size: usize, seed: u64) -> ChurnConfig {
    ChurnConfig::paper(algorithm, size).with_seed(seed)
}

/// Runs one churn configuration per seed (in parallel over
/// `scale.jobs` workers) and returns the reports in seed order.
#[must_use]
pub fn replicate_churn(
    make: impl Fn(u64) -> ChurnConfig + Sync,
    scale: Scale,
) -> Vec<ChurnReport> {
    replicate_churn_traced("churn", make, scale, None)
}

/// Runs one streaming configuration per seed (in parallel over
/// `scale.jobs` workers) and returns the reports in seed order.
#[must_use]
pub fn replicate_streaming(
    make: impl Fn(u64) -> StreamingConfig + Sync,
    scale: Scale,
) -> Vec<StreamingReport> {
    replicate_streaming_traced("streaming", make, scale, None)
}

/// Like [`replicate_churn`], but traces the seed-1 run to `trace` when
/// set: the merged JSONL lands at the path with its aggregate manifest
/// and metrics sidecars (see [`SweepOutput::write_trace`]). `name`
/// labels the run in its manifest.
#[must_use]
pub fn replicate_churn_traced(
    name: &str,
    make: impl Fn(u64) -> ChurnConfig + Sync,
    scale: Scale,
    trace: Option<&str>,
) -> Vec<ChurnReport> {
    let out = scale.sweep().run(1, scale.seeds, |cell| {
        let cfg = make(cell.seed);
        let (report, trace) = match trace.filter(|_| cell.seed == 1) {
            Some(_) => {
                let (report, _metrics, artifacts) = traced_churn_cell(name, cfg, cell.seed);
                (report, Some(artifacts))
            }
            None => (ChurnSim::new(cfg).run(), None),
        };
        CellOut {
            warnings: truncation_warning(name, cell.seed, report.outcome)
                .into_iter()
                .collect(),
            report,
            trace,
        }
    });
    if let Some(path) = trace {
        out.write_trace(path, name);
    }
    out.into_single_point()
}

/// Like [`replicate_streaming`], but traces the seed-1 run to `trace`
/// when set (see [`replicate_churn_traced`]). `name` labels the run in
/// its manifest.
#[must_use]
pub fn replicate_streaming_traced(
    name: &str,
    make: impl Fn(u64) -> StreamingConfig + Sync,
    scale: Scale,
    trace: Option<&str>,
) -> Vec<StreamingReport> {
    let out = scale.sweep().run(1, scale.seeds, |cell| {
        let cfg = make(cell.seed);
        let (report, trace) = match trace.filter(|_| cell.seed == 1) {
            Some(_) => {
                let (report, _metrics, artifacts) = traced_streaming_cell(name, cfg, cell.seed);
                (report, Some(artifacts))
            }
            None => (StreamingSim::new(cfg).run(), None),
        };
        CellOut {
            warnings: truncation_warning(name, cell.seed, report.outcome())
                .into_iter()
                .collect(),
            report,
            trace,
        }
    });
    if let Some(path) = trace {
        out.write_trace(path, name);
    }
    out.into_single_point()
}

/// Runs one churn configuration with a private in-memory trace pipeline
/// and returns the report, the metrics snapshot and the cell's trace
/// artifacts (ready for deterministic merging by the sweep engine).
#[must_use]
pub fn traced_churn_cell(
    name: &str,
    cfg: ChurnConfig,
    seed: u64,
) -> (ChurnReport, MetricsSnapshot, CellTrace) {
    let digest = fnv1a(format!("{cfg:?}").as_bytes());
    let buffer = SharedBuffer::new();
    let obs = Obs::new(Tracer::to_sink(Box::new(JsonlSink::new(buffer.clone()))));
    let (report, obs) = ChurnSim::new(cfg).run_with_obs(obs);
    let (metrics, trace) = cell_artifacts(
        name,
        seed,
        digest,
        &obs,
        &buffer,
        report.events_processed,
        report.outcome,
    );
    (report, metrics, trace)
}

/// Streaming variant of [`traced_churn_cell`].
#[must_use]
pub fn traced_streaming_cell(
    name: &str,
    cfg: StreamingConfig,
    seed: u64,
) -> (StreamingReport, MetricsSnapshot, CellTrace) {
    let digest = fnv1a(format!("{cfg:?}").as_bytes());
    let buffer = SharedBuffer::new();
    let obs = Obs::new(Tracer::to_sink(Box::new(JsonlSink::new(buffer.clone()))));
    let (report, obs) = StreamingSim::new(cfg).run_with_obs(obs);
    let (metrics, trace) = cell_artifacts(
        name,
        seed,
        digest,
        &obs,
        &buffer,
        report.events_processed(),
        report.outcome(),
    );
    (report, metrics, trace)
}

/// Packages one observed run's telemetry into its [`CellTrace`].
fn cell_artifacts(
    name: &str,
    seed: u64,
    config_digest: u64,
    obs: &Obs,
    buffer: &SharedBuffer,
    events_processed: u64,
    outcome: RunOutcome,
) -> (MetricsSnapshot, CellTrace) {
    let metrics = obs.snapshot();
    let manifest = run_manifest(name, seed, config_digest, obs, events_processed, outcome);
    let trace = CellTrace {
        jsonl: buffer.contents(),
        metrics_json: metrics.to_json(),
        manifest,
    };
    (metrics, trace)
}

/// Builds the [`RunManifest`] of a traced run: name, seed, provenance
/// digests, event counts, and — crucially — the [`RunOutcome`], so a
/// truncated run is recorded as `BudgetExhausted` in the manifest rather
/// than passing silently as a completed measurement.
#[must_use]
pub fn run_manifest(
    name: &str,
    seed: u64,
    config_digest: u64,
    obs: &Obs,
    events_processed: u64,
    outcome: RunOutcome,
) -> RunManifest {
    let metrics = obs.snapshot().to_json();
    let mut manifest = RunManifest::new(name, seed)
        .with_extra("metrics_digest", format!("{:016x}", fnv1a(metrics.as_bytes())));
    manifest.config_digest = config_digest;
    manifest.events_processed = events_processed;
    manifest.trace_events = obs.trace_events();
    manifest.outcome = format!("{outcome:?}");
    manifest
}

/// The deferred-warning text for a run whose event loop stopped early
/// (its measurements cover less simulated time than configured), or
/// `None` for a complete run. Returned through the cell's result slot so
/// the sweep engine prints it in deterministic `(point, seed)` order
/// after the join — worker threads never write to stderr directly.
#[must_use]
pub fn truncation_warning(name: &str, seed: u64, outcome: RunOutcome) -> Option<String> {
    (outcome == RunOutcome::BudgetExhausted)
        .then(|| format!("warning: {name} seed {seed}: event budget exhausted, run truncated"))
}

/// Mean of a per-report scalar across replicated runs.
#[must_use]
pub fn mean_over<R>(reports: &[R], f: impl Fn(&R) -> f64) -> f64 {
    let s: Summary = reports.iter().map(f).collect();
    s.mean()
}

/// Prints the standard figure banner.
pub fn banner(figure: &str, caption: &str, scale: Scale) {
    println!("# {figure} — {caption}");
    println!(
        "# scale: {} | seeds per point: {}",
        if scale.paper {
            "paper (§5)"
        } else {
            "reduced (use --paper for full scale)"
        },
        scale.seeds
    );
}

/// Formats a float with enough precision for the tables.
#[must_use]
pub fn fmt(v: f64) -> String {
    if v.abs().to_bits() == 0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

/// Joins row cells with commas.
#[must_use]
pub fn row<I: IntoIterator<Item = String>>(cells: I) -> String {
    cells.into_iter().collect::<Vec<_>>().join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults() {
        let s = Scale {
            paper: false,
            seeds: 3,
            jobs: 1,
            trace: None,
        };
        assert_eq!(s.sizes(), vec![500, 1_000, 2_000, 4_000]);
        assert_eq!(s.focus_size(), 2_000);
        let p = Scale {
            paper: true,
            seeds: 3,
            jobs: 1,
            trace: None,
        };
        assert_eq!(p.sizes().last(), Some(&14_000));
        assert_eq!(p.focus_size(), 8_000);
        assert_eq!(p.observer_minutes(), 300.0);
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.1234), "0.1234");
        assert_eq!(fmt(12.3456), "12.346");
        assert_eq!(fmt(1234.5), "1234.5");
        assert_eq!(row(["a".into(), "b".into()]), "a,b");
    }

    #[test]
    fn config_uses_seed() {
        let c = churn_config(AlgorithmKind::Rost, 1_000, 7);
        assert_eq!(c.seed, 7);
        assert_eq!(c.target_size, 1_000);
    }

    #[test]
    fn truncation_warning_only_on_budget_exhaustion() {
        assert!(truncation_warning("x", 1, RunOutcome::HorizonReached).is_none());
        assert!(truncation_warning("x", 1, RunOutcome::Drained).is_none());
        let warning =
            truncation_warning("fig", 4, RunOutcome::BudgetExhausted).expect("warns on truncation");
        assert!(warning.contains("fig seed 4"));
    }
}
