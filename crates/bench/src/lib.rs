//! # rom-bench: figure regeneration and benchmark harness
//!
//! One binary per evaluation figure of the paper (`fig04_disruptions` …
//! `fig14_rost_cer`), each printing the same series the paper plots as
//! CSV rows, plus criterion micro-benchmarks over the core operations.
//!
//! Every binary accepts:
//!
//! - `--paper` — run at the paper's §5 scale (network sizes up to 14 000
//!   members over the 15 600-node topology). The default is a reduced
//!   scale that finishes in seconds-to-minutes on a laptop.
//! - `--seeds N` — number of replicated runs per point (default 3; each
//!   uses an independent seed and the printed value is the mean).
//! - `--jobs N` — number of worker threads for the replicate sweep
//!   (default: available parallelism). Output is byte-identical for any
//!   `N`; `--jobs 1` runs the cells inline on the calling thread.
//! - `--trace PATH` — write a structured JSONL trace of one designated
//!   run (binary-specific; typically the flagship configuration at seed
//!   1) to `PATH`, with the aggregate [`rom_obs::SweepManifest`] at
//!   `PATH.manifest.json`, the metrics snapshots at `PATH.metrics.json`
//!   and the per-member health timelines at `PATH.health.jsonl`. Traces
//!   are deterministic: same seed, same bytes — regardless of `--jobs`.
//! - `--profile PATH` — record a hierarchical span profile of the same
//!   designated run and write it to `PATH` (conventionally
//!   `*.profile.json`). The profile carries wall-clock numbers and is the
//!   **only** artifact allowed to: stdout, traces, manifests and metrics
//!   stay byte-identical whether or not profiling is on.

mod jsonv;
mod sweep;

pub use jsonv::Json;
pub use sweep::{CellId, CellOut, CellTrace, Sweep, SweepOutput};

use rom_engine::{AlgorithmKind, ChurnConfig, ChurnSim, StreamingConfig, StreamingSim};
use rom_engine::{ChurnReport, StreamingReport};
use rom_obs::{
    fnv1a, HealthHandle, HealthSink, JsonlSink, MetricsSnapshot, Obs, Prof, RunManifest,
    SharedBuffer, Tracer,
};
use rom_sim::RunOutcome;
use rom_stats::Summary;
use std::time::Instant;

/// Scale and replication options shared by every figure binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Full §5 scale when true.
    pub paper: bool,
    /// Number of replicated seeds per data point.
    pub seeds: u64,
    /// Worker threads for the replicate sweep (`--jobs N`, default:
    /// available parallelism; 1 = serial).
    pub jobs: usize,
    /// JSONL trace output path (`--trace PATH`); tracing is off when
    /// `None`. Leaked to `'static` so `Scale` stays `Copy`.
    pub trace: Option<&'static str>,
    /// Span-profile output path (`--profile PATH`); profiling is off when
    /// `None`. Leaked to `'static` so `Scale` stays `Copy`.
    pub profile: Option<&'static str>,
}

impl Scale {
    /// Parses `--paper`, `--seeds N`, `--jobs N` and `--trace PATH` from
    /// the process arguments. Unknown arguments abort with a usage
    /// message.
    #[must_use]
    pub fn from_args() -> Self {
        let mut scale = Scale {
            paper: false,
            seeds: 3,
            jobs: default_jobs(),
            trace: None,
            profile: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--paper" => scale.paper = true,
                "--seeds" => {
                    let n = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage());
                    scale.seeds = n;
                }
                "--jobs" => {
                    let n: usize = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage());
                    scale.jobs = n;
                }
                "--trace" => {
                    let path = args.next().unwrap_or_else(|| usage());
                    scale.trace = Some(Box::leak(path.into_boxed_str()));
                }
                "--profile" => {
                    let path = args.next().unwrap_or_else(|| usage());
                    scale.profile = Some(Box::leak(path.into_boxed_str()));
                }
                "--help" | "-h" => usage(),
                _ => usage(),
            }
        }
        scale
    }

    /// The sweep engine configured with this scale's worker count.
    #[must_use]
    pub fn sweep(self) -> Sweep {
        Sweep::with_jobs(self.jobs)
    }

    /// The sidecar requests (`--trace`/`--profile`) of this invocation,
    /// for handing to [`replicate_churn_traced`] /
    /// [`replicate_streaming_traced`] or an [`instrumented_churn_cell`].
    #[must_use]
    pub fn sidecars(self) -> Sidecars {
        Sidecars {
            trace: self.trace,
            profile: self.profile,
        }
    }

    /// The steady-state sizes swept by the size-axis figures
    /// (Figs. 4, 7, 8, 10, 12).
    #[must_use]
    pub fn sizes(self) -> Vec<usize> {
        if self.paper {
            vec![2_000, 5_000, 8_000, 11_000, 14_000]
        } else {
            vec![500, 1_000, 2_000, 4_000]
        }
    }

    /// The single size used by fixed-size figures (Figs. 5, 6, 9, 11, 13,
    /// 14): the paper uses 8 000.
    #[must_use]
    pub fn focus_size(self) -> usize {
        if self.paper {
            8_000
        } else {
            2_000
        }
    }

    /// The observer horizon for the member-trace figures (Figs. 6, 9):
    /// the paper plots 300 minutes.
    #[must_use]
    pub fn observer_minutes(self) -> f64 {
        if self.paper {
            300.0
        } else {
            120.0
        }
    }
}

/// The default `--jobs`: every available core.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Times a fixed single-core integer spin, in ns per iteration.
///
/// Recorded in every `BENCH_*.json` baseline so consumers (the perf
/// smoke, the mega walls) can compare runs across machines:
/// `events_per_sec × spin_ns` cancels raw CPU speed to first order,
/// leaving only genuine changes in work per event. Only meaningful to
/// compare between runs with the same `jobs` setting.
#[must_use]
pub fn calibration_spin_ns() -> f64 {
    const ITERS: u64 = 1 << 24;
    let started = Instant::now();
    let mut x = 0x9e37_79b9_7f4a_7c15_u64;
    for _ in 0..ITERS {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    std::hint::black_box(x);
    started.elapsed().as_nanos() as f64 / ITERS as f64
}

fn usage() -> ! {
    eprintln!(
        "usage: <figure-binary> [--paper] [--seeds N] [--jobs N] [--trace PATH] [--profile PATH]"
    );
    std::process::exit(2)
}

/// Sidecar outputs requested for a binary's designated instrumented run
/// — the shared `--trace`/`--profile` handling every figure binary goes
/// through instead of plumbing two `Option`s per call site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sidecars {
    /// JSONL trace destination (plus `.manifest.json`, `.metrics.json`
    /// and `.health.jsonl` siblings).
    pub trace: Option<&'static str>,
    /// Span-profile destination (wall-clock numbers live only here).
    pub profile: Option<&'static str>,
}

impl Sidecars {
    /// No sidecars requested.
    #[must_use]
    pub fn none() -> Self {
        Sidecars::default()
    }

    /// True when at least one sidecar was requested.
    #[must_use]
    pub fn any(self) -> bool {
        self.trace.is_some() || self.profile.is_some()
    }

    /// These sidecars when `designated` is true, none otherwise — for
    /// binaries that replicate several configurations and must attach the
    /// sidecars to exactly one of them.
    #[must_use]
    pub fn when(self, designated: bool) -> Self {
        if designated {
            self
        } else {
            Sidecars::none()
        }
    }
}

/// The §5 churn configuration for one data point.
#[must_use]
pub fn churn_config(algorithm: AlgorithmKind, size: usize, seed: u64) -> ChurnConfig {
    ChurnConfig::paper(algorithm, size).with_seed(seed)
}

/// Runs one churn configuration per seed (in parallel over
/// `scale.jobs` workers) and returns the reports in seed order.
#[must_use]
pub fn replicate_churn(
    make: impl Fn(u64) -> ChurnConfig + Sync,
    scale: Scale,
) -> Vec<ChurnReport> {
    replicate_churn_traced("churn", make, scale, Sidecars::none())
}

/// Runs one streaming configuration per seed (in parallel over
/// `scale.jobs` workers) and returns the reports in seed order.
#[must_use]
pub fn replicate_streaming(
    make: impl Fn(u64) -> StreamingConfig + Sync,
    scale: Scale,
) -> Vec<StreamingReport> {
    replicate_streaming_traced("streaming", make, scale, Sidecars::none())
}

/// Like [`replicate_churn`], but instruments the seed-1 run with the
/// requested sidecars: the merged trace JSONL lands at `sidecars.trace`
/// with its aggregate manifest, metrics and health siblings (see
/// [`SweepOutput::write_trace`]), and the span profile at
/// `sidecars.profile` (see [`SweepOutput::write_profile`]). `name`
/// labels the run in its manifest and profile.
#[must_use]
pub fn replicate_churn_traced(
    name: &str,
    make: impl Fn(u64) -> ChurnConfig + Sync,
    scale: Scale,
    sidecars: Sidecars,
) -> Vec<ChurnReport> {
    let out = scale.sweep().run(1, scale.seeds, |cell| {
        let cfg = make(cell.seed);
        let (report, trace, profile) =
            instrumented_churn_cell(name, cfg, cell.seed, sidecars.when(cell.seed == 1));
        CellOut {
            warnings: truncation_warning(name, cell.seed, report.outcome)
                .into_iter()
                .collect(),
            report,
            trace,
            profile,
        }
    });
    write_sidecars(&out, name, sidecars);
    out.into_single_point()
}

/// Like [`replicate_streaming`], but instruments the seed-1 run with the
/// requested sidecars (see [`replicate_churn_traced`]). `name` labels
/// the run in its manifest and profile.
#[must_use]
pub fn replicate_streaming_traced(
    name: &str,
    make: impl Fn(u64) -> StreamingConfig + Sync,
    scale: Scale,
    sidecars: Sidecars,
) -> Vec<StreamingReport> {
    let out = scale.sweep().run(1, scale.seeds, |cell| {
        let cfg = make(cell.seed);
        let (report, trace, profile) =
            instrumented_streaming_cell(name, cfg, cell.seed, sidecars.when(cell.seed == 1));
        CellOut {
            warnings: truncation_warning(name, cell.seed, report.outcome())
                .into_iter()
                .collect(),
            report,
            trace,
            profile,
        }
    });
    write_sidecars(&out, name, sidecars);
    out.into_single_point()
}

/// Writes whatever sidecars a finished sweep carries to the requested
/// paths.
pub fn write_sidecars<R>(out: &SweepOutput<R>, name: &str, sidecars: Sidecars) {
    if let Some(path) = sidecars.trace {
        out.write_trace(path, name);
    }
    if let Some(path) = sidecars.profile {
        out.write_profile(path);
    }
}

/// Runs one churn configuration with the requested instrumentation and
/// returns the report plus the optional trace artifacts and profile
/// JSON. With `Sidecars::none()` this is exactly the plain run — the
/// disabled observability and profiling paths are allocation-free.
#[must_use]
pub fn instrumented_churn_cell(
    name: &str,
    cfg: ChurnConfig,
    seed: u64,
    sidecars: Sidecars,
) -> (ChurnReport, Option<CellTrace>, Option<String>) {
    let digest = fnv1a(format!("{cfg:?}").as_bytes());
    let (obs, pipe) = instrumented_obs(sidecars);
    let started = Instant::now();
    let (report, obs) = ChurnSim::new(cfg).run_with_obs(obs);
    let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let trace = pipe.as_ref().map(|(buffer, health)| {
        cell_artifacts(
            name,
            seed,
            digest,
            &obs,
            buffer,
            health.to_jsonl(),
            report.events_processed,
            report.outcome,
        )
    });
    let profile = obs
        .prof()
        .report()
        .map(|r| r.to_json(name, seed, report.events_processed, wall_ns));
    (report, trace, profile)
}

/// Streaming variant of [`instrumented_churn_cell`].
#[must_use]
pub fn instrumented_streaming_cell(
    name: &str,
    cfg: StreamingConfig,
    seed: u64,
    sidecars: Sidecars,
) -> (StreamingReport, Option<CellTrace>, Option<String>) {
    let digest = fnv1a(format!("{cfg:?}").as_bytes());
    let (obs, pipe) = instrumented_obs(sidecars);
    let started = Instant::now();
    let (report, obs) = StreamingSim::new(cfg).run_with_obs(obs);
    let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let trace = pipe.as_ref().map(|(buffer, health)| {
        cell_artifacts(
            name,
            seed,
            digest,
            &obs,
            buffer,
            health.to_jsonl(),
            report.events_processed(),
            report.outcome(),
        )
    });
    let profile = obs
        .prof()
        .report()
        .map(|r| r.to_json(name, seed, report.events_processed(), wall_ns));
    (report, trace, profile)
}

/// Builds the [`Obs`] for one instrumented cell: a tracing pipeline
/// (shared buffer behind a health tee) when a trace sidecar was
/// requested, and an enabled profiler when a profile was. The returned
/// buffer/health pair is `None` when tracing is off.
fn instrumented_obs(sidecars: Sidecars) -> (Obs, Option<(SharedBuffer, HealthHandle)>) {
    let (obs, pipe) = if sidecars.trace.is_some() {
        let buffer = SharedBuffer::new();
        let (sink, health) = HealthSink::new(JsonlSink::new(buffer.clone()));
        let obs = Obs::new(Tracer::to_sink(Box::new(sink)));
        (obs, Some((buffer, health)))
    } else {
        (Obs::disabled(), None)
    };
    let prof = if sidecars.profile.is_some() {
        Prof::enabled()
    } else {
        Prof::disabled()
    };
    (obs.with_prof(prof), pipe)
}

/// Runs one churn configuration with a private in-memory trace pipeline
/// and returns the report, the metrics snapshot and the cell's trace
/// artifacts (ready for deterministic merging by the sweep engine).
#[must_use]
pub fn traced_churn_cell(
    name: &str,
    cfg: ChurnConfig,
    seed: u64,
) -> (ChurnReport, MetricsSnapshot, CellTrace) {
    let digest = fnv1a(format!("{cfg:?}").as_bytes());
    let buffer = SharedBuffer::new();
    let (sink, health) = HealthSink::new(JsonlSink::new(buffer.clone()));
    let obs = Obs::new(Tracer::to_sink(Box::new(sink)));
    let (report, obs) = ChurnSim::new(cfg).run_with_obs(obs);
    let metrics = obs.snapshot();
    let trace = cell_artifacts(
        name,
        seed,
        digest,
        &obs,
        &buffer,
        health.to_jsonl(),
        report.events_processed,
        report.outcome,
    );
    (report, metrics, trace)
}

/// Streaming variant of [`traced_churn_cell`].
#[must_use]
pub fn traced_streaming_cell(
    name: &str,
    cfg: StreamingConfig,
    seed: u64,
) -> (StreamingReport, MetricsSnapshot, CellTrace) {
    let digest = fnv1a(format!("{cfg:?}").as_bytes());
    let buffer = SharedBuffer::new();
    let (sink, health) = HealthSink::new(JsonlSink::new(buffer.clone()));
    let obs = Obs::new(Tracer::to_sink(Box::new(sink)));
    let (report, obs) = StreamingSim::new(cfg).run_with_obs(obs);
    let metrics = obs.snapshot();
    let trace = cell_artifacts(
        name,
        seed,
        digest,
        &obs,
        &buffer,
        health.to_jsonl(),
        report.events_processed(),
        report.outcome(),
    );
    (report, metrics, trace)
}

/// Packages one observed run's telemetry into its [`CellTrace`].
#[allow(clippy::too_many_arguments)]
fn cell_artifacts(
    name: &str,
    seed: u64,
    config_digest: u64,
    obs: &Obs,
    buffer: &SharedBuffer,
    health: String,
    events_processed: u64,
    outcome: RunOutcome,
) -> CellTrace {
    let metrics = obs.snapshot();
    let manifest = run_manifest(name, seed, config_digest, obs, events_processed, outcome);
    CellTrace {
        jsonl: buffer.contents(),
        metrics_json: metrics.to_json(),
        manifest,
        health: Some(health),
    }
}

/// Builds the [`RunManifest`] of a traced run: name, seed, provenance
/// digests, event counts, and — crucially — the [`RunOutcome`], so a
/// truncated run is recorded as `BudgetExhausted` in the manifest rather
/// than passing silently as a completed measurement.
#[must_use]
pub fn run_manifest(
    name: &str,
    seed: u64,
    config_digest: u64,
    obs: &Obs,
    events_processed: u64,
    outcome: RunOutcome,
) -> RunManifest {
    let metrics = obs.snapshot().to_json();
    let mut manifest = RunManifest::new(name, seed)
        .with_extra("metrics_digest", format!("{:016x}", fnv1a(metrics.as_bytes())));
    manifest.config_digest = config_digest;
    manifest.events_processed = events_processed;
    manifest.trace_events = obs.trace_events();
    manifest.outcome = format!("{outcome:?}");
    manifest
}

/// The deferred-warning text for a run whose event loop stopped early
/// (its measurements cover less simulated time than configured), or
/// `None` for a complete run. Returned through the cell's result slot so
/// the sweep engine prints it in deterministic `(point, seed)` order
/// after the join — worker threads never write to stderr directly.
#[must_use]
pub fn truncation_warning(name: &str, seed: u64, outcome: RunOutcome) -> Option<String> {
    (outcome == RunOutcome::BudgetExhausted)
        .then(|| format!("warning: {name} seed {seed}: event budget exhausted, run truncated"))
}

/// Mean of a per-report scalar across replicated runs.
#[must_use]
pub fn mean_over<R>(reports: &[R], f: impl Fn(&R) -> f64) -> f64 {
    let s: Summary = reports.iter().map(f).collect();
    s.mean()
}

/// Prints the standard figure banner.
pub fn banner(figure: &str, caption: &str, scale: Scale) {
    println!("# {figure} — {caption}");
    println!(
        "# scale: {} | seeds per point: {}",
        if scale.paper {
            "paper (§5)"
        } else {
            "reduced (use --paper for full scale)"
        },
        scale.seeds
    );
}

/// Formats a float with enough precision for the tables.
#[must_use]
pub fn fmt(v: f64) -> String {
    if v.abs().to_bits() == 0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

/// Joins row cells with commas.
#[must_use]
pub fn row<I: IntoIterator<Item = String>>(cells: I) -> String {
    cells.into_iter().collect::<Vec<_>>().join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults() {
        let s = Scale {
            paper: false,
            seeds: 3,
            jobs: 1,
            trace: None,
            profile: None,
        };
        assert_eq!(s.sizes(), vec![500, 1_000, 2_000, 4_000]);
        assert_eq!(s.focus_size(), 2_000);
        assert_eq!(s.sidecars(), Sidecars::none());
        assert!(!s.sidecars().any());
        let p = Scale {
            paper: true,
            seeds: 3,
            jobs: 1,
            trace: None,
            profile: None,
        };
        assert_eq!(p.sizes().last(), Some(&14_000));
        assert_eq!(p.focus_size(), 8_000);
        assert_eq!(p.observer_minutes(), 300.0);
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.1234), "0.1234");
        assert_eq!(fmt(12.3456), "12.346");
        assert_eq!(fmt(1234.5), "1234.5");
        assert_eq!(row(["a".into(), "b".into()]), "a,b");
    }

    #[test]
    fn config_uses_seed() {
        let c = churn_config(AlgorithmKind::Rost, 1_000, 7);
        assert_eq!(c.seed, 7);
        assert_eq!(c.target_size, 1_000);
    }

    #[test]
    fn truncation_warning_only_on_budget_exhaustion() {
        assert!(truncation_warning("x", 1, RunOutcome::HorizonReached).is_none());
        assert!(truncation_warning("x", 1, RunOutcome::Drained).is_none());
        let warning =
            truncation_warning("fig", 4, RunOutcome::BudgetExhausted).expect("warns on truncation");
        assert!(warning.contains("fig seed 4"));
    }
}
