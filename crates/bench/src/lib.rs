//! # rom-bench: figure regeneration and benchmark harness
//!
//! One binary per evaluation figure of the paper (`fig04_disruptions` …
//! `fig14_rost_cer`), each printing the same series the paper plots as
//! CSV rows, plus criterion micro-benchmarks over the core operations.
//!
//! Every binary accepts:
//!
//! - `--paper` — run at the paper's §5 scale (network sizes up to 14 000
//!   members over the 15 600-node topology). The default is a reduced
//!   scale that finishes in seconds-to-minutes on a laptop.
//! - `--seeds N` — number of replicated runs per point (default 3; each
//!   uses an independent seed and the printed value is the mean).
//! - `--trace PATH` — write a structured JSONL trace of one designated
//!   run (binary-specific; typically the flagship configuration at seed
//!   1) to `PATH`, with its [`rom_obs::RunManifest`] at
//!   `PATH.manifest.json` and the metrics snapshot at
//!   `PATH.metrics.json`. Traces are deterministic: same seed, same
//!   bytes.

use rom_engine::{AlgorithmKind, ChurnConfig, ChurnSim, StreamingConfig, StreamingSim};
use rom_engine::{ChurnReport, StreamingReport};
use rom_obs::{fnv1a, JsonlSink, Obs, RunManifest, Tracer};
use rom_sim::RunOutcome;
use rom_stats::Summary;

/// Scale and replication options shared by every figure binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Full §5 scale when true.
    pub paper: bool,
    /// Number of replicated seeds per data point.
    pub seeds: u64,
    /// JSONL trace output path (`--trace PATH`); tracing is off when
    /// `None`. Leaked to `'static` so `Scale` stays `Copy`.
    pub trace: Option<&'static str>,
}

impl Scale {
    /// Parses `--paper`, `--seeds N` and `--trace PATH` from the process
    /// arguments. Unknown arguments abort with a usage message.
    #[must_use]
    pub fn from_args() -> Self {
        let mut scale = Scale {
            paper: false,
            seeds: 3,
            trace: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--paper" => scale.paper = true,
                "--seeds" => {
                    let n = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage());
                    scale.seeds = n;
                }
                "--trace" => {
                    let path = args.next().unwrap_or_else(|| usage());
                    scale.trace = Some(Box::leak(path.into_boxed_str()));
                }
                "--help" | "-h" => usage(),
                _ => usage(),
            }
        }
        scale
    }

    /// The steady-state sizes swept by the size-axis figures
    /// (Figs. 4, 7, 8, 10, 12).
    #[must_use]
    pub fn sizes(self) -> Vec<usize> {
        if self.paper {
            vec![2_000, 5_000, 8_000, 11_000, 14_000]
        } else {
            vec![500, 1_000, 2_000, 4_000]
        }
    }

    /// The single size used by fixed-size figures (Figs. 5, 6, 9, 11, 13,
    /// 14): the paper uses 8 000.
    #[must_use]
    pub fn focus_size(self) -> usize {
        if self.paper {
            8_000
        } else {
            2_000
        }
    }

    /// The observer horizon for the member-trace figures (Figs. 6, 9):
    /// the paper plots 300 minutes.
    #[must_use]
    pub fn observer_minutes(self) -> f64 {
        if self.paper {
            300.0
        } else {
            120.0
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: <figure-binary> [--paper] [--seeds N] [--trace PATH]");
    std::process::exit(2)
}

/// The §5 churn configuration for one data point.
#[must_use]
pub fn churn_config(algorithm: AlgorithmKind, size: usize, seed: u64) -> ChurnConfig {
    ChurnConfig::paper(algorithm, size).with_seed(seed)
}

/// Runs one churn configuration per seed and returns the reports.
#[must_use]
pub fn replicate_churn(make: impl Fn(u64) -> ChurnConfig, seeds: u64) -> Vec<ChurnReport> {
    (1..=seeds)
        .map(|seed| {
            let report = ChurnSim::new(make(seed)).run();
            warn_on_truncation("churn", seed, report.outcome);
            report
        })
        .collect()
}

/// Runs one streaming configuration per seed and returns the reports.
#[must_use]
pub fn replicate_streaming(
    make: impl Fn(u64) -> StreamingConfig,
    seeds: u64,
) -> Vec<StreamingReport> {
    (1..=seeds)
        .map(|seed| {
            let report = StreamingSim::new(make(seed)).run();
            warn_on_truncation("streaming", seed, report.outcome());
            report
        })
        .collect()
}

/// Like [`replicate_churn`], but traces the seed-1 run to `trace` when
/// set (see [`trace_sidecars`] for the files written). `name` labels the
/// run in its manifest.
#[must_use]
pub fn replicate_churn_traced(
    name: &str,
    make: impl Fn(u64) -> ChurnConfig,
    seeds: u64,
    trace: Option<&str>,
) -> Vec<ChurnReport> {
    (1..=seeds)
        .map(|seed| {
            let cfg = make(seed);
            let report = match trace.filter(|_| seed == 1) {
                Some(path) => {
                    let digest = fnv1a(format!("{cfg:?}").as_bytes());
                    let (report, obs) = ChurnSim::new(cfg).run_with_obs(obs_to_file(path));
                    trace_sidecars(path, name, seed, digest, &obs, report.events_processed, report.outcome);
                    report
                }
                None => ChurnSim::new(cfg).run(),
            };
            warn_on_truncation(name, seed, report.outcome);
            report
        })
        .collect()
}

/// Like [`replicate_streaming`], but traces the seed-1 run to `trace`
/// when set (see [`trace_sidecars`] for the files written). `name` labels
/// the run in its manifest.
#[must_use]
pub fn replicate_streaming_traced(
    name: &str,
    make: impl Fn(u64) -> StreamingConfig,
    seeds: u64,
    trace: Option<&str>,
) -> Vec<StreamingReport> {
    (1..=seeds)
        .map(|seed| {
            let cfg = make(seed);
            let report = match trace.filter(|_| seed == 1) {
                Some(path) => {
                    let digest = fnv1a(format!("{cfg:?}").as_bytes());
                    let (report, obs) = StreamingSim::new(cfg).run_with_obs(obs_to_file(path));
                    trace_sidecars(path, name, seed, digest, &obs, report.events_processed(), report.outcome());
                    report
                }
                None => StreamingSim::new(cfg).run(),
            };
            warn_on_truncation(name, seed, report.outcome());
            report
        })
        .collect()
}

/// An [`Obs`] pipeline writing JSONL trace lines to `path`, aborting the
/// process when the file cannot be created (a bench-appropriate policy).
#[must_use]
pub fn obs_to_file(path: &str) -> Obs {
    match JsonlSink::create(path) {
        Ok(sink) => Obs::new(Tracer::to_sink(Box::new(sink))),
        Err(err) => {
            eprintln!("error: cannot create trace file {path}: {err}");
            std::process::exit(2)
        }
    }
}

/// Builds the [`RunManifest`] of a traced run: name, seed, provenance
/// digests, event counts, and — crucially — the [`RunOutcome`], so a
/// truncated run is recorded as `BudgetExhausted` in the manifest rather
/// than passing silently as a completed measurement.
#[must_use]
pub fn run_manifest(
    name: &str,
    seed: u64,
    config_digest: u64,
    obs: &Obs,
    events_processed: u64,
    outcome: RunOutcome,
) -> RunManifest {
    let metrics = obs.snapshot().to_json();
    let mut manifest = RunManifest::new(name, seed)
        .with_extra("metrics_digest", format!("{:016x}", fnv1a(metrics.as_bytes())));
    manifest.config_digest = config_digest;
    manifest.events_processed = events_processed;
    manifest.trace_events = obs.trace_events();
    manifest.outcome = format!("{outcome:?}");
    manifest
}

/// Writes the provenance sidecars of a traced run: the [`RunManifest`] at
/// `PATH.manifest.json` and the metrics snapshot at `PATH.metrics.json`.
/// The manifest carries the FNV-1a digest of the metrics JSON, so the
/// whole observation pipeline is covered by a byte-comparable record.
pub fn trace_sidecars(
    path: &str,
    name: &str,
    seed: u64,
    config_digest: u64,
    obs: &Obs,
    events_processed: u64,
    outcome: RunOutcome,
) {
    let metrics = obs.snapshot().to_json();
    let manifest = run_manifest(name, seed, config_digest, obs, events_processed, outcome);
    for (file, contents) in [
        (format!("{path}.manifest.json"), manifest.to_json()),
        (format!("{path}.metrics.json"), metrics),
    ] {
        if let Err(err) = std::fs::write(&file, contents) {
            eprintln!("warning: cannot write {file}: {err}");
        }
    }
}

/// Flags runs whose event loop stopped early: their measurements cover
/// less simulated time than the configuration asked for.
fn warn_on_truncation(name: &str, seed: u64, outcome: RunOutcome) {
    if outcome == RunOutcome::BudgetExhausted {
        eprintln!("warning: {name} seed {seed}: event budget exhausted, run truncated");
    }
}

/// Mean of a per-report scalar across replicated runs.
#[must_use]
pub fn mean_over<R>(reports: &[R], f: impl Fn(&R) -> f64) -> f64 {
    let s: Summary = reports.iter().map(f).collect();
    s.mean()
}

/// Prints the standard figure banner.
pub fn banner(figure: &str, caption: &str, scale: Scale) {
    println!("# {figure} — {caption}");
    println!(
        "# scale: {} | seeds per point: {}",
        if scale.paper {
            "paper (§5)"
        } else {
            "reduced (use --paper for full scale)"
        },
        scale.seeds
    );
}

/// Formats a float with enough precision for the tables.
#[must_use]
pub fn fmt(v: f64) -> String {
    if v.abs().to_bits() == 0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

/// Joins row cells with commas.
#[must_use]
pub fn row<I: IntoIterator<Item = String>>(cells: I) -> String {
    cells.into_iter().collect::<Vec<_>>().join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults() {
        let s = Scale {
            paper: false,
            seeds: 3,
            trace: None,
        };
        assert_eq!(s.sizes(), vec![500, 1_000, 2_000, 4_000]);
        assert_eq!(s.focus_size(), 2_000);
        let p = Scale {
            paper: true,
            seeds: 3,
            trace: None,
        };
        assert_eq!(p.sizes().last(), Some(&14_000));
        assert_eq!(p.focus_size(), 8_000);
        assert_eq!(p.observer_minutes(), 300.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.1234), "0.1234");
        assert_eq!(fmt(12.3456), "12.346");
        assert_eq!(fmt(1234.5), "1234.5");
        assert_eq!(row(["a".into(), "b".into()]), "a,b");
    }

    #[test]
    fn config_uses_seed() {
        let c = churn_config(AlgorithmKind::Rost, 1_000, 7);
        assert_eq!(c.seed, 7);
        assert_eq!(c.target_size, 1_000);
    }
}
