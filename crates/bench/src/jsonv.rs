//! A dependency-free JSON value parser for the analysis tooling.
//!
//! The workspace *emits* JSON by hand (string building keeps the
//! serialisation format auditable and byte-stable); `rom-prof` and the
//! determinism tests need to *read* those artifacts back. This module is
//! the matching reader: a small recursive-descent parser over the JSON
//! grammar with no third-party dependencies, returning a [`Json`] tree
//! with the handful of accessors the analyzers need.
//!
//! Numbers are kept as `f64`, which is lossless for every count the
//! workspace emits (they stay far below 2^53).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, widened to `f64`.
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` so iteration order is deterministic.
    Obj(BTreeMap<String, Json>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// Human-readable description.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses `input` as a single JSON document (trailing whitespace
    /// allowed, trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// The value under `key` when this is an object holding it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a number, when it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer, when it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract().to_bits() == 0 && *n <= 9.007_199_254_740_992e15 => {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This value as a string slice, when it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice, when it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// This value as an object map, when it is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Shorthand for `get(key).and_then(Json::as_u64)`.
    #[must_use]
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// Shorthand for `get(key).and_then(Json::as_f64)`.
    #[must_use]
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }

    /// Shorthand for `get(key).and_then(Json::as_str)`.
    #[must_use]
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(_) => {
                    // Advance one whole UTF-8 scalar; the input is a
                    // &str, so slicing at char boundaries is safe.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected four hex digits")),
            };
            cp = cp * 16 + digit;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse(r#""a\nbA""#).unwrap(),
            Json::Str("a\nbA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = Json::parse(r#"{"spans":[{"count":3,"path":"a/b"}],"seed":1}"#).unwrap();
        assert_eq!(doc.u64_field("seed"), Some(1));
        let spans = doc.get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].u64_field("count"), Some(3));
        assert_eq!(spans[0].str_field("path"), Some("a/b"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse(r#""\ud800""#).is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        // Raw UTF-8 passthrough and escaped surrogate pair both decode.
        assert_eq!(
            Json::parse(r#""😀""#).unwrap(),
            Json::Str("\u{1F600}".to_string())
        );
        let escaped = "\"\\uD83D\\uDE00\"";
        assert_eq!(
            Json::parse(escaped).unwrap(),
            Json::Str("\u{1F600}".to_string())
        );
    }

    #[test]
    fn u64_accessor_guards_range_and_fraction() {
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
    }
}
