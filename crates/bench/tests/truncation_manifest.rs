//! A truncated run must not masquerade as a completed measurement: the
//! manifest written next to a trace records the same [`RunOutcome`] the
//! report carries, so `BudgetExhausted` is visible in the provenance
//! record and not just as a transient stderr warning.

use rom_bench::run_manifest;
use rom_engine::{AlgorithmKind, ChurnConfig, ChurnSim};
use rom_obs::Obs;
use rom_sim::RunOutcome;

#[test]
fn truncated_run_records_budget_exhausted_in_manifest() {
    let mut cfg = ChurnConfig::quick(AlgorithmKind::Rost, 100).with_seed(3);
    cfg.max_events = Some(500);
    let report = ChurnSim::new(cfg).run();
    assert_eq!(
        report.outcome,
        RunOutcome::BudgetExhausted,
        "500 events cannot cover a 100-member session"
    );

    let manifest = run_manifest(
        "truncation",
        3,
        0,
        &Obs::disabled(),
        report.events_processed,
        report.outcome,
    );
    assert_eq!(manifest.outcome, format!("{:?}", report.outcome));
    assert_eq!(manifest.outcome, "BudgetExhausted");
    assert!(
        manifest.to_json().contains("\"outcome\":\"BudgetExhausted\""),
        "the serialized manifest must carry the truncation outcome"
    );
    assert_eq!(manifest.events_processed, report.events_processed);
}

#[test]
fn completed_run_manifest_matches_report_outcome() {
    let cfg = ChurnConfig::quick(AlgorithmKind::Rost, 100).with_seed(3);
    let report = ChurnSim::new(cfg).run();
    assert_ne!(report.outcome, RunOutcome::BudgetExhausted);

    let manifest = run_manifest(
        "truncation",
        3,
        0,
        &Obs::disabled(),
        report.events_processed,
        report.outcome,
    );
    assert_eq!(manifest.outcome, format!("{:?}", report.outcome));
}
