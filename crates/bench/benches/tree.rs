//! Criterion suite for the arena tree core: the four operations the PR-5
//! slab rewrite targets — id lookup, attach/detach, the ROST switch, and
//! the descendants walk — each at 100 / 1 000 / 10 000 / 100 000 members.
//!
//! Besides the usual criterion text report, the custom `main` writes
//! `BENCH_tree.json` (best-of-samples ns/op per operation and size) to the
//! working directory, mirroring how `headline_claims` records
//! `BENCH_headline.json`; CI archives both.

use criterion::{criterion_group, Criterion};
use rom_overlay::{Location, MemberProfile, MulticastTree, NodeId};
use rom_sim::{SimRng, SimTime};
use rom_stats::BoundedPareto;
use std::hint::black_box;
use std::time::Instant;

const SIZES: [u64; 4] = [100, 1_000, 10_000, 100_000];

/// Builds a min-depth-shaped tree of `n` members with paper bandwidths.
/// The source is capped at out-degree 8 (instead of the paper's 100) so
/// even the 100-member tree has real depth — otherwise every member hangs
/// off the root and the switch/descendants ops have nothing to do.
fn build_tree(n: u64, seed: u64) -> MulticastTree {
    let mut rng = SimRng::seed_from(seed);
    let bw = BoundedPareto::paper_bandwidth();
    let source = MemberProfile::new(NodeId::SOURCE, 8.0, SimTime::ZERO, 1e9, Location(0));
    let mut tree = MulticastTree::new(source, 1.0);
    // Frontier cursor over members in attach order. In this builder attach
    // order coincides with the breadth-first (depth, id) order — depths are
    // assigned non-decreasing in id — and a filled node never regains
    // capacity during the build, so the shallowest free parent only moves
    // forward. Same shape as the old `attached_by_depth().find(free)` scan
    // (amortized O(1) per attach instead of O(M), which made 100k builds
    // quadratic); `mega_smoke` asserts the shape equivalence.
    let mut order: Vec<NodeId> = vec![NodeId::SOURCE];
    let mut cursor = 0usize;
    for id in 1..=n {
        // Clamp below at one slot: with the capped source, a run of
        // free-riders could otherwise exhaust the capacity pool before
        // the tree reaches `n` members.
        let profile = MemberProfile::new(
            NodeId(id),
            bw.sample(&mut rng).max(1.0),
            SimTime::from_secs(id as f64),
            1e9,
            Location(id as u32),
        );
        while !tree.has_free_slot(order[cursor]) {
            cursor += 1;
        }
        tree.attach(profile, order[cursor]).expect("valid parent");
        order.push(NodeId(id));
    }
    tree
}

/// A parent that keeps a free slot available for repeated attach/detach.
fn free_parent(tree: &MulticastTree) -> NodeId {
    tree.attached_by_depth()
        .find(|&p| tree.has_free_slot(p))
        .expect("capacity available")
}

/// A node whose position swap with its parent is legal in both directions
/// (so a promote/demote pair restores the original shape).
fn switch_candidate(tree: &MulticastTree) -> NodeId {
    tree.attached_by_depth()
        .find(|&n| {
            n != tree.root()
                && tree.parent(n).is_some_and(|p| p != tree.root())
                && tree.capacity(n) >= 1
        })
        .expect("switchable node")
}

/// Sweep of `depth` + `profile` reads over every member id — the lookup
/// pattern of the join-decision loops.
fn lookup_pass(tree: &MulticastTree, ids: &[NodeId]) -> usize {
    let mut acc = 0usize;
    for &id in ids {
        acc += tree.depth(id).unwrap_or(0);
        acc += usize::from(tree.profile(id).is_some());
    }
    acc
}

fn bench_tree_core(c: &mut Criterion) {
    for &n in &SIZES {
        let mut tree = build_tree(n, n);
        let ids: Vec<NodeId> = tree.member_ids().collect();
        let parent = free_parent(&tree);
        let candidate = switch_candidate(&tree);
        let first_child: NodeId = tree.children(tree.root()).next().expect("root has a child");
        let mut scratch: Vec<NodeId> = Vec::new();
        let name = format!("tree_core_{n}");
        let mut group = c.benchmark_group(&name);
        group.bench_function("lookup_sweep", |b| {
            b.iter(|| black_box(lookup_pass(&tree, &ids)));
        });
        group.bench_function("descendants_walk", |b| {
            b.iter(|| {
                scratch.clear();
                tree.descendants_into(first_child, &mut scratch);
                black_box(scratch.len())
            });
        });
        group.bench_function("attach_detach", |b| {
            b.iter(|| {
                let joiner =
                    MemberProfile::new(NodeId(1_000_000), 2.0, SimTime::ZERO, 1e9, Location(1));
                tree.attach(joiner, parent).expect("free slot");
                black_box(tree.remove(NodeId(1_000_000)).expect("known member"));
            });
        });
        group.bench_function("switch_pair", |b| {
            b.iter(|| {
                let rec = tree
                    .swap_with_parent(candidate, |p| p.bandwidth)
                    .expect("legal switch");
                black_box(
                    tree.swap_with_parent(rec.demoted, |p| p.bandwidth)
                        .expect("legal switch back"),
                );
            });
        });
        group.finish();
    }
}

/// Keeps `cargo bench --workspace` affordable on one core: the simulation
/// benches dominate and 10–20 samples resolve them fine.
fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_tree_core
}

/// Best of 5 timed batches of `iters` calls, in ns per call.
fn measure<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

fn write_bench_json() {
    let mut rows = Vec::new();
    for &n in &SIZES {
        let mut tree = build_tree(n, n);
        let ids: Vec<NodeId> = tree.member_ids().collect();
        let parent = free_parent(&tree);
        let candidate = switch_candidate(&tree);
        let first_child: NodeId = tree.children(tree.root()).next().expect("root has a child");
        let mut scratch: Vec<NodeId> = Vec::new();
        let iters = (200_000 / n).max(20);

        let lookup = measure(iters, || {
            black_box(lookup_pass(&tree, &ids));
        }) / ids.len() as f64;
        rows.push((String::from("lookup"), n, lookup));

        let walk = measure(iters, || {
            scratch.clear();
            tree.descendants_into(first_child, &mut scratch);
            black_box(scratch.len());
        });
        rows.push((String::from("descendants"), n, walk));

        let attach = measure(iters, || {
            let joiner =
                MemberProfile::new(NodeId(1_000_000), 2.0, SimTime::ZERO, 1e9, Location(1));
            tree.attach(joiner, parent).expect("free slot");
            black_box(tree.remove(NodeId(1_000_000)).expect("known member"));
        });
        rows.push((String::from("attach_detach"), n, attach));

        let switch = measure(iters, || {
            let rec = tree
                .swap_with_parent(candidate, |p| p.bandwidth)
                .expect("legal switch");
            black_box(
                tree.swap_with_parent(rec.demoted, |p| p.bandwidth)
                    .expect("legal switch back"),
            );
        }) / 2.0;
        rows.push((String::from("switch"), n, switch));
    }

    let mut json = String::from("{\n  \"suite\": \"tree_core\",\n  \"unit\": \"ns_per_op\",\n  \"results\": [\n");
    for (i, (op, n, ns)) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"op\": \"{op}\", \"members\": {n}, \"ns_per_op\": {ns:.1}}}{sep}\n"
        ));
    }
    json.push_str("  ]\n}\n");
    // Cargo runs bench binaries from the package root; anchor the artifact
    // at the workspace root where CI archives it.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tree.json");
    if let Err(err) = std::fs::write(path, json) {
        eprintln!("error: cannot write BENCH_tree.json: {err}");
        std::process::exit(1);
    }
    println!("\n# tree microbench written to BENCH_tree.json");
}

fn main() {
    // `ROM_BENCH_JSON_ONLY=1` skips the criterion sweep and only refreshes
    // BENCH_tree.json — the fast path scripts/perf_smoke.sh uses to check
    // the switch-op bound without paying for a full statistical run.
    if std::env::var_os("ROM_BENCH_JSON_ONLY").is_none() {
        benches();
    }
    write_bench_json();
}
