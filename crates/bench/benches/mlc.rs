//! Micro-benchmarks of CER's group machinery: Algorithm 1 against the
//! random baseline, partial-tree reconstruction, and loss correlation.

use criterion::{criterion_group, criterion_main, Criterion};
use rom_cer::{
    find_mlc_group, loss_correlation, random_group, AncestorRecord, MlcOptions, PartialTree,
    StripePlan,
};
use rom_overlay::{paper_source, Location, MemberProfile, MulticastTree, NodeId};
use rom_sim::{SimRng, SimTime};
use std::hint::black_box;

/// A 1000-member tree plus 100 gossiped ancestor records — the working
/// set a member builds its MLC group from (§4.1).
fn setup() -> (MulticastTree, Vec<AncestorRecord>) {
    let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
    let mut rng = SimRng::seed_from(1);
    for id in 1..=1_000u64 {
        let profile = MemberProfile::new(NodeId(id), 2.0, SimTime::ZERO, 1e9, Location(id as u32));
        let parent = tree
            .attached_by_depth()
            .find(|&p| tree.has_free_slot(p))
            .unwrap();
        tree.attach(profile, parent).unwrap();
    }
    let members: Vec<NodeId> = tree.attached_by_depth().collect();
    let view = rng.sample(&members, 100);
    let records: Vec<AncestorRecord> = view
        .iter()
        .filter_map(|&m| AncestorRecord::from_tree(&tree, m))
        .collect();
    (tree, records)
}

fn bench_mlc(c: &mut Criterion) {
    let (tree, records) = setup();
    let mut rng = SimRng::seed_from(2);
    let options = MlcOptions::default();

    c.bench_function("partial_tree_from_100_records", |b| {
        b.iter(|| black_box(PartialTree::from_records(black_box(&records))));
    });

    let partial = PartialTree::from_records(&records);
    c.bench_function("mlc_group_k3", |b| {
        b.iter(|| black_box(find_mlc_group(&partial, 3, &options, &mut rng)));
    });
    c.bench_function("random_group_k3", |b| {
        b.iter(|| black_box(random_group(&partial, 3, &options, &mut rng)));
    });

    let members: Vec<NodeId> = tree.attached_by_depth().collect();
    c.bench_function("loss_correlation_pair", |b| {
        let a = members[members.len() / 2];
        let z = members[members.len() - 1];
        b.iter(|| black_box(loss_correlation(&tree, a, z)));
    });

    c.bench_function("stripe_plan_4_members", |b| {
        b.iter(|| black_box(StripePlan::plan_full_coverage(&[0.25, 0.4, 0.15, 0.3])));
    });
}

/// Keeps `cargo bench --workspace` affordable on one core: the simulation
/// benches dominate and 10–20 samples resolve them fine.
fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_mlc
}
criterion_main!(benches);
