//! Micro-benchmarks of the underlay substrate: topology generation,
//! oracle precomputation and delay queries.

use criterion::{criterion_group, criterion_main, Criterion};
use rom_net::{dijkstra, DelayOracle, TransitStubConfig, TransitStubNetwork, UnderlayId};
use rom_sim::SimRng;
use std::hint::black_box;

fn bench_underlay(c: &mut Criterion) {
    let mut rng = SimRng::seed_from(1);
    let cfg = TransitStubConfig::sized_for(4_000);
    let net = TransitStubNetwork::generate(&cfg, &mut rng);
    let oracle = DelayOracle::build(&net);
    let stubs: Vec<UnderlayId> = net.stub_nodes().collect();

    c.bench_function("generate_topology_4000_members", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(2);
            black_box(TransitStubNetwork::generate(&cfg, &mut rng))
        });
    });

    let mut group = c.benchmark_group("oracle");
    group.sample_size(20);
    group.bench_function("build", |b| {
        b.iter(|| black_box(DelayOracle::build(&net)));
    });
    group.finish();

    c.bench_function("oracle_delay_query", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 101) % stubs.len();
            let j = (i * 7 + 13) % stubs.len();
            black_box(oracle.delay_ms(stubs[i], stubs[j]))
        });
    });

    c.bench_function("dijkstra_full_graph", |b| {
        b.iter(|| black_box(dijkstra(net.graph(), UnderlayId(0))));
    });

    // Exercises the lazy-deletion guard in `dijkstra`: starting from a stub
    // leaf, the search relaxes through the stub domain before reaching the
    // transit mesh, so many heap entries are superseded before they pop and
    // the stale-entry skip (`dist > best` → continue) does real work. A
    // regression there shows up here long before it moves the oracle-build
    // numbers.
    c.bench_function("dijkstra_stale_entry_skip", |b| {
        let src = *stubs.last().expect("network has stub nodes");
        b.iter(|| black_box(dijkstra(net.graph(), src)));
    });
}

/// Keeps `cargo bench --workspace` affordable on one core: the simulation
/// benches dominate and 10–20 samples resolve them fine.
fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_underlay
}
criterion_main!(benches);
