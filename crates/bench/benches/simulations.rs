//! End-to-end benchmark: a small churn simulation per algorithm, and a
//! small streaming simulation — the unit of work behind every figure.

use criterion::{criterion_group, criterion_main, Criterion};
use rom_engine::{AlgorithmKind, ChurnConfig, ChurnSim, StreamingConfig, StreamingSim};
use std::hint::black_box;

fn small_churn(alg: AlgorithmKind) -> ChurnConfig {
    let mut cfg = ChurnConfig::quick(alg, 200);
    cfg.warmup_secs = 120.0;
    cfg.measure_secs = 300.0;
    cfg
}

fn bench_simulations(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_200_members");
    group.sample_size(10);
    for alg in AlgorithmKind::ALL {
        group.bench_function(alg.name(), |b| {
            b.iter(|| black_box(ChurnSim::new(small_churn(alg)).run()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("streaming_200_members");
    group.sample_size(10);
    group.bench_function("cer_k3", |b| {
        b.iter(|| {
            let cfg = StreamingConfig::paper(small_churn(AlgorithmKind::MinimumDepth), 3);
            black_box(StreamingSim::new(cfg).run())
        });
    });
    group.finish();
}

/// Keeps `cargo bench --workspace` affordable on one core: the simulation
/// benches dominate and 10–20 samples resolve them fine.
fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_simulations
}
criterion_main!(benches);
