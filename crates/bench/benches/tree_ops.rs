//! Micro-benchmarks of the multicast-tree operations whose costs the
//! paper's protocol arguments rest on: joins under each algorithm, abrupt
//! removal, and ROST's switching operation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rom_overlay::algorithms::{
    JoinContext, LongestFirst, MinimumDepth, RelaxedBandwidthOrdered, RelaxedTimeOrdered,
    TreeAlgorithm,
};
use rom_overlay::{paper_source, Location, MemberProfile, MulticastTree, NodeId, ZeroProximity};
use rom_sim::{SimRng, SimTime};
use rom_stats::BoundedPareto;
use std::hint::black_box;

/// Builds a min-depth-shaped tree of `n` members with paper bandwidths.
fn build_tree(n: u64, seed: u64) -> MulticastTree {
    let mut rng = SimRng::seed_from(seed);
    let bw = BoundedPareto::paper_bandwidth();
    let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
    for id in 1..=n {
        let profile = MemberProfile::new(
            NodeId(id),
            bw.sample(&mut rng),
            SimTime::from_secs(id as f64),
            1e9,
            Location(id as u32),
        );
        // Shallowest member with a free slot (the attached_by_depth order
        // guarantees we find one near the top).
        let parent = tree
            .attached_by_depth()
            .find(|&p| tree.has_free_slot(p))
            .expect("capacity available");
        tree.attach(profile, parent).expect("valid parent");
    }
    tree
}

fn bench_joins(c: &mut Criterion) {
    let tree = build_tree(2_000, 1);
    let candidates: Vec<NodeId> = tree.attached_by_depth().collect();
    let joiner = MemberProfile::new(
        NodeId(999_999),
        2.0,
        SimTime::from_secs(5_000.0),
        1e9,
        Location(7),
    );
    let now = SimTime::from_secs(10_000.0);

    let mut group = c.benchmark_group("join_decision_2000");
    group.bench_function("min_depth", |b| {
        b.iter(|| {
            let ctx = JoinContext {
                tree: &tree,
                joiner: &joiner,
                candidates: black_box(&candidates),
                now,
            };
            black_box(MinimumDepth.select(&ctx, &ZeroProximity))
        });
    });
    group.bench_function("longest_first", |b| {
        b.iter(|| {
            let ctx = JoinContext {
                tree: &tree,
                joiner: &joiner,
                candidates: black_box(&candidates),
                now,
            };
            black_box(LongestFirst.select(&ctx, &ZeroProximity))
        });
    });
    group.bench_function("relaxed_bw_ordered", |b| {
        b.iter(|| {
            let ctx = JoinContext {
                tree: &tree,
                joiner: &joiner,
                candidates: black_box(&candidates),
                now,
            };
            black_box(RelaxedBandwidthOrdered.select(&ctx, &ZeroProximity))
        });
    });
    group.bench_function("relaxed_time_ordered", |b| {
        b.iter(|| {
            let ctx = JoinContext {
                tree: &tree,
                joiner: &joiner,
                candidates: black_box(&candidates),
                now,
            };
            black_box(RelaxedTimeOrdered.select(&ctx, &ZeroProximity))
        });
    });
    group.finish();
}

fn bench_mutations(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_mutation_10000");
    group.bench_function("attach_detach", |b| {
        b.iter_batched(
            || build_tree(10_000, 2),
            |mut tree| {
                let parent = tree
                    .attached_by_depth()
                    .find(|&p| tree.has_free_slot(p))
                    .unwrap();
                let profile =
                    MemberProfile::new(NodeId(1_000_000), 2.0, SimTime::ZERO, 1e9, Location(1));
                tree.attach(profile, parent).unwrap();
                black_box(tree.remove(NodeId(1_000_000)).unwrap());
            },
            BatchSize::LargeInput,
        );
    });
    group.bench_function("abrupt_removal_with_subtree", |b| {
        b.iter_batched(
            || build_tree(10_000, 3),
            |mut tree| {
                // Remove a member from the shallow layers (big subtree).
                let victim = tree.layer(1).next().unwrap();
                black_box(tree.remove(victim).unwrap());
            },
            BatchSize::LargeInput,
        );
    });
    group.bench_function("rost_switch", |b| {
        b.iter_batched(
            || build_tree(10_000, 4),
            |mut tree| {
                // Find any node eligible for a position swap.
                let candidate = tree
                    .attached_by_depth()
                    .find(|&n| {
                        n != tree.root()
                            && tree.parent(n).is_some_and(|p| p != tree.root())
                            && tree.capacity(n) >= 1
                    })
                    .unwrap();
                black_box(tree.swap_with_parent(candidate, |p| p.bandwidth).ok());
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

/// Keeps `cargo bench --workspace` affordable on one core: the simulation
/// benches dominate and 10–20 samples resolve them fine.
fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_joins, bench_mutations
}
criterion_main!(benches);
