//! Micro-benchmarks of the sweep engine itself: the same 4-seed churn
//! replicate run serially (`jobs = 1`) and fanned over 2 and 4 workers.
//! The parallel numbers bound the speedup every figure binary inherits
//! from `--jobs`; the per-cell work is identical, so the ratio between
//! the rows is scheduler overhead plus available parallelism.

use criterion::{criterion_group, criterion_main, Criterion};
use rom_bench::{CellOut, Sweep};
use rom_engine::{AlgorithmKind, ChurnConfig, ChurnSim};
use std::hint::black_box;

/// One 4-seed replicate of a small-but-real churn run.
fn replicate(jobs: usize) -> usize {
    let out = Sweep::with_jobs(jobs).run(1, 4, |cell| {
        let mut cfg = ChurnConfig::quick(AlgorithmKind::Rost, 150).with_seed(cell.seed);
        cfg.warmup_secs = 150.0;
        cfg.measure_secs = 400.0;
        CellOut::plain(ChurnSim::new(cfg).run())
    });
    out.into_single_point().len()
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    for jobs in [1usize, 2, 4] {
        group.bench_function(&format!("churn_4seeds_jobs{jobs}"), |b| {
            b.iter(|| black_box(replicate(jobs)));
        });
    }
    group.finish();
}

/// Keeps `cargo bench --workspace` affordable: each simulation cell runs
/// hundreds of milliseconds, so a handful of samples resolves the ratio.
fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_sweep
}
criterion_main!(benches);
