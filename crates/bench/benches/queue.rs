//! Criterion suite for the ladder event queue (PR 10): bulk fill, full
//! drain and the hold-model steady state (pop one, schedule its
//! successor — the canonical DES access pattern) at 1k / 100k / 1M
//! pending events, plus a tie-flood (every key identical, the FIFO
//! tie-break path) at 100k.
//!
//! Besides the usual criterion text report, the custom `main` writes
//! `BENCH_queue.json` (best-of-samples ns/op per workload and depth) to
//! the workspace root, mirroring `BENCH_tree.json`; CI archives both.

use criterion::{criterion_group, Criterion};
use rom_sim::{EventQueue, SimTime};
use std::hint::black_box;
use std::time::Instant;

const DEPTHS: [u64; 3] = [1_000, 100_000, 1_000_000];

/// Deterministic xorshift stream of exponential-ish hold offsets in
/// [0, 10) seconds — the mostly-monotone shape a churn schedule has.
struct Holds(u64);

impl Holds {
    fn next(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64 * 10.0
    }
}

/// A queue pre-filled to `n` pending events with the standard stream.
fn filled(n: u64) -> EventQueue<u64> {
    let mut q = EventQueue::with_capacity(n as usize);
    let mut holds = Holds(0x2545_f491_4f6c_dd1d);
    let mut now = SimTime::ZERO;
    for i in 0..n {
        now += holds.next();
        q.push(now, i);
    }
    q
}

fn bench_queue(c: &mut Criterion) {
    for &n in &DEPTHS {
        let mut q = filled(n);
        let mut holds = Holds(0x9e37_79b9_7f4a_7c15);
        let mut group = c.benchmark_group(format!("queue_{n}").as_str());
        group.bench_function("hold_cycle", |b| {
            b.iter(|| {
                let (t, id) = q.pop().expect("pre-filled");
                q.push(t + holds.next(), black_box(id));
            });
        });
        group.finish();
    }

    let mut group = c.benchmark_group("queue_tie_flood");
    group.bench_function("push_pop_same_key", |b| {
        let mut q = filled(100_000);
        b.iter(|| {
            let (t, id) = q.pop().expect("pre-filled");
            // Re-push at the exact popped time: every entry competes on
            // the (time, seq) FIFO tie-break alone.
            q.push(t, black_box(id));
        });
    });
    group.finish();
}

/// Keeps `cargo bench --workspace` affordable on one core (same
/// discipline as `benches/tree.rs`).
fn short_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_queue
}

/// Best of `reps` timed runs of `f` over `n` ops, in ns per op. The
/// fill/drain workloads rebuild real state per run, so unlike
/// `benches/tree.rs` the per-op loop body is `f`'s responsibility.
fn measure_total<F: FnMut() -> u64>(reps: u64, mut f: F) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let ops = f();
        let ns = start.elapsed().as_nanos() as f64 / ops as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

fn write_bench_json() {
    let mut rows = Vec::new();
    for &n in &DEPTHS {
        // Fewer repetitions at the depths where one run is already long.
        let reps = if n >= 1_000_000 { 3 } else { 5 };

        let fill = measure_total(reps, || {
            let q = filled(n);
            black_box(q.len()) as u64
        });
        rows.push((String::from("fill"), n, fill));

        let fill_and_drain = measure_total(reps, || {
            let mut q = filled(n);
            let mut ops = 0u64;
            while let Some((t, id)) = q.pop() {
                black_box((t, id));
                ops += 1;
            }
            ops
        });
        // The rebuild cost is measured above; isolate the drain (clamped:
        // the two runs are noisy-independent, so the difference can dip
        // below zero on a fast drain).
        let drain = (fill_and_drain - fill).max(0.0);
        rows.push((String::from("drain"), n, drain));

        let mut q = filled(n);
        let mut holds = Holds(0x9e37_79b9_7f4a_7c15);
        let hold = measure_total(reps, || {
            for _ in 0..100_000u64 {
                let (t, id) = q.pop().expect("pre-filled");
                q.push(t + holds.next(), black_box(id));
            }
            100_000
        });
        rows.push((String::from("hold"), n, hold));
    }

    let mut q = filled(100_000);
    let tie = measure_total(5, || {
        for _ in 0..100_000u64 {
            let (t, id) = q.pop().expect("pre-filled");
            q.push(t, black_box(id));
        }
        100_000
    });
    rows.push((String::from("tie_flood"), 100_000, tie));

    let mut json =
        String::from("{\n  \"suite\": \"event_queue\",\n  \"unit\": \"ns_per_op\",\n  \"results\": [\n");
    for (i, (op, n, ns)) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"op\": \"{op}\", \"pending\": {n}, \"ns_per_op\": {ns:.1}}}{sep}\n"
        ));
    }
    json.push_str("  ]\n}\n");
    // Cargo runs bench binaries from the package root; anchor the artifact
    // at the workspace root where CI archives it.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_queue.json");
    if let Err(err) = std::fs::write(path, json) {
        eprintln!("error: cannot write BENCH_queue.json: {err}");
        std::process::exit(1);
    }
    println!("\n# queue microbench written to BENCH_queue.json");
}

fn main() {
    // `ROM_BENCH_JSON_ONLY=1` skips the criterion sweep and only refreshes
    // BENCH_queue.json — the fast path for CI and the perf smoke.
    if std::env::var_os("ROM_BENCH_JSON_ONLY").is_none() {
        benches();
    }
    write_bench_json();
}
