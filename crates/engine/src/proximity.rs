//! Bridges `rom-overlay`'s proximity hook to `rom-net`'s delay oracle.

use rom_net::{DelayOracle, UnderlayId};
use rom_overlay::{Location, Proximity};

/// A [`Proximity`] backed by a transit-stub [`DelayOracle`].
#[derive(Debug, Clone, Copy)]
pub struct OracleProximity<'a> {
    oracle: &'a DelayOracle,
}

impl<'a> OracleProximity<'a> {
    /// Wraps an oracle.
    #[must_use]
    pub fn new(oracle: &'a DelayOracle) -> Self {
        OracleProximity { oracle }
    }

    /// The underlying oracle.
    #[must_use]
    pub fn oracle(&self) -> &'a DelayOracle {
        self.oracle
    }
}

impl Proximity for OracleProximity<'_> {
    fn delay_ms(&self, a: Location, b: Location) -> f64 {
        self.oracle.delay_ms(UnderlayId(a.0), UnderlayId(b.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rom_net::{TransitStubConfig, TransitStubNetwork};
    use rom_sim::SimRng;

    #[test]
    fn adapter_matches_oracle() {
        let mut rng = SimRng::seed_from(1);
        let net = TransitStubNetwork::generate(&TransitStubConfig::small(), &mut rng);
        let oracle = DelayOracle::build(&net);
        let prox = OracleProximity::new(&oracle);
        let stubs: Vec<UnderlayId> = net.stub_nodes().collect();
        let (a, b) = (stubs[0], stubs[7]);
        assert_eq!(
            prox.delay_ms(Location(a.0), Location(b.0)),
            oracle.delay_ms(a, b)
        );
        assert_eq!(prox.delay_ms(Location(a.0), Location(a.0)), 0.0);
    }
}
