//! The churn workload: equilibrium seeding and Poisson arrivals.
//!
//! §5: member bandwidths follow a Bounded Pareto, lifetimes a lognormal,
//! and "according to Little's Law, the node arrival rate λ is determined
//! from dividing M by the mean value of lifetime". Members attach to
//! randomly selected stub nodes of the underlay.
//!
//! Rather than churning from an empty overlay until the population
//! converges (impractically slow under a heavy-tailed lifetime), the
//! workload seeds the simulation with the population an organic run of
//! length `H` (the *virtual history*) would contain: member ages follow
//! the stationary age density `S(a)/∫₀ᴴ S` truncated at `H` (where `S` is
//! the lifetime survival function), and each member's total lifetime is
//! drawn conditioned on having survived its age. Truncation matters: the
//! untruncated stationary process contains members weeks old that never
//! churn, which no finite simulation — the paper's included — would ever
//! see.

use rom_net::{TransitStubNetwork, UnderlayId};
use rom_overlay::{Location, MemberProfile, NodeId};
use rom_sim::{SimRng, SimTime};
use rom_stats::{BoundedPareto, LogNormal};

/// Generates member profiles for one simulation run.
#[derive(Debug)]
pub struct Workload {
    bandwidth: BoundedPareto,
    lifetime: LogNormal,
    arrival_rate: f64,
    history_secs: f64,
    stubs: Vec<UnderlayId>,
    rng: SimRng,
    next_id: u64,
}

impl Workload {
    /// Creates a workload drawing member locations from `net`'s stub
    /// nodes.
    ///
    /// # Panics
    ///
    /// Panics if the arrival rate is not positive or the network has no
    /// stub nodes.
    #[must_use]
    pub fn new(
        bandwidth: BoundedPareto,
        lifetime: LogNormal,
        arrival_rate: f64,
        history_secs: f64,
        net: &TransitStubNetwork,
        rng: SimRng,
    ) -> Self {
        assert!(arrival_rate > 0.0, "arrival rate must be positive");
        assert!(history_secs > 0.0, "virtual history must be positive");
        let stubs: Vec<UnderlayId> = net.stub_nodes().collect();
        assert!(!stubs.is_empty(), "network has no stub nodes");
        Workload {
            bandwidth,
            lifetime,
            arrival_rate,
            history_secs,
            stubs,
            rng,
            next_id: 1, // id 0 is the source
        }
    }

    /// The configured Little's-law arrival rate.
    #[must_use]
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    /// Picks a random stub location (also used to place the source).
    pub fn random_location(&mut self) -> Location {
        let stub = self.stubs[self.rng.index(self.stubs.len())];
        Location(stub.0)
    }

    /// The stub nodes members can attach to. Chaos-born members pick from
    /// this list with their own RNG, leaving the workload stream
    /// untouched.
    #[must_use]
    pub fn stubs(&self) -> &[UnderlayId] {
        &self.stubs
    }

    fn fresh_id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Draws the next inter-arrival gap (exponential at rate λ).
    pub fn next_interarrival(&mut self) -> f64 {
        self.rng.exponential(self.arrival_rate)
    }

    /// Creates the profile of a member arriving at `now`.
    pub fn arrival(&mut self, now: SimTime) -> MemberProfile {
        let id = self.fresh_id();
        let bandwidth = self.bandwidth.sample(&mut self.rng);
        let lifetime = self.lifetime.sample(&mut self.rng).max(1.0);
        let location = self.random_location();
        MemberProfile::new(id, bandwidth, now, lifetime, location)
    }

    /// Creates a member with explicit properties (the Figs. 6/9 observer).
    pub fn custom_arrival(&mut self, now: SimTime, bandwidth: f64, lifetime: f64) -> MemberProfile {
        let id = self.fresh_id();
        let location = self.random_location();
        MemberProfile::new(id, bandwidth, now, lifetime, location)
    }

    /// Samples a member age from the truncated stationary age density
    /// `S(a) / ∫₀ᴴ S` by rejection: `a ~ U(0, H)` accepted with
    /// probability `S(a)`.
    fn stationary_age(&mut self) -> f64 {
        loop {
            let a = self.rng.uniform() * self.history_secs;
            if self.rng.uniform() < 1.0 - self.lifetime.cdf(a) {
                return a;
            }
        }
    }

    /// Seeds an equilibrium population of `count` members as of time 0:
    /// each has an age from the truncated stationary age distribution (so
    /// `join_time = -age ≤ 0`) and a total lifetime drawn conditioned on
    /// having survived that age, guaranteeing a positive residual.
    /// Members are returned oldest-first — the order they would have
    /// arrived in.
    pub fn equilibrium_population(&mut self, count: usize) -> Vec<MemberProfile> {
        let mut members = Vec::with_capacity(count);
        for _ in 0..count {
            let id = self.fresh_id();
            let bandwidth = self.bandwidth.sample(&mut self.rng);
            let age = self.stationary_age();
            let total = self
                .lifetime
                .sample_conditional_exceeding(age, &mut self.rng)
                .max(age + 1.0);
            let location = self.random_location();
            members.push(MemberProfile::new(
                id,
                bandwidth,
                SimTime::from_secs(-age),
                total,
                location,
            ));
        }
        members.sort_by_key(|m| m.join_time);
        members
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rom_net::TransitStubConfig;

    fn workload(seed: u64) -> Workload {
        let mut rng = SimRng::seed_from(seed);
        let net = TransitStubNetwork::generate(&TransitStubConfig::small(), &mut rng);
        Workload::new(
            BoundedPareto::paper_bandwidth(),
            LogNormal::paper_lifetime(),
            0.5,
            14_400.0,
            &net,
            rng.fork("workload"),
        )
    }

    #[test]
    fn arrivals_have_fresh_ids_and_valid_fields() {
        let mut w = workload(1);
        let a = w.arrival(SimTime::from_secs(10.0));
        let b = w.arrival(SimTime::from_secs(11.0));
        assert_ne!(a.id, b.id);
        assert!(a.id.0 >= 1);
        assert!(a.bandwidth >= 0.5 && a.bandwidth <= 100.0);
        assert!(a.lifetime >= 1.0);
        assert_eq!(a.join_time, SimTime::from_secs(10.0));
    }

    #[test]
    fn interarrival_mean_matches_rate() {
        let mut w = workload(2);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| w.next_interarrival()).sum();
        let mean = total / f64::from(n);
        assert!(
            (mean - 2.0).abs() < 0.1,
            "mean gap {mean} should be ≈ 1/0.5"
        );
    }

    #[test]
    fn equilibrium_population_is_aged_and_alive() {
        let mut w = workload(3);
        let pop = w.equilibrium_population(500);
        assert_eq!(pop.len(), 500);
        for m in &pop {
            // Joined in the past, departs in the future.
            assert!(m.join_time <= SimTime::ZERO);
            assert!(m.departure_time() > SimTime::ZERO, "{:?}", m);
        }
        // Oldest first.
        for pair in pop.windows(2) {
            assert!(pair[0].join_time <= pair[1].join_time);
        }
        // Ids unique.
        let mut ids: Vec<u64> = pop.iter().map(|m| m.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 500);
    }

    #[test]
    fn equilibrium_ages_are_heavy_tailed() {
        // The stationary age distribution under a heavy-tailed lifetime
        // has many very old members — the property time-ordering exploits.
        let mut w = workload(4);
        let pop = w.equilibrium_population(2_000);
        let old = pop
            .iter()
            .filter(|m| m.age(SimTime::ZERO) > 3_600.0)
            .count();
        assert!(
            old > 100,
            "expected a sizeable fraction of members older than an hour, got {old}"
        );
        // ...but never older than the virtual history.
        assert!(pop.iter().all(|m| m.age(SimTime::ZERO) <= 14_400.0));
    }

    #[test]
    fn custom_arrival_respects_spec() {
        let mut w = workload(5);
        let obs = w.custom_arrival(SimTime::from_secs(50.0), 2.0, 18_000.0);
        assert_eq!(obs.bandwidth, 2.0);
        assert_eq!(obs.lifetime, 18_000.0);
        assert_eq!(obs.join_time, SimTime::from_secs(50.0));
    }

    #[test]
    fn session_lengths_stay_within_sampling_bounds() {
        let mut w = workload(7);
        for i in 0..5_000 {
            let m = w.arrival(SimTime::from_secs(f64::from(i)));
            assert!(m.lifetime.is_finite());
            assert!(
                m.lifetime >= 1.0,
                "session length {} below the 1 s floor",
                m.lifetime
            );
        }
        // Conditioned equilibrium draws: total session strictly exceeds
        // the already-lived age, and the age never exceeds the history.
        let pop = w.equilibrium_population(2_000);
        for m in &pop {
            let age = m.age(SimTime::ZERO);
            assert!(age <= 14_400.0, "age {age} beyond the virtual history");
            assert!(
                m.lifetime >= age + 1.0,
                "total session {} does not cover age {age}",
                m.lifetime
            );
        }
    }

    #[test]
    fn join_process_is_deterministic_per_seed() {
        let runs: Vec<(Vec<u64>, Vec<String>)> = [11u64, 11, 12]
            .iter()
            .map(|&seed| {
                let mut w = workload(seed);
                let gaps: Vec<u64> = (0..200)
                    .map(|_| w.next_interarrival().to_bits())
                    .collect();
                let profiles: Vec<String> = (0..200)
                    .map(|i| format!("{:?}", w.arrival(SimTime::from_secs(f64::from(i)))))
                    .collect();
                (gaps, profiles)
            })
            .collect();
        assert_eq!(runs[0].0, runs[1].0, "same seed, same inter-arrival gaps");
        assert_eq!(runs[0].1, runs[1].1, "same seed, same member profiles");
        assert_ne!(runs[0].0, runs[2].0, "different seeds must diverge");
        assert_ne!(runs[0].1, runs[2].1);
    }

    #[test]
    fn locations_are_stub_nodes() {
        let mut rng = SimRng::seed_from(6);
        let net = TransitStubNetwork::generate(&TransitStubConfig::small(), &mut rng);
        let transit = net.transit_count() as u32;
        let mut w = Workload::new(
            BoundedPareto::paper_bandwidth(),
            LogNormal::paper_lifetime(),
            1.0,
            14_400.0,
            &net,
            rng.fork("w"),
        );
        for _ in 0..100 {
            let loc = w.random_location();
            assert!(loc.0 >= transit, "location {loc} is a transit node");
        }
    }
}
