//! The churn-driven tree simulation behind Figures 4–11.
//!
//! Members arrive in a Poisson stream, live out lognormal lifetimes, and
//! depart abruptly; the configured algorithm places every join and rejoin,
//! and (for ROST) runs periodic switching checks. The simulator measures:
//!
//! - **streaming disruptions** per member lifetime (Figs. 4–6): every
//!   abrupt departure disrupts each of its tree descendants once;
//! - **service delay** and **network stretch** (Figs. 7–9): overlay path
//!   delay from the source, and its ratio to the direct unicast delay;
//! - **protocol overhead** (Figs. 10–11): reconnections forced by the
//!   optimization machinery itself — relaxed-ordered evictions and ROST
//!   switch reparentings — as opposed to failure-induced rejoins.

use std::collections::BTreeMap;

use rom_chaos::{
    pick_attached, pick_cluster, ChaosAction, GilbertElliott, InvariantRegistry, RejoinCause,
    Scenario, Signal, CHAOS_ID_BASE,
};
use rom_net::{DelayOracle, TransitStubNetwork, UnderlayId};
use rom_overlay::algorithms::{
    JoinContext, JoinDecision, LongestFirst, MinimumDepth, RelaxedBandwidthOrdered,
    RelaxedTimeOrdered, TreeAlgorithm,
};
use rom_obs::{Level, Obs, Subsystem, TraceEvent};
use rom_overlay::{paper_source, Location, MemberProfile, MulticastTree, NodeId, ViewSampler};
use rom_rost::{OpId, RostJoin, SwitchOutcome, SwitchingProtocol};
use rom_sim::{RunOutcome, Schedule, SimRng, SimTime, Simulation};
use rom_stats::{Summary, TimeSeries};

use crate::config::{AlgorithmKind, ChurnConfig, StreamingConfig};
use crate::proximity::OracleProximity;
use crate::streaming::{LinkEpisode, StreamingReport, StreamingState};
use crate::workload::Workload;

/// Events of the churn simulation.
#[derive(Debug, Clone, PartialEq)]
enum Event {
    /// A new member arrives (and the next arrival is scheduled).
    Arrival,
    /// A member's session ends abruptly.
    Departure(NodeId),
    /// An orphan subtree root (re)tries to find a parent.
    Rejoin(NodeId),
    /// A rejected new member retries its join.
    JoinRetry(NodeId),
    /// A ROST member runs its periodic switching check.
    SwitchCheck(NodeId),
    /// Locks of a completed switch are released.
    ReleaseLocks(OpId),
    /// Periodic tree-quality sampling (delay, stretch, depth).
    Sample,
    /// The tracked typical member joins (Figs. 6 and 9).
    ObserverJoin,
    /// A scheduled fault injection fires (index into the scenario).
    ChaosInject(usize),
    /// A chaos-forced abrupt failure (always uncooperative, and drawn
    /// from the chaos RNG stream rather than the decisions stream).
    ChaosFail(NodeId),
    /// A chaos-born member arrives (flash crowds, flap replacements).
    ChaosJoin,
    /// One cycle of membership flapping. The payload is boxed: it is the
    /// widest variant by far and fires a handful of times per run, while
    /// its inline size would be carried by every one of the millions of
    /// entries in a `--mega` event queue.
    ChaosFlap(Box<FlapSpec>),
    /// An armed link-pathology episode on this member's access link runs
    /// out: classify and repair the losses, then disarm.
    ChaosLinkEnd(NodeId),
}

/// Parameters of one [`Event::ChaosFlap`] cycle, boxed out of the event
/// so the rare chaos variant does not widen every queue entry.
#[derive(Debug, Clone, PartialEq)]
struct FlapSpec {
    /// Members failed this cycle.
    members: usize,
    /// Seconds until the next cycle.
    period_secs: f64,
    /// Cycles still to run, including this one.
    cycles_left: usize,
}

/// Per-member lifetime counters booked into the report when the member
/// departs inside the measurement window.
#[derive(Debug, Clone, Copy, Default)]
struct MemberTally {
    /// Streaming disruptions experienced (Figs. 4–6).
    disruptions: u32,
    /// Optimization- or eviction-forced reconnections (Fig. 10).
    reconnections: u32,
}

/// The trace of the tracked "typical member" (Figs. 6 and 9).
#[derive(Debug, Clone, Default)]
pub struct ObserverTrace {
    /// Minutes since the observer joined, one entry per disruption it
    /// experienced (plot cumulatively for Fig. 6).
    pub disruption_minutes: Vec<f64>,
    /// `(minutes since join, service delay ms)` samples (Fig. 9).
    pub delay_samples: Vec<(f64, f64)>,
}

/// Everything a churn run measures.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// The algorithm that produced the tree.
    pub algorithm: AlgorithmKind,
    /// Configured steady-state size M.
    pub target_size: usize,
    /// Mean attached population over the measurement window.
    pub population: Summary,
    /// Disruptions experienced per member lifetime (recorded at each
    /// departure inside the window) — Fig. 4's y-axis.
    pub disruptions_per_lifetime: Summary,
    /// The raw per-member disruption counts, for Fig. 5's CDF.
    pub disruption_counts: Vec<f64>,
    /// Total disruption events observed inside the measurement window.
    pub disruption_events: u64,
    /// Length of the measurement window (seconds).
    pub measure_secs: f64,
    /// Mean member lifetime of the workload (seconds).
    pub mean_lifetime_secs: f64,
    /// Optimization-induced reconnections per member lifetime — Fig. 10.
    pub reconnections_per_lifetime: Summary,
    /// Per-member-sample service delay in ms — Fig. 7.
    pub service_delay_ms: Summary,
    /// Per-member-sample network stretch — Fig. 8.
    pub stretch: Summary,
    /// Per-member-sample tree depth.
    pub depth: Summary,
    /// Completed ROST switches over the whole run (including warmup,
    /// where the seeded tree does most of its reordering).
    pub switches: u64,
    /// Eviction (replace/usurp) operations over the whole run.
    pub evictions: u64,
    /// Joins/rejoins that found no capacity in their view and had to
    /// retry.
    pub rejections: u64,
    /// The typical-member trace, when an observer was configured.
    pub observer: Option<ObserverTrace>,
    /// How the event loop ended ([`RunOutcome::HorizonReached`] for a
    /// normal run; anything else signals a truncated experiment).
    pub outcome: RunOutcome,
    /// Total events the simulation loop processed.
    pub events_processed: u64,
    /// Exact peak number of pending events the scheduler queue held at any
    /// point in the run (the sampled `sim.queue_depth` histogram is a
    /// per-dispatch floor of this).
    pub queue_high_water: u64,
    /// Deterministic byte footprint of that peak: `queue_high_water`
    /// times the per-entry size of the scheduler queue. Unlike peak RSS
    /// (allocator- and platform-dependent, quarantined to `BENCH_*.json`)
    /// this is reproducible from the seed.
    pub queue_bytes_high_water: u64,
}

/// The churn simulator. Construct with [`ChurnSim::new`], execute with
/// [`ChurnSim::run`].
///
/// # Examples
///
/// ```
/// use rom_engine::{AlgorithmKind, ChurnConfig, ChurnSim};
///
/// let mut cfg = ChurnConfig::quick(AlgorithmKind::Rost, 150);
/// cfg.warmup_secs = 120.0;
/// cfg.measure_secs = 300.0;
/// let report = ChurnSim::new(cfg).run();
/// assert!(report.population.mean() > 50.0);
/// assert!(report.service_delay_ms.mean() > 0.0);
/// ```
#[derive(Debug)]
pub struct ChurnSim {
    cfg: ChurnConfig,
    oracle: DelayOracle,
    workload: Workload,
    tree: MulticastTree,
    algorithm: Algorithm,
    sampler: ViewSampler,
    rng: SimRng,
    rost: SwitchingProtocol,

    /// All current members (attached or orphaned), for view sampling.
    live: Vec<NodeId>,
    live_pos: BTreeMap<NodeId, usize>,
    /// Members that were rejected at join and are waiting to retry.
    pending: BTreeMap<NodeId, MemberProfile>,
    /// Members displaced by an eviction inside the current event, awaiting
    /// their rejoin to be scheduled once the scheduler is in reach.
    rejoin_backlog: Vec<NodeId>,

    window_start: SimTime,
    window_end: SimTime,

    /// Per-member lifetime disruption/reconnection counts, merged into a
    /// single map (one tree walk and one allocation per member instead of
    /// two — the dominant per-member state at the `--mega` scale).
    tallies: BTreeMap<NodeId, MemberTally>,
    observer_id: Option<NodeId>,
    observer_join: SimTime,
    observer_disruptions: TimeSeries,
    observer_delay: TimeSeries,

    /// Streaming layer (Figs. 12-14); `None` for pure tree experiments.
    streaming: Option<StreamingState>,

    /// Fault-injection driver; `None` unless a scenario is configured.
    chaos: Option<ChaosState>,
    /// Armed invariant registry; `None` unless running via
    /// [`ChurnSim::run_checked`].
    invariants: Option<InvariantRegistry>,

    /// Observability pipeline; disabled (and free) unless installed via
    /// [`ChurnSim::run_with_obs`].
    obs: Obs,

    report: ChurnReport,
}

/// Driver state for a configured fault-injection scenario.
#[derive(Debug)]
struct ChaosState {
    /// The plan whose injections were scheduled during seeding.
    scenario: Scenario,
    /// Dedicated RNG fork ("chaos"): victim picks, burst spacing and
    /// chaos-member profiles never perturb the organic workload or
    /// decisions streams.
    rng: SimRng,
    /// Next id for chaos-born members, disjoint from workload ids.
    next_id: u64,
}

/// The concrete algorithm dispatch (kept as an enum rather than a
/// `Box<dyn>` so the simulator stays `Send` and cheap to clone in tests).
#[derive(Debug)]
enum Algorithm {
    MinDepth(MinimumDepth),
    Longest(LongestFirst),
    Bo(RelaxedBandwidthOrdered),
    To(RelaxedTimeOrdered),
    Rost(RostJoin),
}

impl Algorithm {
    fn of(kind: AlgorithmKind) -> Self {
        match kind {
            AlgorithmKind::MinimumDepth => Algorithm::MinDepth(MinimumDepth),
            AlgorithmKind::LongestFirst => Algorithm::Longest(LongestFirst),
            AlgorithmKind::RelaxedBandwidthOrdered => Algorithm::Bo(RelaxedBandwidthOrdered),
            AlgorithmKind::RelaxedTimeOrdered => Algorithm::To(RelaxedTimeOrdered),
            AlgorithmKind::Rost => Algorithm::Rost(RostJoin),
        }
    }

    fn as_dyn(&self) -> &dyn TreeAlgorithm {
        match self {
            Algorithm::MinDepth(a) => a,
            Algorithm::Longest(a) => a,
            Algorithm::Bo(a) => a,
            Algorithm::To(a) => a,
            Algorithm::Rost(a) => a,
        }
    }
}

impl ChurnSim {
    /// Builds a simulator: generates the underlay, seeds the equilibrium
    /// population and constructs the initial tree.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ChurnConfig::validate`]).
    #[must_use]
    pub fn new(cfg: ChurnConfig) -> Self {
        Self::build(cfg, None)
    }

    /// Builds a churn simulator with the packet-level streaming layer
    /// attached (used by [`crate::StreamingSim`]).
    pub(crate) fn new_with_streaming(cfg: StreamingConfig) -> Self {
        // Identical stream to forking off the root RNG: `fork` is a pure
        // function of `(seed, label)`.
        let streaming_rng = SimRng::seed_from(cfg.churn.seed).fork("streaming");
        // Pathology loss chains draw from their own fork so an armed link
        // episode never perturbs the streaming layer's draws.
        let link_rng = SimRng::seed_from(cfg.churn.seed).fork("chaos-link");
        let state = StreamingState::new(&cfg, streaming_rng, link_rng);
        Self::build(cfg.churn, Some(state))
    }

    fn build(cfg: ChurnConfig, streaming: Option<StreamingState>) -> Self {
        cfg.validate();
        // rom-lint: allow(rng-fork-discipline) -- this IS the run's root RNG (minted once from cfg.seed); every subsystem stream below is a labeled fork of it
        let root_rng = SimRng::seed_from(cfg.seed);
        let mut topo_rng = root_rng.fork("topology");
        let net = TransitStubNetwork::generate(&cfg.topology, &mut topo_rng);
        let oracle = DelayOracle::build(&net);
        let mut workload = Workload::new(
            cfg.bandwidth,
            cfg.lifetime,
            cfg.arrival_rate(),
            cfg.history_secs,
            &net,
            root_rng.fork("workload"),
        );
        let source_location = workload.random_location();
        let tree = MulticastTree::new(paper_source(source_location), cfg.stream_rate);
        let algorithm = Algorithm::of(cfg.algorithm);
        let sampler = ViewSampler::new(cfg.view_size);
        let rng = root_rng.fork("decisions");
        let chaos = cfg.chaos.clone().map(|scenario| ChaosState {
            scenario,
            rng: root_rng.fork("chaos"),
            next_id: CHAOS_ID_BASE,
        });
        let rost = SwitchingProtocol::new(cfg.rost.clone());
        let window_start = SimTime::from_secs(cfg.warmup_secs);
        let window_end = window_start + cfg.measure_secs;

        let report = ChurnReport {
            algorithm: cfg.algorithm,
            target_size: cfg.target_size,
            population: Summary::new(),
            disruptions_per_lifetime: Summary::new(),
            disruption_counts: Vec::new(),
            disruption_events: 0,
            measure_secs: cfg.measure_secs,
            mean_lifetime_secs: cfg.mean_lifetime_secs(),
            reconnections_per_lifetime: Summary::new(),
            service_delay_ms: Summary::new(),
            stretch: Summary::new(),
            depth: Summary::new(),
            switches: 0,
            evictions: 0,
            rejections: 0,
            observer: None,
            outcome: RunOutcome::HorizonReached,
            events_processed: 0,
            queue_high_water: 0,
            queue_bytes_high_water: 0,
        };

        ChurnSim {
            cfg,
            oracle,
            workload,
            tree,
            algorithm,
            sampler,
            rng,
            rost,
            live: Vec::new(),
            live_pos: BTreeMap::new(),
            pending: BTreeMap::new(),
            rejoin_backlog: Vec::new(),
            window_start,
            window_end,
            tallies: BTreeMap::new(),
            observer_id: None,
            observer_join: SimTime::ZERO,
            observer_disruptions: TimeSeries::new(60.0),
            observer_delay: TimeSeries::new(60.0),
            streaming,
            chaos,
            invariants: None,
            obs: Obs::disabled(),
            report,
        }
    }

    /// Read-only access to the current tree (for tests and tooling).
    #[must_use]
    pub fn tree(&self) -> &MulticastTree {
        &self.tree
    }

    /// Runs the simulation to completion and returns the report.
    #[must_use]
    pub fn run(self) -> ChurnReport {
        self.run_inner().0
    }

    /// Runs with the given observability pipeline installed and returns it
    /// (finished) alongside the report. Traces every join, departure,
    /// rejoin, switch and eviction, and maintains the engine's counters,
    /// gauges and histograms. Running with [`Obs::disabled`] is equivalent
    /// to [`run`](Self::run).
    #[must_use]
    pub fn run_with_obs(mut self, obs: Obs) -> (ChurnReport, Obs) {
        self.obs = obs;
        let (report, _streaming, obs, _invariants) = self.run_inner();
        (report, obs)
    }

    /// Runs with the given invariant registry armed: the engine reports
    /// every protocol transition (failure scopes, rejoin scheduling,
    /// recovery starts, reattachments, recovery-group choices) to the
    /// registry's checkers and runs its cross-cutting tree checks after
    /// every dispatched event. Violations are counted under the
    /// `chaos.violations` metric and emitted as `Warn`-level
    /// [`Subsystem::Chaos`] trace events on `obs`. Returns the registry —
    /// with everything it found — alongside the report.
    #[must_use]
    pub fn run_checked(
        mut self,
        registry: InvariantRegistry,
        obs: Obs,
    ) -> (ChurnReport, InvariantRegistry, Obs) {
        self.obs = obs;
        self.invariants = Some(registry);
        let (report, _streaming, obs, invariants) = self.run_inner();
        (report, invariants.unwrap_or_default(), obs)
    }

    /// Like [`run`](Self::run), but calls `inspect` with the final tree
    /// and simulation end time before returning — for tooling that wants
    /// to examine the converged structure.
    pub fn run_inspect(mut self, inspect: impl FnOnce(&MulticastTree, SimTime)) -> ChurnReport {
        let mut sim: Simulation<Event> = Simulation::new();
        if let Some(budget) = self.cfg.max_events {
            sim = sim.with_max_events(budget);
        }
        self.arm_instrumentation(&mut sim);
        self.seed(&mut sim);
        let horizon = self.window_end;
        let outcome = sim.run_until(horizon, |now, event, sched| {
            self.handle(now, event, sched);
        });
        self.report.outcome = outcome;
        self.report.events_processed = sim.processed();
        self.report.queue_high_water = sim.queue_high_water_mark() as u64;
        self.report.queue_bytes_high_water = sim.queue_bytes_high_water();
        inspect(&self.tree, horizon);
        self.finish()
    }

    /// Runs with the streaming layer and returns the streaming report.
    ///
    /// # Panics
    ///
    /// Panics if the simulator was built without a streaming layer.
    pub(crate) fn run_streaming(self) -> StreamingReport {
        let (churn, streaming, _obs, _invariants) = self.run_inner();
        streaming
            .expect("built with new_with_streaming")
            .into_report(churn)
    }

    /// Streaming variant of [`run_with_obs`](Self::run_with_obs).
    pub(crate) fn run_streaming_with_obs(mut self, obs: Obs) -> (StreamingReport, Obs) {
        self.obs = obs;
        let (churn, streaming, obs, _invariants) = self.run_inner();
        let report = streaming
            .expect("built with new_with_streaming")
            .into_report(churn);
        (report, obs)
    }

    /// Streaming variant of [`run_checked`](Self::run_checked).
    pub(crate) fn run_streaming_checked(
        mut self,
        registry: InvariantRegistry,
        obs: Obs,
    ) -> (StreamingReport, InvariantRegistry, Obs) {
        self.obs = obs;
        self.invariants = Some(registry);
        let (churn, streaming, obs, invariants) = self.run_inner();
        let report = streaming
            .expect("built with new_with_streaming")
            .into_report(churn);
        (report, invariants.unwrap_or_default(), obs)
    }

    fn run_inner(
        mut self,
    ) -> (
        ChurnReport,
        Option<StreamingState>,
        Obs,
        Option<InvariantRegistry>,
    ) {
        let mut sim: Simulation<Event> = Simulation::new();
        if let Some(budget) = self.cfg.max_events {
            sim = sim.with_max_events(budget);
        }
        self.arm_instrumentation(&mut sim);
        self.seed(&mut sim);
        let horizon = self.window_end;
        let outcome = sim.run_until(horizon, |now, event, sched| {
            self.handle(now, event, sched);
        });
        self.report.outcome = outcome;
        self.report.events_processed = sim.processed();
        self.report.queue_high_water = sim.queue_high_water_mark() as u64;
        self.report.queue_bytes_high_water = sim.queue_bytes_high_water();
        if self.obs.is_active() {
            self.fold_protocol_metrics();
        }
        self.obs.finish();
        let streaming = self.streaming.take();
        let obs = std::mem::take(&mut self.obs);
        let invariants = self.invariants.take();
        (self.finish(), streaming, obs, invariants)
    }

    /// Pre-run instrumentation hookup: shares the run's span profiler with
    /// the tree (so overlay/rost/cer spans land in one profile tree) and
    /// the simulation kernel (so queue peek/pop costs show up as a root
    /// `sim.queue` span), and pins the queue-depth histogram to
    /// power-of-two buckets before the first dispatch observes into it.
    fn arm_instrumentation(&mut self, sim: &mut Simulation<Event>) {
        self.tree.set_prof(self.obs.prof().clone());
        sim.set_prof(self.obs.prof().clone());
        self.obs
            .register_histogram("sim.queue_depth", &QUEUE_DEPTH_BUCKETS);
    }

    /// Folds the protocol-layer counters (ROST switching outcomes, lock
    /// grants/denials) into the metrics registry at end of run.
    fn fold_protocol_metrics(&mut self) {
        let stats = self.rost.stats();
        self.obs.count("rost.switch_attempts", stats.attempts);
        self.obs.count("rost.switch_promotions", stats.switched);
        self.obs.count("rost.switch_busy", stats.busy);
        self.obs.count("rost.switch_not_eligible", stats.not_eligible);
        let locks = self.rost.locks();
        self.obs.count("rost.lock_grants", locks.grants());
        self.obs.count("rost.lock_denials", locks.denials());
    }

    /// Seeds the equilibrium population and the initial event schedule.
    fn seed(&mut self, sim: &mut Simulation<Event>) {
        // The source is a member of the group: it must be discoverable in
        // partial views (it never departs, so it is never untracked).
        let root = self.tree.root();
        self.track_live(root);

        // Seed the equilibrium population and their departures. Members
        // are inserted in RANDOM order: inserting oldest-first would hand
        // every algorithm a perfectly time-ordered (and hence artificially
        // stable) initial tree. With random order each algorithm's own
        // machinery — BO/TO evictions, ROST switching, longest-first's
        // oldest-parent rule — has to establish its characteristic
        // structure, as it would in an organically grown overlay.
        let mut seed_members = self.workload.equilibrium_population(self.cfg.target_size);
        self.rng.shuffle(&mut seed_members);
        for member in seed_members {
            let id = member.id;
            let departure = member.departure_time();
            self.track_live(id);
            self.notify_joined(id, member.join_time);
            if !self.place_new_member(member.clone(), SimTime::ZERO) {
                self.pending.insert(id, member);
                sim.schedule(
                    SimTime::from_secs(self.cfg.retry_secs),
                    Event::JoinRetry(id),
                );
            }
            let backlog = std::mem::take(&mut self.rejoin_backlog);
            if !backlog.is_empty() {
                self.signal_invariants(
                    SimTime::ZERO,
                    &Signal::RejoinScheduled {
                        members: &backlog,
                        cause: RejoinCause::Eviction,
                    },
                );
                for orphan in backlog {
                    sim.schedule(SimTime::ZERO, Event::Rejoin(orphan));
                }
            }
            sim.schedule(
                departure.max(SimTime::from_secs(0.001)),
                Event::Departure(id),
            );
            if self.is_rost() {
                let stagger = self.rng.uniform() * self.cfg.rost.switching_interval_secs;
                sim.schedule(SimTime::from_secs(stagger), Event::SwitchCheck(id));
            }
        }

        sim.schedule(
            SimTime::from_secs(self.workload.next_interarrival()),
            Event::Arrival,
        );
        sim.schedule(self.window_start, Event::Sample);
        if self.cfg.observer.is_some() {
            sim.schedule(self.window_start, Event::ObserverJoin);
        }

        // Pin every scenario injection to its absolute instant; the chaos
        // RNG is only consulted when an injection actually fires.
        if let Some(chaos) = self.chaos.as_ref() {
            for (index, injection) in chaos.scenario.injections.iter().enumerate() {
                let at = SimTime::from_secs(injection.at_secs);
                if at <= self.window_end {
                    sim.schedule(at, Event::ChaosInject(index));
                }
            }
        }
    }

    fn is_rost(&self) -> bool {
        self.cfg.algorithm == AlgorithmKind::Rost
    }

    fn in_window(&self, now: SimTime) -> bool {
        now >= self.window_start && now <= self.window_end
    }

    fn track_live(&mut self, id: NodeId) {
        self.live_pos.insert(id, self.live.len());
        self.live.push(id);
        self.tallies.insert(id, MemberTally::default());
    }

    fn notify_joined(&mut self, id: NodeId, join: SimTime) {
        if let Some(st) = self.streaming.as_mut() {
            st.on_member_joined(id, join);
        }
    }

    fn untrack_live(&mut self, id: NodeId) {
        if let Some(pos) = self.live_pos.remove(&id) {
            self.live.swap_remove(pos);
            if let Some(&moved) = self.live.get(pos) {
                self.live_pos.insert(moved, pos);
            }
        }
    }

    /// Candidate parents for a join/rejoin decision: a bounded random
    /// view for distributed algorithms, with detached members filtered
    /// out (they cannot serve data), which also keeps a rejoining subtree
    /// from selecting its own descendants. Centralized algorithms consult
    /// the whole attached membership directly through the tree's indices,
    /// so no candidate list is materialized for them — the former O(M)
    /// collect per join was the dominant cost of the ordered baselines.
    fn candidates_for(&mut self, joiner: NodeId) -> Vec<NodeId> {
        if self.algorithm.as_dyn().is_centralized() {
            Vec::new()
        } else {
            // `live_pos` hands the sampler the joiner's slot so the view
            // costs O(view size), not an O(live) filter-and-copy.
            let pos = self.live_pos.get(&joiner).copied();
            let view = self
                .sampler
                .sample_excluding_at(&self.live, pos, &mut self.rng);
            view.into_iter()
                .filter(|&m| self.tree.is_attached(m))
                .collect()
        }
    }

    /// Places a brand-new member; returns false when no capacity was found
    /// (caller schedules a retry).
    fn place_new_member(&mut self, member: MemberProfile, now: SimTime) -> bool {
        let candidates = self.candidates_for(member.id);
        let ctx = JoinContext {
            tree: &self.tree,
            joiner: &member,
            candidates: &candidates,
            now,
        };
        let prox = OracleProximity::new(&self.oracle);
        match self.algorithm.as_dyn().select(&ctx, &prox) {
            JoinDecision::Attach { parent } => {
                self.tree
                    .attach(member, parent)
                    .expect("algorithm selected a valid parent");
                true
            }
            JoinDecision::Replace { evict } => {
                let outcome = self
                    .tree
                    .replace(evict, member, |p| p.bandwidth)
                    .expect("algorithm selected a valid eviction");
                self.account_eviction(&outcome.displaced, &outcome.adopted, now);
                true
            }
            JoinDecision::Reject => false,
        }
    }

    /// Attempts to reattach an orphan subtree root; returns false when no
    /// capacity was found.
    ///
    /// Only *childless* rejoiners may take another member's position: a
    /// childless usurper with larger bandwidth (or age) can absorb the
    /// evictee's children, so eviction chains displace one member at a
    /// time and terminate (the ordering key strictly decreases along the
    /// chain). Letting whole orphan subtrees usurp instead displaces other
    /// subtrees and melts the tree down in an eviction storm.
    fn rejoin_orphan(&mut self, orphan: NodeId, now: SimTime) -> bool {
        let profile = self
            .tree
            .profile(orphan)
            .expect("orphan exists in tree")
            .clone();
        let has_children = self.tree.child_count(orphan) > 0;
        let candidates = self.candidates_for(orphan);
        let ctx = JoinContext {
            tree: &self.tree,
            joiner: &profile,
            candidates: &candidates,
            now,
        };
        let prox = OracleProximity::new(&self.oracle);
        let decision = if has_children && self.algorithm.as_dyn().is_centralized() {
            // Subtree roots orphaned by a failure reattach without
            // evicting; the ordering repairs itself on later joins. The
            // indexed fallback reads the attached membership from the
            // tree directly (the orphan's own subtree is detached and
            // therefore never indexed).
            match rom_overlay::algorithms::min_depth_parent_indexed(&self.tree, &profile, &prox) {
                Some(parent) => JoinDecision::Attach { parent },
                None => JoinDecision::Reject,
            }
        } else {
            self.algorithm.as_dyn().select(&ctx, &prox)
        };
        match decision {
            JoinDecision::Attach { parent } => {
                self.tree
                    .reattach(orphan, parent)
                    .expect("algorithm selected a valid parent");
                true
            }
            JoinDecision::Replace { evict } => {
                let outcome = self
                    .tree
                    .usurp(evict, orphan, |p| p.bandwidth)
                    .expect("algorithm selected a valid eviction");
                self.account_eviction(&outcome.displaced, &outcome.adopted, now);
                true
            }
            JoinDecision::Reject => false,
        }
    }

    /// Traces a placed join/rejoin (`kind` distinguishes the two) at Debug
    /// level, with the parent the algorithm chose.
    fn trace_join(&mut self, now: SimTime, id: NodeId, kind: &'static str) {
        if self.obs.enabled(Subsystem::Churn, Level::Debug) {
            let parent = self.tree.parent(id).map_or(0, |p| p.0);
            self.obs.emit(
                TraceEvent::new(now.as_secs(), Subsystem::Churn, kind)
                    .level(Level::Debug)
                    .u64("id", id.0)
                    .u64("parent", parent),
            );
        }
    }

    fn trace_join_rejected(&mut self, now: SimTime, id: NodeId) {
        self.obs.count("churn.join_rejections", 1);
        if self.obs.enabled(Subsystem::Churn, Level::Debug) {
            self.obs.emit(
                TraceEvent::new(now.as_secs(), Subsystem::Churn, "join_rejected")
                    .level(Level::Debug)
                    .u64("id", id.0),
            );
        }
    }

    /// Books the reconnections of one eviction. The displaced members'
    /// rejoin events are scheduled by the caller.
    fn account_eviction(&mut self, displaced: &[NodeId], adopted: &[NodeId], now: SimTime) {
        self.report.evictions += 1;
        self.obs.count("churn.evictions", 1);
        if self.obs.enabled(Subsystem::Churn, Level::Info) {
            self.obs.emit(
                TraceEvent::new(now.as_secs(), Subsystem::Churn, "evict")
                    .u64("displaced", displaced.len() as u64)
                    .u64("adopted", adopted.len() as u64),
            );
        }
        for &m in displaced.iter().chain(adopted) {
            self.tallies.entry(m).or_default().reconnections += 1;
        }
        // The displaced must rejoin; the caller drains this backlog into
        // the event queue.
        self.rejoin_backlog.extend(displaced.iter().copied());
    }

    /// Schedules a rejoin for every member displaced during the current
    /// event.
    fn drain_rejoin_backlog(&mut self, sched: &mut Schedule<'_, Event>) {
        let backlog = std::mem::take(&mut self.rejoin_backlog);
        self.schedule_rejoins(&backlog, RejoinCause::Eviction, sched);
    }

    /// Schedules a rejoin for each displaced member, announcing the batch
    /// (with its cause) to the armed invariants first.
    fn schedule_rejoins(
        &mut self,
        displaced: &[NodeId],
        cause: RejoinCause,
        sched: &mut Schedule<'_, Event>,
    ) {
        if displaced.is_empty() {
            return;
        }
        self.signal_invariants(
            sched.now(),
            &Signal::RejoinScheduled {
                members: displaced,
                cause,
            },
        );
        for &orphan in displaced {
            sched.after(self.cfg.rejoin_delay_secs, Event::Rejoin(orphan));
        }
    }

    /// Feeds a protocol signal to the armed invariant registry (no-op
    /// when running unchecked).
    fn signal_invariants(&mut self, now: SimTime, signal: &Signal<'_>) {
        if let Some(registry) = self.invariants.as_mut() {
            registry.signal(&self.tree, now, signal, &mut self.obs);
        }
    }

    /// Overlay path delay from the source to `id` in milliseconds.
    ///
    /// `chain` is a caller-owned scratch buffer so the per-member quality
    /// sweep does one allocation total instead of one path `Vec` per
    /// member. The leaf→root index chain is summed in reverse so the
    /// floating-point accumulation order stays root-first, exactly as the
    /// `overlay_path` formulation produced.
    fn overlay_delay_ms(&self, id: NodeId, chain: &mut Vec<rom_overlay::NodeIndex>) -> Option<f64> {
        let ix = self.tree.index_of(id)?;
        self.tree.depth_ix(ix)?; // detached members have no root path
        chain.clear();
        chain.push(ix);
        let mut cur = ix;
        while let Some(p) = self.tree.parent_ix(cur) {
            chain.push(p);
            cur = p;
        }
        let mut total = 0.0;
        for i in (1..chain.len()).rev() {
            let a = self.tree.profile_ix(chain[i]).location;
            let b = self.tree.profile_ix(chain[i - 1]).location;
            total += self.oracle.delay_ms(UnderlayId(a.0), UnderlayId(b.0));
        }
        Some(total)
    }

    fn unicast_delay_ms(&self, id: NodeId) -> Option<f64> {
        let root_loc = self.tree.profile(self.tree.root())?.location;
        let loc = self.tree.profile(id)?.location;
        Some(
            self.oracle
                .delay_ms(UnderlayId(root_loc.0), UnderlayId(loc.0)),
        )
    }

    fn handle(&mut self, now: SimTime, event: Event, sched: &mut Schedule<'_, Event>) {
        if self.obs.is_active() {
            self.obs.count(event_metric_name(&event), 1);
            self.obs.observe("sim.queue_depth", sched.pending() as f64);
        }
        {
            let _span = self.obs.prof().span(event_span_name(&event));
            self.dispatch(now, event, sched);
            self.drain_rejoin_backlog(sched);
        }
        if let Some(registry) = self.invariants.as_mut() {
            registry.after_event(&self.tree, now, &mut self.obs);
        }
    }

    fn dispatch(&mut self, now: SimTime, event: Event, sched: &mut Schedule<'_, Event>) {
        match event {
            Event::Arrival => {
                let member = self.workload.arrival(now);
                let id = member.id;
                let departure = member.departure_time();
                self.track_live(id);
                self.notify_joined(id, now);
                if self.place_new_member(member.clone(), now) {
                    self.trace_join(now, id, "join");
                    if self.is_rost() {
                        sched.after(
                            self.cfg.rost.switching_interval_secs,
                            Event::SwitchCheck(id),
                        );
                    }
                } else {
                    self.trace_join_rejected(now, id);
                    if self.in_window(now) {
                        self.report.rejections += 1;
                    }
                    self.pending.insert(id, member);
                    sched.after(self.cfg.retry_secs, Event::JoinRetry(id));
                }
                sched.at(departure, Event::Departure(id));
                sched.after(self.workload.next_interarrival(), Event::Arrival);
            }

            Event::JoinRetry(id) => {
                let Some(member) = self.pending.remove(&id) else {
                    return; // departed while waiting
                };
                if self.place_new_member(member.clone(), now) {
                    self.trace_join(now, id, "join");
                    if self.is_rost() {
                        sched.after(
                            self.cfg.rost.switching_interval_secs,
                            Event::SwitchCheck(id),
                        );
                    }
                } else {
                    self.trace_join_rejected(now, id);
                    if self.in_window(now) {
                        self.report.rejections += 1;
                    }
                    self.pending.insert(id, member);
                    sched.after(self.cfg.retry_secs, Event::JoinRetry(id));
                }
            }

            Event::Departure(id) => {
                self.untrack_live(id);
                if self.pending.remove(&id).is_some() {
                    // Never made it into the tree.
                    self.tallies.remove(&id);
                    return;
                }
                let graceful =
                    self.cfg.graceful_fraction > 0.0 && self.rng.chance(self.cfg.graceful_fraction);
                self.depart(id, graceful, now, sched);
            }

            Event::ChaosFail(id) => {
                // Forced failures are always abrupt (§3.3's uncooperative
                // extreme) and never consult the decisions stream, so the
                // organic run's draws stay aligned.
                if id == self.tree.root() {
                    return; // the source never fails
                }
                self.untrack_live(id);
                if self.pending.remove(&id).is_some() {
                    self.tallies.remove(&id);
                    return;
                }
                self.depart(id, false, now, sched);
            }

            Event::ChaosInject(index) => self.chaos_inject(index, now, sched),

            Event::ChaosJoin => self.chaos_join(now, sched),

            Event::ChaosFlap(spec) => self.chaos_flap(&spec, sched),

            Event::ChaosLinkEnd(member) => {
                if let Some(st) = self.streaming.as_mut() {
                    st.on_link_episode_end(
                        &self.tree,
                        &self.oracle,
                        &self.live,
                        member,
                        now,
                        &mut self.obs,
                        self.invariants.as_mut(),
                    );
                }
            }

            Event::Rejoin(orphan) => {
                if !self.tree.contains(orphan) || self.tree.is_attached(orphan) {
                    return; // departed or already back
                }
                self.signal_invariants(now, &Signal::RecoveryStart { member: orphan });
                if self.rejoin_orphan(orphan, now) {
                    self.obs.count("churn.rejoins", 1);
                    self.trace_join(now, orphan, "rejoin");
                    self.signal_invariants(now, &Signal::Reattached { member: orphan });
                    if let Some(st) = self.streaming.as_mut() {
                        st.on_restore(
                            &self.tree,
                            &self.oracle,
                            &self.live,
                            orphan,
                            now,
                            &mut self.obs,
                            self.invariants.as_mut(),
                        );
                    }
                } else {
                    self.obs.count("churn.rejoin_retries", 1);
                    if self.in_window(now) {
                        self.report.rejections += 1;
                    }
                    sched.after(self.cfg.retry_secs, Event::Rejoin(orphan));
                }
            }

            Event::SwitchCheck(id) => {
                if !self.tree.contains(id) {
                    return; // member departed; timer dies with it
                }
                match self.rost.attempt(&mut self.tree, id, now) {
                    SwitchOutcome::Switched { record, op } => {
                        self.report.switches += 1;
                        if self.obs.enabled(Subsystem::Rost, Level::Info) {
                            self.obs.emit(
                                TraceEvent::new(now.as_secs(), Subsystem::Rost, "switch")
                                    .u64("id", id.0)
                                    .u64("reparented", record.reparented.len() as u64)
                                    .u64("displaced", record.displaced.len() as u64),
                            );
                        }
                        for &m in record.reparented.iter().chain(&record.displaced) {
                            self.tallies.entry(m).or_default().reconnections += 1;
                        }
                        self.schedule_rejoins(&record.displaced, RejoinCause::Switch, sched);
                        sched.after(self.cfg.rost.lock_hold_secs, Event::ReleaseLocks(op));
                        sched.after(
                            self.cfg.rost.switching_interval_secs,
                            Event::SwitchCheck(id),
                        );
                    }
                    SwitchOutcome::Busy => {
                        if self.obs.enabled(Subsystem::Rost, Level::Debug) {
                            self.obs.emit(
                                TraceEvent::new(now.as_secs(), Subsystem::Rost, "switch_busy")
                                    .level(Level::Debug)
                                    .u64("id", id.0),
                            );
                        }
                        sched.after(self.cfg.rost.lock_retry_secs, Event::SwitchCheck(id));
                    }
                    SwitchOutcome::NotEligible => {
                        sched.after(
                            self.cfg.rost.switching_interval_secs,
                            Event::SwitchCheck(id),
                        );
                    }
                }
            }

            Event::ReleaseLocks(op) => {
                self.rost.release(op);
            }

            Event::Sample => {
                self.sample_tree_quality(now);
                if now + self.cfg.sample_interval_secs <= self.window_end {
                    sched.after(self.cfg.sample_interval_secs, Event::Sample);
                }
            }

            Event::ObserverJoin => {
                let spec = self.cfg.observer.expect("scheduled only when configured");
                let member = self
                    .workload
                    .custom_arrival(now, spec.bandwidth, spec.lifetime_secs);
                let id = member.id;
                self.observer_id = Some(id);
                self.observer_join = now;
                self.track_live(id);
                self.notify_joined(id, now);
                if self.place_new_member(member.clone(), now) {
                    if self.is_rost() {
                        sched.after(
                            self.cfg.rost.switching_interval_secs,
                            Event::SwitchCheck(id),
                        );
                    }
                } else {
                    self.pending.insert(id, member);
                    sched.after(self.cfg.retry_secs, Event::JoinRetry(id));
                }
                sched.at(member_departure_capped(spec, now), Event::Departure(id));
            }
        }
    }

    /// Removes `id` from the tree and books the departure — the graceful
    /// hand-off or the abrupt failure with its ELN scope accounting.
    /// Shared by organic departures and chaos-forced failures (which are
    /// always abrupt).
    fn depart(&mut self, id: NodeId, graceful: bool, now: SimTime, sched: &mut Schedule<'_, Event>) {
        let Ok(removed) = self.tree.remove(id) else {
            return; // defensive: already gone
        };
        self.obs.count("churn.departures", 1);
        if graceful {
            self.obs.count("churn.graceful_departures", 1);
        }
        if self.obs.enabled(Subsystem::Churn, Level::Info) {
            self.obs.emit(
                TraceEvent::new(now.as_secs(), Subsystem::Churn, "departure")
                    .u64("id", id.0)
                    .bool("graceful", graceful)
                    .u64("orphans", removed.orphaned_children.len() as u64)
                    .u64("descendants", removed.affected_descendants.len() as u64),
            );
        }
        if let Some(st) = self.streaming.as_mut() {
            if !graceful {
                st.on_failure(&removed.affected_descendants, now, &mut self.obs);
            }
            st.on_member_departed(id, now);
        }
        if graceful {
            // §3.3: the member notified its neighbours, so its
            // children reconnect seamlessly — no disruption, no
            // detection delay.
            self.rost.locks_mut().evict_node(id);
            self.signal_invariants(
                now,
                &Signal::RejoinScheduled {
                    members: &removed.orphaned_children,
                    cause: RejoinCause::Graceful,
                },
            );
            for &orphan in &removed.orphaned_children {
                sched.now_next(Event::Rejoin(orphan));
            }
            let tally = self.tallies.remove(&id).unwrap_or_default();
            if self.in_window(now) {
                let d = f64::from(tally.disruptions);
                self.report.disruptions_per_lifetime.add(d);
                self.report.disruption_counts.push(d);
                self.report
                    .reconnections_per_lifetime
                    .add(f64::from(tally.reconnections));
            }
            return;
        }
        // Abrupt departure: every descendant is disrupted once.
        self.signal_invariants(
            now,
            &Signal::FailureScope {
                failed: id,
                rejoining: &removed.orphaned_children,
                affected: &removed.affected_descendants,
            },
        );
        if self.in_window(now) {
            self.report.disruption_events += removed.affected_descendants.len() as u64;
        }
        for &m in &removed.affected_descendants {
            self.tallies.entry(m).or_default().disruptions += 1;
            if Some(m) == self.observer_id {
                self.observer_disruptions.record(now, 1.0);
            }
        }
        // ELN failure-scope partition (§4.1): only the orphaned
        // children initiate recovery; the deeper descendants are
        // notified of the failure and suppress their own redundant
        // rejoin attempts.
        let _eln_span = self.obs.prof().span("cer.eln_scope");
        let suppressed = removed
            .affected_descendants
            .len()
            .saturating_sub(removed.orphaned_children.len());
        if suppressed > 0 && self.obs.is_active() {
            self.obs.count("cer.eln_suppressed", suppressed as u64);
            if self.obs.enabled(Subsystem::Cer, Level::Info) {
                self.obs.emit(
                    TraceEvent::new(now.as_secs(), Subsystem::Cer, "eln_suppress")
                        .u64("failed", id.0)
                        .u64("rejoining", removed.orphaned_children.len() as u64)
                        .u64("suppressed", suppressed as u64),
                );
            }
        }
        // A departed node may hold or be covered by locks.
        self.rost.locks_mut().evict_node(id);
        self.schedule_rejoins(&removed.orphaned_children, RejoinCause::Failure, sched);
        // Book the member's lifetime totals if it completed inside
        // the window.
        let tally = self.tallies.remove(&id).unwrap_or_default();
        if self.in_window(now) {
            let d = f64::from(tally.disruptions);
            self.report.disruptions_per_lifetime.add(d);
            self.report.disruption_counts.push(d);
            self.report
                .reconnections_per_lifetime
                .add(f64::from(tally.reconnections));
        }
    }

    /// Applies one scheduled injection of the configured scenario.
    fn chaos_inject(&mut self, index: usize, now: SimTime, sched: &mut Schedule<'_, Event>) {
        let Some(chaos) = self.chaos.as_ref() else {
            return;
        };
        let Some(injection) = chaos.scenario.injections.get(index) else {
            return;
        };
        let action = injection.action.clone();
        self.obs.count("chaos.injections", 1);
        if self.obs.enabled(Subsystem::Chaos, Level::Info) {
            self.obs.emit(
                TraceEvent::new(now.as_secs(), Subsystem::Chaos, "inject")
                    .str("action", action.name()),
            );
        }
        match action {
            ChaosAction::CorrelatedFailure { radius } => {
                let cluster = {
                    let chaos = self.chaos.as_mut().expect("checked above");
                    pick_cluster(&self.tree, radius, &mut chaos.rng)
                };
                for &victim in &cluster {
                    sched.now_next(Event::ChaosFail(victim));
                }
            }
            ChaosAction::FlashCrowd { joins, spread_secs } => {
                let chaos = self.chaos.as_mut().expect("checked above");
                for _ in 0..joins {
                    let delay = if spread_secs > 0.0 {
                        chaos.rng.range_f64(0.0, spread_secs)
                    } else {
                        0.0
                    };
                    sched.after(delay, Event::ChaosJoin);
                }
            }
            ChaosAction::Flap {
                members,
                period_secs,
                cycles,
            } => {
                sched.now_next(Event::ChaosFlap(Box::new(FlapSpec {
                    members,
                    period_secs,
                    cycles_left: cycles,
                })));
            }
            ChaosAction::DegradeBandwidth { fraction, factor } => {
                self.degrade_bandwidth(fraction, factor, now);
            }
            ChaosAction::BurstyLoss {
                fraction,
                avg_loss,
                burst_factor,
                duration_secs,
            } => {
                let victims = self.pick_fraction(fraction);
                self.arm_link_episodes(
                    LinkEpisode {
                        kind: "bursty_loss",
                        start: now,
                        end: now + duration_secs,
                        loss: Some(GilbertElliott::matched(avg_loss, burst_factor)),
                        capacity: None,
                        spikes: None,
                        spike_offset: 0.0,
                    },
                    &victims,
                    sched,
                );
            }
            ChaosAction::ShapeCapacity { fraction, trace } => {
                let victims = self.pick_fraction(fraction);
                self.arm_link_episodes(
                    LinkEpisode {
                        kind: "shape_capacity",
                        start: now,
                        end: now + trace.duration(),
                        loss: None,
                        capacity: Some(trace),
                        spikes: None,
                        spike_offset: 0.0,
                    },
                    &victims,
                    sched,
                );
            }
            ChaosAction::Bufferbloat {
                fraction,
                spikes,
                duration_secs,
            } => {
                let victims = self.pick_fraction(fraction);
                self.arm_link_episodes(
                    LinkEpisode {
                        kind: "bufferbloat",
                        start: now,
                        end: now + duration_secs,
                        loss: None,
                        capacity: None,
                        spikes: Some(spikes),
                        spike_offset: 0.0,
                    },
                    &victims,
                    sched,
                );
            }
            ChaosAction::MobileMember { count, profile } => {
                let victims = {
                    let Some(chaos) = self.chaos.as_mut() else {
                        return;
                    };
                    pick_attached(&self.tree, count, &mut chaos.rng)
                };
                self.arm_link_episodes(
                    LinkEpisode {
                        kind: "mobile_member",
                        start: now,
                        end: now + profile.capacity.duration(),
                        loss: Some(GilbertElliott::matched(
                            profile.avg_loss,
                            profile.burst_factor,
                        )),
                        spike_offset: profile.spike_offset_secs(),
                        capacity: Some(profile.capacity),
                        spikes: Some(profile.spikes),
                    },
                    &victims,
                    sched,
                );
            }
        }
    }

    /// Picks roughly `fraction` of the attached membership (never the
    /// root) from the chaos RNG stream.
    fn pick_fraction(&mut self, fraction: f64) -> Vec<NodeId> {
        let Some(chaos) = self.chaos.as_mut() else {
            return Vec::new();
        };
        let eligible = self.tree.attached_count().saturating_sub(1);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let count = ((eligible as f64) * fraction).ceil() as usize;
        pick_attached(&self.tree, count, &mut chaos.rng)
    }

    /// Arms one pathology episode per victim on the streaming layer and
    /// schedules the matching end events. The episode carries its own
    /// window, so a stale end event (after a newer episode replaced this
    /// one) is ignored by the handler.
    fn arm_link_episodes(
        &mut self,
        episode: LinkEpisode,
        victims: &[NodeId],
        sched: &mut Schedule<'_, Event>,
    ) {
        let duration = episode.end - episode.start;
        for &victim in victims {
            if let Some(st) = self.streaming.as_mut() {
                st.on_link_episode_start(victim, episode.clone(), episode.start, &mut self.obs);
            }
            sched.after(duration, Event::ChaosLinkEnd(victim));
        }
    }

    /// A chaos-born member arrives: fresh id from the reserved chaos id
    /// space, profile drawn entirely from the chaos RNG stream.
    fn chaos_join(&mut self, now: SimTime, sched: &mut Schedule<'_, Event>) {
        let member = {
            let Some(chaos) = self.chaos.as_mut() else {
                return;
            };
            let id = NodeId(chaos.next_id);
            chaos.next_id += 1;
            let bandwidth = self.cfg.bandwidth.sample(&mut chaos.rng);
            let lifetime = self.cfg.lifetime.sample(&mut chaos.rng).max(1.0);
            let stubs = self.workload.stubs();
            let location = Location(stubs[chaos.rng.index(stubs.len())].0);
            MemberProfile::new(id, bandwidth, now, lifetime, location)
        };
        let id = member.id;
        let departure = member.departure_time();
        self.track_live(id);
        self.notify_joined(id, now);
        if self.place_new_member(member.clone(), now) {
            self.trace_join(now, id, "join");
            if self.is_rost() {
                sched.after(
                    self.cfg.rost.switching_interval_secs,
                    Event::SwitchCheck(id),
                );
            }
        } else {
            self.trace_join_rejected(now, id);
            if self.in_window(now) {
                self.report.rejections += 1;
            }
            self.pending.insert(id, member);
            sched.after(self.cfg.retry_secs, Event::JoinRetry(id));
        }
        sched.at(departure, Event::Departure(id));
    }

    /// One flapping cycle: fail `members` random attached members now,
    /// inject the same number of replacement joins half a period later,
    /// and reschedule until the cycles run out.
    fn chaos_flap(&mut self, spec: &FlapSpec, sched: &mut Schedule<'_, Event>) {
        let FlapSpec {
            members,
            period_secs,
            cycles_left,
        } = *spec;
        if cycles_left == 0 {
            return;
        }
        let victims = {
            let Some(chaos) = self.chaos.as_mut() else {
                return;
            };
            pick_attached(&self.tree, members, &mut chaos.rng)
        };
        for &victim in &victims {
            sched.now_next(Event::ChaosFail(victim));
        }
        let half_period = (period_secs * 0.5).max(1e-3);
        for _ in 0..victims.len() {
            sched.after(half_period, Event::ChaosJoin);
        }
        if cycles_left > 1 {
            sched.after(
                period_secs.max(1e-3),
                Event::ChaosFlap(Box::new(FlapSpec {
                    members,
                    period_secs,
                    cycles_left: cycles_left - 1,
                })),
            );
        }
    }

    /// Degrades the bandwidth of roughly `fraction` of the attached
    /// membership by `factor`; children beyond the shrunken out-degree
    /// budget are shed and queued to rejoin like eviction victims.
    fn degrade_bandwidth(&mut self, fraction: f64, factor: f64, now: SimTime) {
        let victims = self.pick_fraction(fraction);
        for &victim in &victims {
            let Some(profile) = self.tree.profile(victim) else {
                continue;
            };
            let degraded = profile.bandwidth * factor;
            let Ok(shed) = self.tree.set_bandwidth(victim, degraded) else {
                continue;
            };
            self.obs.count("chaos.degraded", 1);
            if shed.is_empty() {
                continue;
            }
            // The shed children lose their upstream exactly as eviction
            // victims do: a reconnection rather than a failure disruption,
            // with the streaming layer seeing the whole detached subtree
            // cut off until it reattaches.
            let mut affected = Vec::new();
            for &child in &shed {
                affected.push(child);
                self.tree.descendants_into(child, &mut affected);
            }
            for &m in &shed {
                self.tallies.entry(m).or_default().reconnections += 1;
            }
            if let Some(st) = self.streaming.as_mut() {
                st.on_failure(&affected, now, &mut self.obs);
            }
            self.rejoin_backlog.extend(shed.iter().copied());
        }
    }

    fn sample_tree_quality(&mut self, now: SimTime) {
        let mut population = 0u64;
        let attached: Vec<NodeId> = self.tree.attached_by_depth().collect();
        let mut chain = Vec::new();
        for id in attached {
            if id == self.tree.root() {
                continue;
            }
            population += 1;
            let Some(delay) = self.overlay_delay_ms(id, &mut chain) else {
                continue;
            };
            self.report.service_delay_ms.add(delay);
            if let Some(depth) = self.tree.depth(id) {
                self.report.depth.add(depth as f64);
            }
            if let Some(unicast) = self.unicast_delay_ms(id) {
                if unicast > 1e-9 {
                    self.report.stretch.add(delay / unicast);
                }
            }
            if Some(id) == self.observer_id {
                self.observer_delay.record(now, delay);
            }
        }
        self.report.population.add(population as f64);
        self.obs.gauge("churn.population", population as f64);
    }

    fn finish(mut self) -> ChurnReport {
        if self.observer_id.is_some() {
            let join = self.observer_join;
            let trace = ObserverTrace {
                disruption_minutes: self
                    .observer_disruptions
                    .points()
                    .iter()
                    .map(|&(t, _)| (t - join) / 60.0)
                    .collect(),
                delay_samples: self
                    .observer_delay
                    .points()
                    .iter()
                    .map(|&(t, v)| ((t - join) / 60.0, v))
                    .collect(),
            };
            self.report.observer = Some(trace);
        }
        self.report
    }
}

impl ChurnReport {
    /// The unbiased Fig. 4 metric: disruption events per member, scaled to
    /// one mean lifetime. Unlike
    /// [`disruptions_per_lifetime`](ChurnReport::disruptions_per_lifetime)
    /// (a tally over members that *departed* inside the window, biased
    /// toward short sessions), this rate treats every member-second in the
    /// window equally:
    /// `events / (population × window) × mean lifetime`.
    #[must_use]
    pub fn disruptions_per_mean_lifetime(&self) -> f64 {
        let pop = self.population.mean();
        if pop <= 0.0 || self.measure_secs <= 0.0 {
            return 0.0;
        }
        self.disruption_events as f64 / (pop * self.measure_secs) * self.mean_lifetime_secs
    }
}

/// Power-of-two bucket bounds for the `sim.queue_depth` histogram: queue
/// pressure spans orders of magnitude across run sizes, so log buckets
/// keep both a 150-member quick run and a 10k-member sweep readable.
const QUEUE_DEPTH_BUCKETS: [f64; 20] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0,
    16384.0, 32768.0, 65536.0, 131072.0, 262144.0, 524288.0,
];

/// Per-event-type dispatch span names (static so the profiling hot path
/// never allocates).
fn event_span_name(event: &Event) -> &'static str {
    match event {
        Event::Arrival => "engine.arrival",
        Event::Departure(_) => "engine.departure",
        Event::Rejoin(_) => "engine.rejoin",
        Event::JoinRetry(_) => "engine.join_retry",
        Event::SwitchCheck(_) => "engine.switch_check",
        Event::ReleaseLocks(_) => "engine.release_locks",
        Event::Sample => "engine.sample",
        Event::ObserverJoin => "engine.observer_join",
        Event::ChaosInject(_) => "engine.chaos_inject",
        Event::ChaosFail(_) => "engine.chaos_fail",
        Event::ChaosJoin => "engine.chaos_join",
        Event::ChaosFlap(_) => "engine.chaos_flap",
        Event::ChaosLinkEnd(_) => "engine.chaos_link_end",
    }
}

/// Per-event-type counter names (static so the metrics hot path never
/// allocates).
fn event_metric_name(event: &Event) -> &'static str {
    match event {
        Event::Arrival => "sim.events.arrival",
        Event::Departure(_) => "sim.events.departure",
        Event::Rejoin(_) => "sim.events.rejoin",
        Event::JoinRetry(_) => "sim.events.join_retry",
        Event::SwitchCheck(_) => "sim.events.switch_check",
        Event::ReleaseLocks(_) => "sim.events.release_locks",
        Event::Sample => "sim.events.sample",
        Event::ObserverJoin => "sim.events.observer_join",
        Event::ChaosInject(_) => "sim.events.chaos_inject",
        Event::ChaosFail(_) => "sim.events.chaos_fail",
        Event::ChaosJoin => "sim.events.chaos_join",
        Event::ChaosFlap(_) => "sim.events.chaos_flap",
        Event::ChaosLinkEnd(_) => "sim.events.chaos_link_end",
    }
}

/// The observer's departure time, kept strictly after `now`.
fn member_departure_capped(spec: crate::config::ObserverSpec, now: SimTime) -> SimTime {
    now + spec.lifetime_secs.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ObserverSpec;

    fn quick(kind: AlgorithmKind, size: usize, seed: u64) -> ChurnConfig {
        let mut cfg = ChurnConfig::quick(kind, size);
        cfg.seed = seed;
        cfg.warmup_secs = 120.0;
        cfg.measure_secs = 400.0;
        cfg.sample_interval_secs = 60.0;
        cfg
    }

    /// A `--mega` queue holds up to a million pending events, so every
    /// byte of `Event` is a megabyte of queue. Boxing `ChaosFlap` (the
    /// one wide variant) keeps the enum at two words; this pins that so
    /// a new variant cannot silently re-widen it.
    #[test]
    fn event_stays_two_words_wide() {
        assert!(
            std::mem::size_of::<Event>() <= 16,
            "Event grew to {} bytes; box the wide variant instead",
            std::mem::size_of::<Event>()
        );
    }

    #[test]
    fn population_hovers_near_target() {
        let report = ChurnSim::new(quick(AlgorithmKind::MinimumDepth, 200, 1)).run();
        let mean = report.population.mean();
        assert!(
            (100.0..320.0).contains(&mean),
            "population {mean} should hover near 200"
        );
    }

    #[test]
    fn every_algorithm_sustains_the_population() {
        for kind in AlgorithmKind::ALL {
            let mut cfg = quick(kind, 120, 2);
            cfg.measure_secs = 200.0;
            let report = ChurnSim::new(cfg).run();
            assert!(report.population.mean() > 30.0, "{kind}: tree collapsed");
        }
    }

    #[test]
    fn all_algorithms_produce_metrics() {
        for kind in AlgorithmKind::ALL {
            let report = ChurnSim::new(quick(kind, 150, 4)).run();
            assert!(report.disruptions_per_lifetime.count() > 10, "{kind}");
            assert!(report.service_delay_ms.count() > 100, "{kind}");
            assert!(
                report.stretch.mean() >= 1.0 - 1e-6,
                "{kind}: stretch below 1"
            );
            assert!(report.depth.mean() >= 1.0, "{kind}");
        }
    }

    #[test]
    fn min_depth_and_longest_first_have_zero_overhead() {
        // §6 Fig. 10: these algorithms impose no optimization
        // reconnections at all.
        for kind in [AlgorithmKind::MinimumDepth, AlgorithmKind::LongestFirst] {
            let report = ChurnSim::new(quick(kind, 150, 5)).run();
            assert_eq!(report.switches, 0, "{kind}");
            assert_eq!(report.evictions, 0, "{kind}");
            assert_eq!(report.reconnections_per_lifetime.mean(), 0.0, "{kind}");
        }
    }

    #[test]
    fn rost_switches_and_ordered_algorithms_evict() {
        let rost = ChurnSim::new(quick(AlgorithmKind::Rost, 200, 6)).run();
        assert!(rost.switches > 0, "ROST should perform switches");
        assert_eq!(rost.evictions, 0, "ROST never evicts");

        let bo = ChurnSim::new(quick(AlgorithmKind::RelaxedBandwidthOrdered, 200, 6)).run();
        assert!(bo.evictions > 0, "relaxed BO should evict");
        assert_eq!(bo.switches, 0);
    }

    #[test]
    fn longest_first_builds_taller_trees_than_min_depth() {
        // §2.1: longest-first "results in a tall tree".
        let lf = ChurnSim::new(quick(AlgorithmKind::LongestFirst, 250, 7)).run();
        let md = ChurnSim::new(quick(AlgorithmKind::MinimumDepth, 250, 7)).run();
        assert!(
            lf.depth.mean() > md.depth.mean(),
            "longest-first depth {} should exceed min-depth {}",
            lf.depth.mean(),
            md.depth.mean()
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = ChurnSim::new(quick(AlgorithmKind::Rost, 100, 11)).run();
        let b = ChurnSim::new(quick(AlgorithmKind::Rost, 100, 11)).run();
        assert_eq!(
            a.disruptions_per_lifetime.count(),
            b.disruptions_per_lifetime.count()
        );
        assert_eq!(
            a.disruptions_per_lifetime.mean(),
            b.disruptions_per_lifetime.mean()
        );
        assert_eq!(a.switches, b.switches);
        assert_eq!(a.service_delay_ms.mean(), b.service_delay_ms.mean());
    }

    #[test]
    fn obs_run_matches_plain_run_and_records() {
        use rom_obs::{RingSink, Tracer};

        let plain = ChurnSim::new(quick(AlgorithmKind::Rost, 100, 11)).run();
        let (sink, handle) = RingSink::new(100_000);
        let obs = Obs::new(Tracer::to_sink(Box::new(sink)));
        let (observed, obs) = ChurnSim::new(quick(AlgorithmKind::Rost, 100, 11)).run_with_obs(obs);

        // Observation must not perturb the simulation.
        assert_eq!(plain.switches, observed.switches);
        assert_eq!(plain.evictions, observed.evictions);
        assert_eq!(plain.service_delay_ms.mean(), observed.service_delay_ms.mean());
        assert_eq!(plain.outcome, observed.outcome);
        assert_eq!(plain.events_processed, observed.events_processed);
        assert_eq!(plain.outcome, RunOutcome::HorizonReached);
        assert!(plain.events_processed > 100);

        // The trace and metrics saw the run.
        assert!(obs.trace_events() > 0);
        assert!(!handle.is_empty());
        let snap = obs.snapshot();
        assert!(snap.counter("churn.departures") > 0);
        assert_eq!(snap.counter("rost.switch_promotions"), observed.switches);
        assert_eq!(plain.queue_high_water, observed.queue_high_water);
        assert!(observed.queue_high_water > 0);
        let queue = snap
            .histogram("sim.queue_depth")
            .expect("queue-depth histogram registered");
        assert_eq!(queue.bounds.first().copied(), Some(1.0));
        assert_eq!(queue.total, observed.events_processed);
        assert!(snap.gauge("churn.population").is_some());
    }

    #[test]
    fn observer_trace_recorded() {
        let mut cfg = quick(AlgorithmKind::Rost, 150, 8);
        cfg.observer = Some(ObserverSpec {
            bandwidth: 2.0,
            lifetime_secs: 36_000.0,
        });
        let report = ChurnSim::new(cfg).run();
        let trace = report.observer.expect("observer configured");
        assert!(
            !trace.delay_samples.is_empty(),
            "observer delay should be sampled"
        );
        for &(min, delay) in &trace.delay_samples {
            assert!(min >= 0.0);
            assert!(delay > 0.0);
        }
    }
}

#[cfg(test)]
mod behavior_tests {
    use super::*;
    use crate::config::ObserverSpec;
    use rom_net::TransitStubConfig;

    fn tiny(kind: AlgorithmKind, seed: u64) -> ChurnConfig {
        let mut cfg = ChurnConfig::quick(kind, 150);
        cfg.seed = seed;
        cfg.warmup_secs = 100.0;
        cfg.measure_secs = 300.0;
        cfg
    }

    /// Orphans stay detached for the configured rejoin delay: with a large
    /// delay and ongoing churn, the mean attached population visibly
    /// trails the zero-delay variant.
    #[test]
    fn rejoin_delay_keeps_orphans_detached() {
        let run = |delay: f64| {
            let mut cfg = tiny(AlgorithmKind::MinimumDepth, 3);
            cfg.target_size = 400;
            cfg.rejoin_delay_secs = delay;
            ChurnSim::new(cfg).run().population.mean()
        };
        let instant = run(0.0);
        let slow = run(60.0);
        assert!(
            slow < instant,
            "60 s rejoin delay ({slow:.1}) should depress the attached population vs 0 s ({instant:.1})"
        );
    }

    /// A capacity-starved overlay (every member a free-rider, a tiny
    /// root) rejects joins and keeps retrying instead of crashing.
    #[test]
    fn capacity_starved_overlay_records_rejections() {
        let mut cfg = tiny(AlgorithmKind::MinimumDepth, 4);
        // Bandwidths in [0.5, 0.99]: all free-riders; only the source can
        // serve, and it serves at most 100.
        cfg.bandwidth = rom_stats::BoundedPareto::new(1.2, 0.5, 0.99).unwrap();
        cfg.target_size = 300;
        let report = ChurnSim::new(cfg).run();
        assert!(
            report.rejections > 0,
            "an overlay without forwarding capacity must reject some joins"
        );
        // The root still serves its 100 slots.
        assert!(report.population.mean() <= 101.0);
        assert!(report.population.mean() > 50.0);
    }

    /// The observer is disrupted when (and only when) one of its ancestors
    /// departs: its disruption count matches the general bookkeeping.
    #[test]
    fn observer_disruptions_recorded_in_trace() {
        let mut cfg = tiny(AlgorithmKind::MinimumDepth, 5);
        cfg.target_size = 300;
        cfg.measure_secs = 900.0;
        cfg.observer = Some(ObserverSpec {
            bandwidth: 1.5,
            lifetime_secs: 36_000.0,
        });
        let report = ChurnSim::new(cfg).run();
        let trace = report.observer.expect("observer configured");
        for w in trace.disruption_minutes.windows(2) {
            assert!(w[0] <= w[1], "disruption times must be monotone");
        }
        for &m in &trace.disruption_minutes {
            assert!(
                (0.0..=15.1).contains(&m),
                "disruption at minute {m} outside horizon"
            );
        }
    }

    /// Eviction accounting: every relaxed-BO eviction charges at least the
    /// displaced member, so reconnections scale with evictions.
    #[test]
    fn eviction_overhead_scales_with_evictions() {
        let report = ChurnSim::new(tiny(AlgorithmKind::RelaxedBandwidthOrdered, 6)).run();
        assert!(report.evictions > 0);
        assert!(report.reconnections_per_lifetime.mean() > 0.0);
        // No switches without ROST.
        assert_eq!(report.switches, 0);
    }

    /// ROST switch locks are released on schedule: a long lock-hold with a
    /// short switching interval must not deadlock the tree (switches keep
    /// happening throughout the run).
    #[test]
    fn switch_locks_release_and_switching_continues() {
        let mut cfg = tiny(AlgorithmKind::Rost, 7);
        cfg.target_size = 300;
        cfg.rost.switching_interval_secs = 60.0;
        cfg.rost.lock_hold_secs = 30.0;
        cfg.rost.lock_retry_secs = 10.0;
        let report = ChurnSim::new(cfg).run();
        assert!(
            report.switches > 5,
            "switching must keep making progress under slow lock holds, got {}",
            report.switches
        );
    }

    /// The underlay honours the configured topology: delays are
    /// non-negative (zero only for members sharing the root's stub node)
    /// and stretch is never below one.
    #[test]
    fn members_live_on_stub_nodes_only() {
        let mut cfg = tiny(AlgorithmKind::MinimumDepth, 8);
        cfg.topology = TransitStubConfig::small();
        cfg.target_size = 100;
        let report = ChurnSim::new(cfg).run();
        assert!(report.service_delay_ms.min() >= 0.0);
        assert!(report.service_delay_ms.mean() > 0.0);
        assert!(report.stretch.min() >= 1.0 - 1e-9);
    }
}

#[cfg(test)]
mod graceful_tests {
    use super::*;

    fn cfg(graceful: f64, seed: u64) -> ChurnConfig {
        let mut cfg = ChurnConfig::quick(AlgorithmKind::MinimumDepth, 400);
        cfg.seed = seed;
        cfg.warmup_secs = 150.0;
        cfg.measure_secs = 500.0;
        cfg.graceful_fraction = graceful;
        cfg
    }

    #[test]
    fn all_graceful_departures_disrupt_nobody() {
        let report = ChurnSim::new(cfg(1.0, 1)).run();
        assert_eq!(report.disruption_events, 0);
        assert_eq!(report.disruptions_per_lifetime.mean(), 0.0);
        // The tree still churns and stays populated.
        assert!(report.population.mean() > 200.0);
    }

    #[test]
    fn graceful_fraction_interpolates() {
        let abrupt = ChurnSim::new(cfg(0.0, 2)).run().disruption_events;
        let half = ChurnSim::new(cfg(0.5, 2)).run().disruption_events;
        assert!(abrupt > 0);
        assert!(
            half < abrupt,
            "half-graceful ({half}) should disrupt less than all-abrupt ({abrupt})"
        );
    }

    #[test]
    fn graceful_streaming_never_starves_from_churn() {
        let mut streaming_cfg = crate::config::StreamingConfig::paper(cfg(1.0, 3), 2);
        streaming_cfg.churn.rejoin_delay_secs = 15.0;
        let report = crate::streaming::StreamingSim::new(streaming_cfg).run();
        assert_eq!(
            report.packets_starved, 0,
            "graceful hand-offs leave no gaps to starve on"
        );
    }
}

#[cfg(test)]
mod seeding_tests {
    use super::*;

    /// The t=0 equilibrium seed is effectively a flash crowd (§3.1 notes
    /// "nodes may arrive in flash crowds"): the entire target population
    /// must end up attached essentially immediately.
    #[test]
    fn flash_crowd_seeding_attaches_everyone() {
        for kind in AlgorithmKind::ALL {
            let mut cfg = ChurnConfig::quick(kind, 500);
            cfg.seed = 13;
            cfg.warmup_secs = 30.0; // barely any churn before we look
            cfg.measure_secs = 60.0;
            cfg.sample_interval_secs = 30.0;
            let report = ChurnSim::new(cfg).run();
            assert!(
                report.population.mean() > 420.0,
                "{kind}: only {:.0} of 500 seeded members attached",
                report.population.mean()
            );
            assert!(
                report.rejections < 50,
                "{kind}: {} rejections",
                report.rejections
            );
        }
    }
}
