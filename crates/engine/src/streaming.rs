//! The packet-level streaming simulation behind Figures 12–14.
//!
//! §6: "The data is propagated from the tree root at a constant rate of 10
//! packets per second... each node has a playback buffer size of 5
//! seconds... It is assumed that a member needs 5 seconds to detect a
//! failure of its parent, and another 10 seconds to rejoin the tree...
//! We only consider packet losses incurred by node failures. A node's
//! residual bandwidth is uniformly distributed in 0–9 packets/second, and
//! it only uses the residual bandwidth to help others in error recovery."
//!
//! The streaming layer rides on top of [`ChurnSim`](crate::ChurnSim):
//! departures open per-member *outages*; when a member's subtree
//! reattaches the outage closes and the missing sequence range is repaired
//! from the member's recovery group — a single source at its residual
//! rate (the baseline) or CER's stripes across the group (§4.2). Every
//! packet that misses its playback deadline contributes `1/rate` seconds
//! to the member's *starving time*; the **starving time ratio** is
//! starving time over view time.
//!
//! Between failures, delivery is deterministic (constant rate, fixed
//! path delay far below the buffer), so per-packet events are unnecessary:
//! accounting per outage is exact.

use std::collections::BTreeMap;

use rom_cer::{
    find_mlc_group, random_group, AncestorRecord, MlcOptions, PartialTree, RecoveryGroup,
    SeqRangeSet, StreamClock, StripePlan,
};
use rom_chaos::{CapacityTrace, DelaySpikes, GilbertElliott, InvariantRegistry, Signal};
use rom_net::{DelayOracle, UnderlayId};
use rom_obs::{Level, Obs, Subsystem, TraceEvent};
use rom_overlay::{MulticastTree, NodeId};
use rom_sim::{RunOutcome, SimRng, SimTime};
use rom_stats::Summary;

use crate::churn::{ChurnReport, ChurnSim};
use crate::config::{GroupSelection, RecoveryStrategy, StreamingConfig};

/// Latency added per recovery-chain hop (request forwarding + NACKs).
const CHAIN_HOP_SECS: f64 = 0.2;

/// Aggregate results of one streaming run.
#[derive(Debug, Clone)]
pub struct StreamingReport {
    /// Per-member starving-time ratio in percent — the Figs. 12–14 metric.
    /// One observation per member whose view overlapped the measurement
    /// window.
    pub starving_ratio_percent: Summary,
    /// Outages processed during the measurement window.
    pub outages: u64,
    /// Packets whose repair arrived by the playback deadline.
    pub packets_repaired_on_time: u64,
    /// Packets that missed their playback deadline (starved packets).
    pub packets_starved: u64,
    /// The underlying tree-level report.
    pub churn: ChurnReport,
}

impl StreamingReport {
    /// How the underlying event loop ended (see [`ChurnReport::outcome`]).
    #[must_use]
    pub fn outcome(&self) -> RunOutcome {
        self.churn.outcome
    }

    /// Total events the underlying simulation loop processed.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.churn.events_processed
    }

    /// Exact peak pending-event count of the underlying scheduler queue
    /// (see [`ChurnReport::queue_high_water`]).
    #[must_use]
    pub fn queue_high_water(&self) -> u64 {
        self.churn.queue_high_water
    }
}

/// An armed link-pathology episode on one member's access link (see
/// `rom_chaos::pathology`): bursty loss for the member's data stream,
/// capacity scaling and bloat spikes for the CER repair traffic that
/// crosses the same link. Pure sim-time state machines; the only
/// randomness is the uniforms the streaming layer feeds the loss chain
/// from its dedicated `"chaos-link"` RNG fork.
#[derive(Debug, Clone)]
pub(crate) struct LinkEpisode {
    /// The injecting action's name, for traces.
    pub(crate) kind: &'static str,
    /// Episode window on the sim clock.
    pub(crate) start: SimTime,
    /// Exclusive episode end.
    pub(crate) end: SimTime,
    /// Bursty loss on the member's access link, if any.
    pub(crate) loss: Option<GilbertElliott>,
    /// Capacity multiplier over the link's nominal rate, if any.
    pub(crate) capacity: Option<CapacityTrace>,
    /// Bufferbloat schedule (seconds), if any.
    pub(crate) spikes: Option<DelaySpikes>,
    /// Offset into the episode at which the spike schedule opens (the
    /// mobile profile aligns spikes with handovers, after the first
    /// dwell).
    pub(crate) spike_offset: f64,
}

/// When repaired packets become requestable in `serve_repairs`.
enum RepairTiming {
    /// The whole gap becomes repairable at once (an outage closing).
    Batch(SimTime),
    /// Each packet's loss is detected this long after its generation
    /// (link-level losses under an armed pathology episode).
    PerPacket {
        /// Detection lag in seconds.
        detection_secs: f64,
    },
}

/// Per-member streaming bookkeeping.
#[derive(Debug, Default)]
struct MemberStream {
    /// When the member's view started (never negative; seeded members
    /// watch from the epoch).
    view_start: f64,
    /// Residual helper bandwidth in packets/second.
    residual_pps: f64,
    /// Open outage start, if the member is currently cut off.
    outage_since: Option<SimTime>,
    /// Packets the member never obtained (can't serve them to others).
    holes: SeqRangeSet,
    /// Packets that missed this member's playback deadline.
    starved_packets: u64,
}

/// The streaming layer state, driven by hooks from the churn simulator.
#[derive(Debug)]
pub(crate) struct StreamingState {
    clock: StreamClock,
    group_size: usize,
    strategy: RecoveryStrategy,
    selection: GroupSelection,
    loss_detection_secs: f64,
    repair_cache_secs: f64,
    residual_pps: (f64, f64),
    view_size: usize,
    window_start: SimTime,
    window_end: SimTime,
    rng: SimRng,
    /// Dedicated fork (`"chaos-link"`) feeding uniforms to the armed
    /// pathology loss chains — never touched while no episode is armed,
    /// so pathology-free runs stay bit-identical to the baseline.
    link_rng: SimRng,
    members: BTreeMap<NodeId, MemberStream>,
    /// Armed pathology episodes, keyed by the afflicted member.
    pathology: BTreeMap<NodeId, LinkEpisode>,
    /// Ratios of members that already departed.
    finished_ratios: Vec<f64>,
    outages: u64,
    repaired_on_time: u64,
    starved: u64,
}

impl StreamingState {
    pub(crate) fn new(cfg: &StreamingConfig, rng: SimRng, link_rng: SimRng) -> Self {
        let window_start = SimTime::from_secs(cfg.churn.warmup_secs);
        StreamingState {
            clock: cfg.clock(),
            group_size: cfg.recovery_group_size,
            strategy: cfg.strategy,
            selection: cfg.selection,
            loss_detection_secs: cfg.loss_detection_secs,
            repair_cache_secs: cfg.repair_cache_secs,
            residual_pps: cfg.residual_pps,
            view_size: cfg.churn.view_size,
            window_start,
            window_end: window_start + cfg.churn.measure_secs,
            rng,
            link_rng,
            members: BTreeMap::new(),
            pathology: BTreeMap::new(),
            finished_ratios: Vec::new(),
            outages: 0,
            repaired_on_time: 0,
            starved: 0,
        }
    }

    /// A member entered the overlay (fresh arrival or equilibrium seed).
    pub(crate) fn on_member_joined(&mut self, id: NodeId, join: SimTime) {
        let residual = self.rng.range_f64(
            self.residual_pps.0,
            self.residual_pps.1.max(self.residual_pps.0 + 1e-9),
        );
        self.members.insert(
            id,
            MemberStream {
                view_start: join.as_secs().max(0.0),
                residual_pps: residual,
                ..MemberStream::default()
            },
        );
    }

    /// A member departed; fold its starving ratio into the results when
    /// its view overlapped the measurement window.
    pub(crate) fn on_member_departed(&mut self, id: NodeId, now: SimTime) {
        self.pathology.remove(&id);
        if let Some(stream) = self.members.remove(&id) {
            if let Some(ratio) = self.ratio_of(&stream, now) {
                self.finished_ratios.push(ratio);
            }
        }
    }

    /// An abrupt departure cut `affected` members off the stream.
    pub(crate) fn on_failure(&mut self, affected: &[NodeId], now: SimTime, obs: &mut Obs) {
        let mut opened = 0u64;
        for &m in affected {
            if let Some(stream) = self.members.get_mut(&m) {
                if stream.outage_since.is_none() {
                    opened += 1;
                }
                stream.outage_since.get_or_insert(now);
            }
        }
        if opened > 0 {
            obs.count("streaming.outages_opened", opened);
            if obs.enabled(Subsystem::Streaming, Level::Info) {
                obs.emit(
                    TraceEvent::new(now.as_secs(), Subsystem::Streaming, "outage")
                        .u64("members", opened),
                );
            }
        }
    }

    /// The subtree rooted at `orphan` is attached again: close the outage
    /// of every member in it and run recovery for the missed range.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_restore(
        &mut self,
        tree: &MulticastTree,
        oracle: &DelayOracle,
        live: &[NodeId],
        orphan: NodeId,
        now: SimTime,
        obs: &mut Obs,
        mut invariants: Option<&mut InvariantRegistry>,
    ) {
        let mut subtree = vec![orphan];
        tree.descendants_into(orphan, &mut subtree);
        for member in subtree {
            let Some(t0) = self
                .members
                .get_mut(&member)
                .and_then(|s| s.outage_since.take())
            else {
                continue;
            };
            self.repair_outage(
                tree,
                oracle,
                live,
                member,
                t0,
                now,
                obs,
                invariants.as_deref_mut(),
            );
        }
    }

    /// Arms a pathology episode on `member`'s access link. A newer
    /// episode simply replaces an older one (the stale end event is
    /// ignored by [`Self::on_link_episode_end`]'s guard).
    pub(crate) fn on_link_episode_start(
        &mut self,
        member: NodeId,
        episode: LinkEpisode,
        now: SimTime,
        obs: &mut Obs,
    ) {
        if !self.members.contains_key(&member) {
            return;
        }
        if obs.is_active() {
            obs.count("chaos.link_episodes", 1);
            if obs.enabled(Subsystem::Chaos, Level::Info) {
                obs.emit(
                    TraceEvent::new(now.as_secs(), Subsystem::Chaos, "link_episode")
                        .u64("member", member.0)
                        .str("kind", episode.kind)
                        .f64("duration_secs", episode.end - episode.start),
                );
            }
        }
        self.pathology.insert(member, episode);
    }

    /// An armed episode ran its course: classify every data packet that
    /// crossed the member's access link through the episode's loss chain,
    /// repair the lost ones from the member's recovery group (the repair
    /// traffic still experiences the episode's capacity/spike pathology),
    /// then disarm the episode.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_link_episode_end(
        &mut self,
        tree: &MulticastTree,
        oracle: &DelayOracle,
        live: &[NodeId],
        member: NodeId,
        now: SimTime,
        obs: &mut Obs,
        invariants: Option<&mut InvariantRegistry>,
    ) {
        let (s0, s1, lost) = {
            let Some(ep) = self.pathology.get_mut(&member) else {
                return; // member departed, or a newer episode already ended
            };
            if ep.end > now {
                return; // stale end event: a newer episode replaced this one
            }
            // Only packets the member actually streamed cross its link:
            // clamp the episode to the member's view, and stop at an open
            // outage (the outage repair accounts for everything after it).
            let Some(stream) = self.members.get(&member) else {
                self.pathology.remove(&member);
                return;
            };
            let mut start = ep.start;
            if stream.view_start > start.as_secs() {
                start = SimTime::from_secs(stream.view_start);
            }
            let mut end = if ep.end < now { ep.end } else { now };
            if let Some(t0) = stream.outage_since {
                if t0 < end {
                    end = t0;
                }
            }
            let s0 = self.clock.seq_at(start);
            let s1 = self.clock.seq_at(end);
            let mut lost: Vec<u64> = Vec::new();
            if let Some(chain) = ep.loss.as_mut() {
                for seq in s0..s1 {
                    let u = self.link_rng.uniform();
                    if chain.classify(u) {
                        lost.push(seq);
                    }
                }
            }
            (s0, s1, lost)
        };
        if s1 > s0 && obs.is_active() {
            obs.count("chaos.link_frames", s1 - s0);
            obs.count("chaos.link_lost", lost.len() as u64);
        }
        let mut repaired_now = 0u64;
        let mut starved_now = 0u64;
        let mut new_holes: Vec<u64> = Vec::new();
        if !lost.is_empty() {
            let _span = tree.prof().span("cer.link_repair");
            let group = self.select_group(tree, oracle, live, member);
            if let Some(registry) = invariants {
                registry.signal(
                    tree,
                    now,
                    &Signal::RecoveryGroupChosen {
                        member,
                        group: group.members(),
                    },
                    obs,
                );
            }
            let available = self.available_helpers(tree, &group);
            let (repaired, starved, holes) = self.serve_repairs(
                tree,
                member,
                &available,
                lost.iter().copied(),
                lost.len() as u64,
                &RepairTiming::PerPacket {
                    detection_secs: self.loss_detection_secs,
                },
                now,
                obs,
            );
            repaired_now = repaired;
            starved_now = starved;
            new_holes = holes;
            if obs.is_active() {
                obs.count("cer.link_repairs", 1);
                obs.count("cer.packets_repaired", repaired_now);
                obs.count("cer.packets_starved", starved_now);
                if obs.enabled(Subsystem::Chaos, Level::Info) {
                    obs.emit(
                        TraceEvent::new(now.as_secs(), Subsystem::Chaos, "link_episode_end")
                            .u64("member", member.0)
                            .u64("frames", s1 - s0)
                            .u64("lost", lost.len() as u64)
                            .u64("repaired", repaired_now)
                            .u64("starved", starved_now),
                    );
                }
            }
        }
        self.pathology.remove(&member);
        if now >= self.window_start && now <= self.window_end {
            self.starved += starved_now;
            self.repaired_on_time += repaired_now;
        }
        if let Some(stream) = self.members.get_mut(&member) {
            stream.starved_packets += starved_now;
            for seq in new_holes {
                stream.holes.insert(seq);
            }
        }
    }

    /// The capacity multiplier and extra spike latency on `member`'s
    /// access link at instant `t`: exactly `(1.0, 0.0)` outside an armed
    /// episode, so pathology-free arithmetic is bit-identical to the
    /// baseline (`pps * 1.0 == pps`, `x + 0.0 == x`).
    fn link_quality_at(&self, member: NodeId, t: SimTime) -> (f64, f64) {
        let Some(ep) = self.pathology.get(&member) else {
            return (1.0, 0.0);
        };
        if t < ep.start || t >= ep.end {
            return (1.0, 0.0);
        }
        let offset = t - ep.start;
        let factor = ep.capacity.as_ref().map_or(1.0, |c| c.factor_at(offset));
        let extra = ep
            .spikes
            .as_ref()
            .map_or(0.0, |s| s.extra_at(offset - ep.spike_offset));
        (factor, extra)
    }

    /// Classifies one repair frame crossing `member`'s access link at
    /// instant `t` through the armed episode's loss chain. Draws exactly
    /// one `"chaos-link"` uniform when (and only when) a lossy episode is
    /// active — never otherwise, keeping pathology-free runs untouched.
    fn repair_frame_lost(&mut self, member: NodeId, t: SimTime) -> bool {
        let Some(ep) = self.pathology.get_mut(&member) else {
            return false;
        };
        if t < ep.start || t >= ep.end {
            return false;
        }
        let Some(chain) = ep.loss.as_mut() else {
            return false;
        };
        let u = self.link_rng.uniform();
        chain.classify(u)
    }

    /// Finalizes ratios of members still alive at the end of the run.
    pub(crate) fn into_report(mut self, churn: ChurnReport) -> StreamingReport {
        let end = self.window_end;
        let mut ratios = std::mem::take(&mut self.finished_ratios);
        // BTreeMap iteration is id-ordered, so the floating-point sum (and
        // hence the report) is identical across runs of the same seed.
        for stream in self.members.values() {
            if let Some(ratio) = self.ratio_of(stream, end) {
                ratios.push(ratio);
            }
        }
        StreamingReport {
            starving_ratio_percent: ratios.into_iter().collect(),
            outages: self.outages,
            packets_repaired_on_time: self.repaired_on_time,
            packets_starved: self.starved,
            churn,
        }
    }

    /// The member's starving-time ratio (in %) over the part of its view
    /// that overlapped the measurement window; `None` when the overlap is
    /// too short to be meaningful.
    fn ratio_of(&self, stream: &MemberStream, now: SimTime) -> Option<f64> {
        let start = stream.view_start.max(self.window_start.as_secs());
        let end = now.as_secs().min(self.window_end.as_secs());
        let view = end - start;
        if view < 30.0 {
            return None;
        }
        let starving_secs = stream.starved_packets as f64 / self.clock.rate_pps();
        Some((starving_secs / view * 100.0).min(100.0))
    }

    /// Selects the member's recovery group at repair time: gather a view,
    /// rebuild the partial tree from ancestor records, run Algorithm 1 (or
    /// the random baseline) and order the result by network distance.
    fn select_group(
        &mut self,
        tree: &MulticastTree,
        oracle: &DelayOracle,
        live: &[NodeId],
        member: NodeId,
    ) -> RecoveryGroup {
        let _span = tree.prof().span("cer.group_select");
        let view = self.rng.sample(live, self.view_size);
        let records: Vec<AncestorRecord> = view
            .iter()
            .filter(|&&v| v != member)
            .filter_map(|&v| AncestorRecord::from_tree(tree, v))
            .collect();
        let partial = PartialTree::from_records(&records);
        let mut exclude = tree.ancestors(member);
        exclude.push(member);
        let options = MlcOptions { exclude };
        let chosen = match self.selection {
            GroupSelection::MinimumLossCorrelation => {
                find_mlc_group(&partial, self.group_size, &options, &mut self.rng)
            }
            GroupSelection::Random => {
                random_group(&partial, self.group_size, &options, &mut self.rng)
            }
        };
        let member_loc = tree
            .profile(member)
            .map(|p| p.location)
            .expect("repairing member exists");
        let with_distance: Vec<(NodeId, f64)> = chosen
            .into_iter()
            .filter_map(|g| {
                let loc = tree.profile(g)?.location;
                Some((
                    g,
                    oracle.delay_ms(UnderlayId(member_loc.0), UnderlayId(loc.0)),
                ))
            })
            .collect();
        RecoveryGroup::ordered_by_distance(with_distance)
    }

    /// The group members able to serve repairs right now, with their
    /// residual rates, in group (distance) order.
    fn available_helpers(
        &self,
        tree: &MulticastTree,
        group: &RecoveryGroup,
    ) -> Vec<(NodeId, f64, usize)> {
        group
            .members()
            .iter()
            .enumerate()
            .filter_map(|(hop, &g)| {
                let stream = self.members.get(&g)?;
                if !tree.is_attached(g) || stream.residual_pps <= 0.0 {
                    return None;
                }
                Some((g, stream.residual_pps, hop))
            })
            .collect()
    }

    /// Serves the given missing packets from `available` under the
    /// configured strategy, returning `(repaired, starved, new_holes)`.
    ///
    /// This is the shared core of outage repairs and link-episode
    /// repairs. Every repair frame crosses `member`'s access link, so an
    /// armed pathology episode applies to it exactly as to data: the
    /// capacity factor scales the server's rate, active bloat spikes add
    /// latency, and the loss chain may drop the frame outright. Outside
    /// an episode the pathology terms are the exact identities
    /// (`× 1.0`, `+ 0.0`, no draw), keeping baseline runs bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn serve_repairs<I>(
        &mut self,
        tree: &MulticastTree,
        member: NodeId,
        available: &[(NodeId, f64, usize)],
        seqs: I,
        gap: u64,
        timing: &RepairTiming,
        now: SimTime,
        obs: &mut Obs,
    ) -> (u64, u64, Vec<u64>)
    where
        I: Iterator<Item = u64>,
    {
        let mut repaired_now = 0u64;
        let mut starved_now = 0u64;
        let mut new_holes: Vec<u64> = Vec::new();
        let ready_at = |clock: &StreamClock, seq: u64| match *timing {
            RepairTiming::Batch(t) => t,
            RepairTiming::PerPacket { detection_secs } => {
                clock.generation_time(seq) + detection_secs
            }
        };
        match self.strategy {
            RecoveryStrategy::Cooperative => {
                // Stripe the gap across the available members (§4.2). The
                // full-coverage plan assigns every slot even when the
                // group's residuals sum to less than a stream — each
                // member then serves its (wider) stripe at its own rate,
                // falling behind by exactly the bandwidth shortfall, and
                // the playback buffer decides how much of that lateness
                // turns into starvation.
                let fractions: Vec<f64> = available
                    .iter()
                    .map(|&(_, pps, _)| pps / self.clock.rate_pps())
                    .collect();
                let plan = StripePlan::plan_full_coverage(&fractions);
                if obs.is_active() {
                    // Stripe width = how many helpers the gap is striped
                    // across (Fig. 12's group-size effect, observed).
                    obs.count("cer.stripe_plans", 1);
                    obs.observe("cer.stripe_width", plan.segments().len() as f64);
                    if obs.enabled(Subsystem::Cer, Level::Info) {
                        obs.emit(
                            TraceEvent::new(now.as_secs(), Subsystem::Cer, "stripe_plan")
                                .u64("member", member.0)
                                .u64("gap", gap)
                                .u64("width", plan.segments().len() as u64)
                                .f64("coverage", plan.coverage()),
                        );
                    }
                }
                let mut served_count: Vec<u64> = vec![0; available.len()];
                for seq in seqs {
                    match plan.assigned_member(seq) {
                        Some(idx) => {
                            let (server, pps, hop) = available[idx];
                            if self.has_packet(tree, server, seq, now) {
                                served_count[idx] += 1;
                                let serve_start =
                                    ready_at(&self.clock, seq) + hop as f64 * CHAIN_HOP_SECS;
                                let (factor, extra) = self.link_quality_at(member, serve_start);
                                let arrival =
                                    serve_start + served_count[idx] as f64 / (pps * factor) + extra;
                                if self.repair_frame_lost(member, serve_start) {
                                    obs.count("cer.repair_dropped", 1);
                                    starved_now += 1;
                                    new_holes.push(seq);
                                } else if arrival <= self.clock.playback_deadline(seq) {
                                    repaired_now += 1;
                                } else {
                                    starved_now += 1;
                                }
                            } else {
                                starved_now += 1;
                                new_holes.push(seq);
                            }
                        }
                        None => {
                            // Residuals did not cover this stripe slot.
                            starved_now += 1;
                            new_holes.push(seq);
                        }
                    }
                }
            }
            RecoveryStrategy::SingleSource => {
                // The nearest live member alone serves everything it can
                // at its residual rate; the rest of the group are fallback
                // candidates, not parallel servers.
                match available.first() {
                    Some(&(server, pps, hop)) => {
                        let mut served = 0u64;
                        for seq in seqs {
                            if self.has_packet(tree, server, seq, now) {
                                served += 1;
                                let serve_start =
                                    ready_at(&self.clock, seq) + hop as f64 * CHAIN_HOP_SECS;
                                let (factor, extra) = self.link_quality_at(member, serve_start);
                                let arrival =
                                    serve_start + served as f64 / (pps * factor) + extra;
                                if self.repair_frame_lost(member, serve_start) {
                                    obs.count("cer.repair_dropped", 1);
                                    starved_now += 1;
                                    new_holes.push(seq);
                                } else if arrival <= self.clock.playback_deadline(seq) {
                                    repaired_now += 1;
                                } else {
                                    starved_now += 1;
                                }
                            } else {
                                starved_now += 1;
                                new_holes.push(seq);
                            }
                        }
                    }
                    None => {
                        for seq in seqs {
                            starved_now += 1;
                            new_holes.push(seq);
                        }
                    }
                }
            }
        }
        (repaired_now, starved_now, new_holes)
    }

    /// True if `server` can supply packet `seq` at time `now`.
    fn has_packet(&self, tree: &MulticastTree, server: NodeId, seq: u64, now: SimTime) -> bool {
        if !tree.is_attached(server) {
            return false;
        }
        let Some(stream) = self.members.get(&server) else {
            return false;
        };
        let gen = self.clock.generation_time(seq);
        if gen.as_secs() < stream.view_start {
            return false; // joined after this packet went by
        }
        if now - gen > self.repair_cache_secs {
            return false; // evicted from the repair cache
        }
        !stream.holes.contains(seq)
    }

    /// Closes one outage `[t0, now)` for `member` and accounts the repair.
    #[allow(clippy::too_many_arguments)]
    fn repair_outage(
        &mut self,
        tree: &MulticastTree,
        oracle: &DelayOracle,
        live: &[NodeId],
        member: NodeId,
        t0: SimTime,
        now: SimTime,
        obs: &mut Obs,
        invariants: Option<&mut InvariantRegistry>,
    ) {
        let _span = tree.prof().span("cer.repair");
        let s0 = self.clock.seq_at(t0);
        let s1 = self.clock.seq_at(now);
        if s1 <= s0 {
            return;
        }
        if now >= self.window_start && now <= self.window_end {
            self.outages += 1;
        }
        let t_repair = t0 + self.loss_detection_secs;
        let group = self.select_group(tree, oracle, live, member);
        if let Some(registry) = invariants {
            registry.signal(
                tree,
                now,
                &Signal::RecoveryGroupChosen {
                    member,
                    group: group.members(),
                },
                obs,
            );
        }

        let available = self.available_helpers(tree, &group);

        let in_window = now >= self.window_start && now <= self.window_end;
        let (repaired_now, starved_now, new_holes) = self.serve_repairs(
            tree,
            member,
            &available,
            s0..s1,
            s1 - s0,
            &RepairTiming::Batch(t_repair),
            now,
            obs,
        );

        if in_window {
            self.starved += starved_now;
            self.repaired_on_time += repaired_now;
        }
        if obs.is_active() {
            obs.count("cer.repairs", 1);
            obs.count("cer.packets_repaired", repaired_now);
            obs.count("cer.packets_starved", starved_now);
            obs.observe("cer.repair_latency_secs", now - t0);
            if obs.enabled(Subsystem::Cer, Level::Info) {
                obs.emit(
                    TraceEvent::new(now.as_secs(), Subsystem::Cer, "repair")
                        .u64("member", member.0)
                        .u64("gap", s1 - s0)
                        .u64("helpers", available.len() as u64)
                        .u64("repaired", repaired_now)
                        .u64("starved", starved_now)
                        .f64("starved_secs", starved_now as f64 / self.clock.rate_pps())
                        .f64("latency_secs", now - t0)
                        .str(
                            "strategy",
                            match self.strategy {
                                RecoveryStrategy::Cooperative => "cooperative",
                                RecoveryStrategy::SingleSource => "single_source",
                            },
                        ),
                );
            }
        }
        let stream = self
            .members
            .get_mut(&member)
            .expect("repairing member exists");
        stream.starved_packets += starved_now;
        for seq in new_holes {
            stream.holes.insert(seq);
        }
    }
}

/// The packet-level streaming simulator (Figs. 12–14).
///
/// # Examples
///
/// ```
/// use rom_engine::{AlgorithmKind, ChurnConfig, StreamingConfig, StreamingSim};
///
/// let mut churn = ChurnConfig::quick(AlgorithmKind::MinimumDepth, 120);
/// churn.warmup_secs = 120.0;
/// churn.measure_secs = 300.0;
/// let report = StreamingSim::new(StreamingConfig::paper(churn, 2)).run();
/// assert!(report.starving_ratio_percent.count() > 50);
/// ```
#[derive(Debug)]
pub struct StreamingSim {
    inner: ChurnSim,
}

impl StreamingSim {
    /// Builds the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`StreamingConfig::validate`]).
    #[must_use]
    pub fn new(cfg: StreamingConfig) -> Self {
        cfg.validate();
        StreamingSim {
            inner: ChurnSim::new_with_streaming(cfg),
        }
    }

    /// Runs to completion.
    #[must_use]
    pub fn run(self) -> StreamingReport {
        self.inner.run_streaming()
    }

    /// Runs with the given observability pipeline installed and returns it
    /// (finished) alongside the report — see
    /// [`ChurnSim::run_with_obs`](crate::ChurnSim::run_with_obs).
    #[must_use]
    pub fn run_with_obs(self, obs: Obs) -> (StreamingReport, Obs) {
        self.inner.run_streaming_with_obs(obs)
    }

    /// Runs with the given invariant registry armed — see
    /// [`ChurnSim::run_checked`](crate::ChurnSim::run_checked). On top of
    /// the tree-level signals, the streaming layer reports every recovery
    /// group it selects.
    #[must_use]
    pub fn run_checked(
        self,
        registry: InvariantRegistry,
        obs: Obs,
    ) -> (StreamingReport, InvariantRegistry, Obs) {
        self.inner.run_streaming_checked(registry, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AlgorithmKind, ChurnConfig};

    fn quick_streaming(
        group: usize,
        strategy: RecoveryStrategy,
        seed: u64,
        size: usize,
    ) -> StreamingConfig {
        let mut churn = ChurnConfig::quick(AlgorithmKind::MinimumDepth, size);
        churn.seed = seed;
        churn.warmup_secs = 150.0;
        churn.measure_secs = 500.0;
        let mut cfg = StreamingConfig::paper(churn, group);
        cfg.strategy = strategy;
        cfg
    }

    #[test]
    fn produces_ratios_and_outages() {
        // Size well above the root's out-degree (100), so that real
        // multi-level subtrees exist and departures actually disrupt.
        let report =
            StreamingSim::new(quick_streaming(2, RecoveryStrategy::Cooperative, 1, 400)).run();
        assert!(report.starving_ratio_percent.count() > 50);
        assert!(report.outages > 0, "some members must lose their parents");
        let mean = report.starving_ratio_percent.mean();
        assert!((0.0..=100.0).contains(&mean));
    }

    #[test]
    fn larger_groups_starve_less() {
        // Fig. 12's headline: group size 3 dramatically beats size 1.
        let mut small = 0.0;
        let mut large = 0.0;
        for seed in 1..=3 {
            small +=
                StreamingSim::new(quick_streaming(1, RecoveryStrategy::Cooperative, seed, 200))
                    .run()
                    .starving_ratio_percent
                    .mean();
            large +=
                StreamingSim::new(quick_streaming(3, RecoveryStrategy::Cooperative, seed, 200))
                    .run()
                    .starving_ratio_percent
                    .mean();
        }
        assert!(
            large < small,
            "group size 3 ({large:.4}) should starve less than size 1 ({small:.4})"
        );
    }

    #[test]
    fn cooperative_beats_single_source() {
        // Fig. 14's headline, at equal group size.
        let mut single = 0.0;
        let mut coop = 0.0;
        for seed in 1..=3 {
            single += StreamingSim::new(quick_streaming(
                3,
                RecoveryStrategy::SingleSource,
                seed,
                200,
            ))
            .run()
            .starving_ratio_percent
            .mean();
            coop += StreamingSim::new(quick_streaming(3, RecoveryStrategy::Cooperative, seed, 200))
                .run()
                .starving_ratio_percent
                .mean();
        }
        assert!(
            coop < single,
            "cooperative ({coop:.4}) should beat single-source ({single:.4})"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = StreamingSim::new(quick_streaming(2, RecoveryStrategy::Cooperative, 7, 120)).run();
        let b = StreamingSim::new(quick_streaming(2, RecoveryStrategy::Cooperative, 7, 120)).run();
        assert_eq!(a.outages, b.outages);
        assert_eq!(a.packets_starved, b.packets_starved);
        assert_eq!(
            a.starving_ratio_percent.mean(),
            b.starving_ratio_percent.mean()
        );
    }

    #[test]
    fn bigger_buffers_starve_less() {
        // Fig. 13's trend.
        let base = quick_streaming(1, RecoveryStrategy::Cooperative, 5, 200);
        let mut tight = base.clone();
        tight.buffer_secs = 5.0;
        let mut roomy = base;
        roomy.buffer_secs = 30.0;
        let tight_ratio = StreamingSim::new(tight).run().starving_ratio_percent.mean();
        let roomy_ratio = StreamingSim::new(roomy).run().starving_ratio_percent.mean();
        assert!(
            roomy_ratio <= tight_ratio,
            "30 s buffer ({roomy_ratio:.4}) should not starve more than 5 s ({tight_ratio:.4})"
        );
    }
}

#[cfg(test)]
mod behavior_tests {
    use super::*;
    use crate::config::{AlgorithmKind, ChurnConfig, GroupSelection};

    fn base(seed: u64) -> StreamingConfig {
        let mut churn = ChurnConfig::quick(AlgorithmKind::MinimumDepth, 300);
        churn.seed = seed;
        churn.warmup_secs = 150.0;
        churn.measure_secs = 500.0;
        StreamingConfig::paper(churn, 2)
    }

    /// A tiny repair cache starves more: old packets age out of the
    /// helpers' buffers before the request arrives.
    #[test]
    fn short_repair_cache_hurts() {
        let mut starved_small = 0.0;
        let mut starved_large = 0.0;
        for seed in 1..=3 {
            let mut small = base(seed);
            small.repair_cache_secs = 6.0; // barely beyond the outage start
            let mut large = base(seed);
            large.repair_cache_secs = 300.0;
            starved_small += StreamingSim::new(small).run().starving_ratio_percent.mean();
            starved_large += StreamingSim::new(large).run().starving_ratio_percent.mean();
        }
        assert!(
            starved_large <= starved_small,
            "large cache ({starved_large:.4}) must not starve more than small ({starved_small:.4})"
        );
    }

    /// Zero residual bandwidth everywhere: nobody can repair anything, so
    /// the starving time equals the raw outage exposure, substantially
    /// above the repaired case.
    #[test]
    fn no_residual_bandwidth_means_no_repairs() {
        let mut crippled = base(4);
        crippled.residual_pps = (0.0, 1e-6);
        let crippled_report = StreamingSim::new(crippled).run();
        assert_eq!(
            crippled_report.packets_repaired_on_time, 0,
            "repairs need residual bandwidth"
        );
        let healthy_report = StreamingSim::new(base(4)).run();
        assert!(
            healthy_report.starving_ratio_percent.mean()
                < crippled_report.starving_ratio_percent.mean()
        );
    }

    /// MLC and random group selection are in the same performance range
    /// at small scale — the loss-correlation benefit only separates them
    /// when deep subtrees make correlated recovery-node failures likely
    /// (see the `ablation_group_selection` binary for the quantitative
    /// comparison at realistic sizes).
    #[test]
    fn mlc_selection_comparable_to_random_at_small_scale() {
        let run = |selection: GroupSelection| {
            let mut total = 0.0;
            for seed in 1..=4 {
                let mut cfg = base(seed);
                cfg.selection = selection;
                total += StreamingSim::new(cfg).run().starving_ratio_percent.mean();
            }
            total / 4.0
        };
        let mlc = run(GroupSelection::MinimumLossCorrelation);
        let random = run(GroupSelection::Random);
        assert!(mlc > 0.0 && random > 0.0);
        assert!(
            mlc <= random * 2.0 && random <= mlc * 2.0,
            "MLC ({mlc:.4}) and random ({random:.4}) should be within 2× at this scale"
        );
    }
}
