//! Experiment configuration (§5 of the paper).

use rom_chaos::Scenario;
use rom_net::TransitStubConfig;
use rom_rost::RostConfig;
use rom_stats::{BoundedPareto, LogNormal};

/// Which tree-construction algorithm drives an experiment — the five
/// §5 contenders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// §5 (1): distributed minimum-depth join, no maintenance.
    MinimumDepth,
    /// §5 (2): distributed longest-first join, no maintenance.
    LongestFirst,
    /// §5 (3): centralized relaxed bandwidth-ordered tree.
    RelaxedBandwidthOrdered,
    /// §5 (4): centralized relaxed time-ordered tree.
    RelaxedTimeOrdered,
    /// §5 (5): ROST — minimum-depth join plus BTP switching.
    Rost,
}

impl AlgorithmKind {
    /// All five algorithms in the paper's presentation order.
    pub const ALL: [AlgorithmKind; 5] = [
        AlgorithmKind::MinimumDepth,
        AlgorithmKind::RelaxedBandwidthOrdered,
        AlgorithmKind::LongestFirst,
        AlgorithmKind::RelaxedTimeOrdered,
        AlgorithmKind::Rost,
    ];

    /// The three distributed algorithms (the delay comparison of Fig. 7
    /// singles these out).
    pub const DISTRIBUTED: [AlgorithmKind; 3] = [
        AlgorithmKind::MinimumDepth,
        AlgorithmKind::LongestFirst,
        AlgorithmKind::Rost,
    ];

    /// Short display name matching the figures' legends.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::MinimumDepth => "min-depth",
            AlgorithmKind::LongestFirst => "longest-first",
            AlgorithmKind::RelaxedBandwidthOrdered => "relaxed-bw-ordered",
            AlgorithmKind::RelaxedTimeOrdered => "relaxed-time-ordered",
            AlgorithmKind::Rost => "rost",
        }
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The "typical member" tracked by Figs. 6 and 9: "a moderate bandwidth
/// and a long lifetime in order to observe the network over a long
/// period. It joins the overlay after the network enters a steady state."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObserverSpec {
    /// The observer's outbound bandwidth (stream-rate units).
    pub bandwidth: f64,
    /// The observer's lifetime in seconds.
    pub lifetime_secs: f64,
}

impl Default for ObserverSpec {
    /// Moderate bandwidth (2 streams) and a five-hour stay — the paper's
    /// time axes run to 300 minutes.
    fn default() -> Self {
        ObserverSpec {
            bandwidth: 2.0,
            lifetime_secs: 300.0 * 60.0,
        }
    }
}

/// Configuration of a churn-driven tree experiment (Figs. 4–11).
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// Steady-state membership M; the arrival rate follows from Little's
    /// law (λ = M / mean lifetime).
    pub target_size: usize,
    /// Root seed; every random stream in the run forks from it.
    pub seed: u64,
    /// The tree-construction algorithm under test.
    pub algorithm: AlgorithmKind,
    /// ROST parameters (ignored by other algorithms).
    pub rost: RostConfig,
    /// Outbound-bandwidth distribution (§5: Bounded Pareto 1.2/0.5/100).
    pub bandwidth: BoundedPareto,
    /// Lifetime distribution (§5: Lognormal 5.5/2.0).
    pub lifetime: LogNormal,
    /// Partial-view size for distributed algorithms (§3.3: ~100).
    pub view_size: usize,
    /// Underlay topology parameters.
    pub topology: TransitStubConfig,
    /// Media stream rate; §5 normalizes it to 1.
    pub stream_rate: f64,
    /// Seconds of churn before measurement starts (the tree is seeded with
    /// an equilibrium population first, so this only settles structure).
    pub warmup_secs: f64,
    /// Virtual history length: seeded member ages follow the stationary
    /// age distribution truncated at this horizon, as if the overlay had
    /// been running organically for this long.
    pub history_secs: f64,
    /// Length of the measurement window in seconds.
    pub measure_secs: f64,
    /// Interval between tree-quality samples (delay, stretch).
    pub sample_interval_secs: f64,
    /// Delay before an orphaned member rejoins (failure detection +
    /// parent re-finding). Zero for pure tree experiments; the streaming
    /// experiments use 5 s + 10 s (§6).
    pub rejoin_delay_secs: f64,
    /// Delay before a rejected (no capacity in view) join/rejoin retries.
    pub retry_secs: f64,
    /// Fraction of departures that are *graceful* (§3.3: a leaving member
    /// "may give notification to its neighbors or it may just leave
    /// abruptly"). A graceful departure hands its children off without a
    /// streaming disruption. The paper's evaluation uses the extreme
    /// all-abrupt case (0.0), "the most uncooperative and dynamic
    /// environment".
    pub graceful_fraction: f64,
    /// Optional tracked typical member.
    pub observer: Option<ObserverSpec>,
    /// Optional fault-injection scenario (`rom-chaos`). Its injections are
    /// scheduled at absolute simulation times during seeding; chaos draws
    /// come from a dedicated RNG fork, so an identical configuration with
    /// `chaos: None` replays the exact same organic workload.
    pub chaos: Option<Scenario>,
    /// Optional hard cap on processed events; the run ends with
    /// [`rom_sim::RunOutcome::BudgetExhausted`] when it is hit. `None`
    /// (the default) runs to the horizon.
    pub max_events: Option<u64>,
}

impl ChurnConfig {
    /// The paper's §5 settings for the given algorithm and network size.
    #[must_use]
    pub fn paper(algorithm: AlgorithmKind, target_size: usize) -> Self {
        ChurnConfig {
            target_size,
            seed: 1,
            algorithm,
            rost: RostConfig::paper(),
            bandwidth: BoundedPareto::paper_bandwidth(),
            lifetime: LogNormal::paper_lifetime(),
            view_size: 100,
            topology: TransitStubConfig::sized_for(target_size.max(1) * 2),
            stream_rate: 1.0,
            warmup_secs: 1_800.0,
            history_secs: 14_400.0,
            measure_secs: 3_600.0,
            sample_interval_secs: 120.0,
            rejoin_delay_secs: 0.0,
            retry_secs: 5.0,
            graceful_fraction: 0.0,
            observer: None,
            chaos: None,
            max_events: None,
        }
    }

    /// A reduced-scale configuration for tests and quick runs: small
    /// topology, short windows.
    #[must_use]
    pub fn quick(algorithm: AlgorithmKind, target_size: usize) -> Self {
        ChurnConfig {
            warmup_secs: 300.0,
            measure_secs: 900.0,
            sample_interval_secs: 60.0,
            topology: TransitStubConfig::sized_for(target_size.max(1) * 2),
            ..ChurnConfig::paper(algorithm, target_size)
        }
    }

    /// A `--mega` configuration: paper churn dynamics at 100k–1M members
    /// with a hard event budget as the designed stopping rule.
    ///
    /// Scale invariants that make million-member cells tractable:
    /// `TransitStubConfig::sized_for` only shrinks *below* the paper
    /// topology, so the underlay (and the delay oracle's Dijkstra cost)
    /// stays at paper scale while membership grows; and the event budget
    /// bounds the loop by construction — a cell that ends in
    /// [`rom_sim::RunOutcome::BudgetExhausted`] is a complete measurement
    /// of `max_events` dispatches, not a truncated experiment. Sampling
    /// is disabled-in-effect (one sample per window) because per-sample
    /// full-tree scans would dominate a million-member run.
    #[must_use]
    pub fn mega(algorithm: AlgorithmKind, target_size: usize) -> Self {
        ChurnConfig {
            warmup_secs: 30.0,
            measure_secs: 300.0,
            sample_interval_secs: 300.0,
            max_events: Some(3_000_000),
            ..ChurnConfig::quick(algorithm, target_size)
        }
    }

    /// Mean member lifetime in seconds (≈1809 s at paper settings).
    #[must_use]
    pub fn mean_lifetime_secs(&self) -> f64 {
        self.lifetime.mean()
    }

    /// Little's-law arrival rate λ = M / mean lifetime (§5).
    #[must_use]
    pub fn arrival_rate(&self) -> f64 {
        self.target_size as f64 / self.mean_lifetime_secs()
    }

    /// A copy with a different seed (for replicated runs).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical values (zero size, non-positive windows…).
    pub fn validate(&self) {
        assert!(self.target_size > 0, "target size must be positive");
        assert!(self.view_size > 0, "view size must be positive");
        assert!(self.stream_rate > 0.0, "stream rate must be positive");
        assert!(self.warmup_secs >= 0.0, "warmup cannot be negative");
        assert!(self.history_secs > 0.0, "virtual history must be positive");
        assert!(
            self.measure_secs > 0.0,
            "measurement window must be positive"
        );
        assert!(
            self.sample_interval_secs > 0.0,
            "sample interval must be positive"
        );
        assert!(
            self.rejoin_delay_secs >= 0.0,
            "rejoin delay cannot be negative"
        );
        assert!(self.retry_secs > 0.0, "retry delay must be positive");
        assert!(
            (0.0..=1.0).contains(&self.graceful_fraction),
            "graceful fraction must be a probability"
        );
        assert!(
            self.topology.stub_node_count() >= 2,
            "topology too small to host members"
        );
        if let Some(scenario) = &self.chaos {
            assert!(
                scenario.injections.iter().all(|i| i.at_secs >= 0.0),
                "chaos injections cannot be scheduled before the epoch"
            );
        }
        assert!(
            self.max_events != Some(0),
            "event budget must be positive when set"
        );
    }
}

/// How lost data is fetched during an outage (§6's two schemes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStrategy {
    /// The baseline: one recovery node at a time serves at its own
    /// residual bandwidth (the request chains to the next only when a node
    /// is dead or lacks the data).
    SingleSource,
    /// CER: stripe sequence numbers across the group's residual bandwidths
    /// (§4.2).
    Cooperative,
}

/// How the recovery group is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupSelection {
    /// Algorithm 1: minimum loss correlation (§4.1).
    MinimumLossCorrelation,
    /// Ablation baseline: uniformly random known members.
    Random,
}

/// Configuration of a packet-level streaming experiment (Figs. 12–14).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingConfig {
    /// The churn substrate (tree algorithm, size, seed…). Its
    /// `rejoin_delay_secs` should equal `detection_secs + rejoin_secs`.
    pub churn: ChurnConfig,
    /// Stream rate (packets/second) and playback buffer.
    pub rate_pps: f64,
    /// Playback buffer in seconds (§6 default 5 s; Fig. 13 sweeps 5–30 s).
    pub buffer_secs: f64,
    /// Recovery group size K (Figs. 12–14 sweep 1–4).
    pub recovery_group_size: usize,
    /// Single-source baseline or cooperative striping.
    pub strategy: RecoveryStrategy,
    /// MLC (Algorithm 1) or random group selection.
    pub selection: GroupSelection,
    /// Parent-failure detection latency before the rejoin starts
    /// (§6: 5 s).
    pub detection_secs: f64,
    /// Packet-loss detection latency before repair requests go out. Loss
    /// is noticed at the delivery deadline ("when a member detects a
    /// delivery deadline missing, it regards this as a packet loss",
    /// §4.2), which trails the live stream by network delay only — far
    /// less than the parent-failure timeout.
    pub loss_detection_secs: f64,
    /// Parent re-finding latency (§6: 10 s).
    pub rejoin_secs: f64,
    /// Residual helper bandwidth range in packets/second (§6: uniform
    /// 0–9).
    pub residual_pps: (f64, f64),
    /// How long recovery nodes keep past packets available for repair.
    pub repair_cache_secs: f64,
}

impl StreamingConfig {
    /// The §6 defaults on top of the given churn substrate: 10 pkt/s,
    /// 5 s buffer, 5 s detection + 10 s rejoin, residual 0–9 pkt/s.
    #[must_use]
    pub fn paper(mut churn: ChurnConfig, recovery_group_size: usize) -> Self {
        churn.rejoin_delay_secs = 15.0;
        StreamingConfig {
            churn,
            rate_pps: 10.0,
            buffer_secs: 5.0,
            recovery_group_size,
            strategy: RecoveryStrategy::Cooperative,
            selection: GroupSelection::MinimumLossCorrelation,
            detection_secs: 5.0,
            loss_detection_secs: 1.0,
            rejoin_secs: 10.0,
            residual_pps: (0.0, 9.0),
            repair_cache_secs: 120.0,
        }
    }

    /// The stream clock implied by this configuration.
    #[must_use]
    pub fn clock(&self) -> rom_cer::StreamClock {
        rom_cer::StreamClock::new(self.rate_pps, self.buffer_secs)
    }

    /// Validates parameter sanity (including churn).
    ///
    /// # Panics
    ///
    /// Panics on nonsensical values.
    pub fn validate(&self) {
        self.churn.validate();
        assert!(self.rate_pps > 0.0, "packet rate must be positive");
        assert!(self.buffer_secs > 0.0, "buffer must be positive");
        assert!(self.recovery_group_size > 0, "group size must be positive");
        assert!(self.detection_secs >= 0.0 && self.rejoin_secs >= 0.0);
        assert!(
            self.loss_detection_secs >= 0.0,
            "loss detection cannot be negative"
        );
        assert!(self.residual_pps.0 >= 0.0 && self.residual_pps.1 >= self.residual_pps.0);
        assert!(
            self.repair_cache_secs > 0.0,
            "repair cache must be positive"
        );
        let expected = self.detection_secs + self.rejoin_secs;
        assert!(
            (self.churn.rejoin_delay_secs - expected).abs() < 1e-9,
            "churn rejoin delay must equal detection + rejoin"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_follow_section5() {
        let c = ChurnConfig::paper(AlgorithmKind::Rost, 8_000);
        c.validate();
        assert_eq!(c.view_size, 100);
        assert_eq!(c.stream_rate, 1.0);
        assert_eq!(c.rost.switching_interval_secs, 360.0);
        // λ = 8000 / 1809 ≈ 4.42 arrivals per second.
        assert!((c.arrival_rate() - 8_000.0 / c.mean_lifetime_secs()).abs() < 1e-12);
        assert!((c.mean_lifetime_secs() - 1_808.0).abs() < 1.0);
    }

    #[test]
    fn streaming_defaults_follow_section6() {
        let s = StreamingConfig::paper(ChurnConfig::quick(AlgorithmKind::MinimumDepth, 500), 3);
        s.validate();
        assert_eq!(s.rate_pps, 10.0);
        assert_eq!(s.buffer_secs, 5.0);
        assert_eq!(s.churn.rejoin_delay_secs, 15.0);
        assert_eq!(s.clock().buffer_packets(), 50);
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(AlgorithmKind::ALL.len(), 5);
        assert_eq!(AlgorithmKind::Rost.to_string(), "rost");
        assert_eq!(
            AlgorithmKind::RelaxedBandwidthOrdered.name(),
            "relaxed-bw-ordered"
        );
    }

    #[test]
    fn seed_override() {
        let c = ChurnConfig::quick(AlgorithmKind::Rost, 100).with_seed(9);
        assert_eq!(c.seed, 9);
    }

    #[test]
    #[should_panic(expected = "rejoin delay")]
    fn streaming_rejects_mismatched_rejoin_delay() {
        let mut s = StreamingConfig::paper(ChurnConfig::quick(AlgorithmKind::MinimumDepth, 100), 2);
        s.churn.rejoin_delay_secs = 0.0;
        s.validate();
    }

    #[test]
    fn observer_default_is_long_lived() {
        let o = ObserverSpec::default();
        assert_eq!(o.lifetime_secs, 18_000.0);
        assert!(o.bandwidth >= 1.0);
    }
}
