//! # rom-engine: the experiment engines
//!
//! Ties the substrates together into the two simulators behind the DSN
//! 2006 evaluation:
//!
//! - [`ChurnSim`] — churn-driven tree simulation measuring disruptions,
//!   service delay, stretch and protocol overhead (Figs. 4–11),
//! - `StreamingSim` — packet-level streaming with CER recovery measuring
//!   starving-time ratios (Figs. 12–14).
//!
//! Both are configured by plain structs whose defaults reproduce §5/§6 of
//! the paper, are fully deterministic under a single `u64` seed, and
//! return rich report structs ready for the figure-regeneration binaries
//! in `rom-bench`.

mod churn;
mod config;
mod proximity;
mod streaming;
mod workload;

pub use churn::{ChurnReport, ChurnSim, ObserverTrace};
pub use config::{
    AlgorithmKind, ChurnConfig, GroupSelection, ObserverSpec, RecoveryStrategy, StreamingConfig,
};
pub use proximity::OracleProximity;
pub use streaming::{StreamingReport, StreamingSim};
pub use workload::Workload;

// The parallel sweep engine in rom-bench builds a fully-configured
// simulator (including its observability pipeline and armed invariants)
// inside a worker thread and ships the report back to the collector; that
// is only sound if every one of these types is `Send`. Pin it at compile
// time so a non-`Send` field (an `Rc`, a thread-local handle) can never
// sneak into the simulators again.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ChurnSim>();
    assert_send::<StreamingSim>();
    assert_send::<ChurnConfig>();
    assert_send::<StreamingConfig>();
    assert_send::<ChurnReport>();
    assert_send::<StreamingReport>();
};
