//! Streaming summary statistics and confidence intervals.
//!
//! Figures 4–14 of the paper all report means over members or over
//! replicated runs; Figure 14 adds 95% confidence intervals. [`Summary`]
//! accumulates observations in one pass (Welford's algorithm, numerically
//! stable) and produces both.

/// One-pass accumulator for count, mean, variance and range.
///
/// # Examples
///
/// ```
/// use rom_stats::Summary;
///
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert_eq!(s.count(), 8);
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel-friendly).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let combined_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = combined_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observation; +∞ when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; −∞ when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Population variance (divide by n); 0 when empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divide by n − 1); 0 when fewer than 2 observations.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the 95% confidence interval for the mean
    /// (normal approximation, z = 1.96), as used in the paper's Fig. 14.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// `(mean, half-width)` of the 95% confidence interval.
    #[must_use]
    pub fn mean_with_ci95(&self) -> (f64, f64) {
        (self.mean(), self.ci95_half_width())
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.add(3.5);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn known_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.mean(), 5.0);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: Summary = data.iter().copied().collect();
        let mut left: Summary = data[..37].iter().copied().collect();
        let right: Summary = data[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few: Summary = (0..10).map(|i| f64::from(i % 3)).collect();
        let many: Summary = (0..1000).map(|i| f64::from(i % 3)).collect();
        assert!(many.ci95_half_width() < few.ci95_half_width());
        let (mean, hw) = many.mean_with_ci95();
        assert!((mean - 1.0).abs() < 0.1);
        assert!(hw > 0.0);
    }

    #[test]
    fn extend_accumulates() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0]);
        s.extend([3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Naive sum-of-squares fails catastrophically here.
        let s: Summary = (0..1000).map(|i| 1e9 + f64::from(i % 2)).collect();
        assert!((s.population_variance() - 0.25).abs() < 1e-6);
    }
}
