//! Time-bucketed observation series.
//!
//! Figures 6 and 9 of the paper track a single "typical member" over five
//! hours, plotting cumulative disruptions and instantaneous service delay
//! against time in minutes. [`TimeSeries`] collects `(time, value)`
//! observations and renders them as per-bucket averages or running totals.

use rom_sim::SimTime;

/// A series of timestamped observations with fixed-width bucketing.
///
/// # Examples
///
/// ```
/// use rom_stats::TimeSeries;
/// use rom_sim::SimTime;
///
/// let mut ts = TimeSeries::new(60.0); // one-minute buckets
/// ts.record(SimTime::from_secs(10.0), 100.0);
/// ts.record(SimTime::from_secs(20.0), 200.0);
/// ts.record(SimTime::from_secs(70.0), 300.0);
/// let avg = ts.bucket_means();
/// assert_eq!(avg, vec![(0.0, 150.0), (1.0, 300.0)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    bucket_secs: f64,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_secs` is not positive.
    #[must_use]
    pub fn new(bucket_secs: f64) -> Self {
        assert!(bucket_secs > 0.0, "bucket width must be positive");
        TimeSeries {
            bucket_secs,
            points: Vec::new(),
        }
    }

    /// Records an observation at `time`.
    pub fn record(&mut self, time: SimTime, value: f64) {
        self.points.push((time, value));
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Raw observations in insertion order.
    #[must_use]
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    fn bucket_of(&self, t: SimTime) -> i64 {
        (t.as_secs() / self.bucket_secs).floor() as i64
    }

    /// Mean value per non-empty bucket, as `(bucket index, mean)` pairs in
    /// ascending bucket order. The bucket index is a float so it can be fed
    /// straight to a plot (bucket 3 with 60-second buckets ⇒ minute 3).
    #[must_use]
    pub fn bucket_means(&self) -> Vec<(f64, f64)> {
        let mut tagged: Vec<(i64, f64)> = self
            .points
            .iter()
            .map(|&(t, v)| (self.bucket_of(t), v))
            .collect();
        tagged.sort_by_key(|&(b, _)| b);
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut i = 0;
        while i < tagged.len() {
            let bucket = tagged[i].0;
            let mut sum = 0.0;
            let mut n = 0u32;
            while i < tagged.len() && tagged[i].0 == bucket {
                sum += tagged[i].1;
                n += 1;
                i += 1;
            }
            out.push((bucket as f64, sum / f64::from(n)));
        }
        out
    }

    /// Cumulative sum of values over time: each recorded point is replaced
    /// by `(time in bucket units, running total up to and including it)`.
    /// This is the paper's "accumulative number of disruptions" curve when
    /// each disruption is recorded with value 1.
    #[must_use]
    pub fn cumulative(&self) -> Vec<(f64, f64)> {
        let mut sorted = self.points.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut total = 0.0;
        sorted
            .into_iter()
            .map(|(t, v)| {
                total += v;
                (t.as_secs() / self.bucket_secs, total)
            })
            .collect()
    }

    /// The last recorded value in each bucket (useful for step metrics like
    /// "current service delay").
    #[must_use]
    pub fn bucket_last(&self) -> Vec<(f64, f64)> {
        let mut sorted: Vec<(SimTime, f64)> = self.points.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (t, v) in sorted {
            let b = self.bucket_of(t) as f64;
            match out.last_mut() {
                Some(last) if last.0 == b => last.1 = v,
                _ => out.push((b, v)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn bucket_means_average_within_bucket() {
        let mut ts = TimeSeries::new(10.0);
        ts.record(t(1.0), 2.0);
        ts.record(t(9.0), 4.0);
        ts.record(t(15.0), 10.0);
        assert_eq!(ts.bucket_means(), vec![(0.0, 3.0), (1.0, 10.0)]);
    }

    #[test]
    fn cumulative_counts_events() {
        let mut ts = TimeSeries::new(60.0);
        ts.record(t(30.0), 1.0);
        ts.record(t(90.0), 1.0);
        ts.record(t(60.0), 1.0); // out of order on purpose
        let cum = ts.cumulative();
        assert_eq!(cum, vec![(0.5, 1.0), (1.0, 2.0), (1.5, 3.0)]);
    }

    #[test]
    fn bucket_last_keeps_latest() {
        let mut ts = TimeSeries::new(10.0);
        ts.record(t(1.0), 5.0);
        ts.record(t(9.0), 7.0);
        ts.record(t(20.0), 1.0);
        assert_eq!(ts.bucket_last(), vec![(0.0, 7.0), (2.0, 1.0)]);
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new(1.0);
        assert!(ts.is_empty());
        assert!(ts.bucket_means().is_empty());
        assert!(ts.cumulative().is_empty());
        assert!(ts.bucket_last().is_empty());
    }

    #[test]
    fn len_and_points() {
        let mut ts = TimeSeries::new(1.0);
        ts.record(t(0.0), 1.0);
        ts.record(t(0.5), 2.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.points().len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_rejected() {
        let _ = TimeSeries::new(0.0);
    }
}
