//! The bounded Pareto distribution used for member outbound bandwidths.
//!
//! The paper (§5) draws every non-root member's outbound bandwidth from a
//! Bounded Pareto with shape 1.2, lower bound 0.5 and upper bound 100
//! (in units of the stream rate). With those parameters ≈55% of members
//! have bandwidth below 1, i.e. cannot forward a full stream — the paper's
//! "free-riders" — while a handful of "super-nodes" support out-degrees
//! above 20.

use rom_sim::SimRng;

/// A Pareto distribution truncated to `[lower, upper]`.
///
/// # Examples
///
/// ```
/// use rom_stats::BoundedPareto;
/// use rom_sim::SimRng;
///
/// // The paper's bandwidth distribution.
/// let bw = BoundedPareto::new(1.2, 0.5, 100.0).unwrap();
/// let mut rng = SimRng::seed_from(7);
/// let x = bw.sample(&mut rng);
/// assert!((0.5..=100.0).contains(&x));
/// // ~55% of mass sits below the stream rate of 1: free-riders.
/// assert!((bw.cdf(1.0) - 0.55).abs() < 0.03);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    shape: f64,
    lower: f64,
    upper: f64,
}

/// Error returned when constructing a distribution from invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidDistributionError {
    what: &'static str,
}

impl std::fmt::Display for InvalidDistributionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for InvalidDistributionError {}

impl InvalidDistributionError {
    pub(crate) fn new(what: &'static str) -> Self {
        InvalidDistributionError { what }
    }
}

impl BoundedPareto {
    /// The bandwidth distribution the paper's evaluation uses:
    /// shape 1.2, bounds `[0.5, 100]`.
    #[must_use]
    pub fn paper_bandwidth() -> Self {
        BoundedPareto {
            shape: 1.2,
            lower: 0.5,
            upper: 100.0,
        }
    }

    /// Creates a bounded Pareto distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless `shape > 0` and `0 < lower < upper`.
    pub fn new(shape: f64, lower: f64, upper: f64) -> Result<Self, InvalidDistributionError> {
        if shape <= 0.0 || shape.is_nan() {
            return Err(InvalidDistributionError::new("shape must be positive"));
        }
        if lower <= 0.0 || lower.is_nan() {
            return Err(InvalidDistributionError::new(
                "lower bound must be positive",
            ));
        }
        if upper <= lower || upper.is_nan() {
            return Err(InvalidDistributionError::new(
                "upper bound must exceed lower bound",
            ));
        }
        Ok(BoundedPareto {
            shape,
            lower,
            upper,
        })
    }

    /// The shape (tail index) parameter α.
    #[must_use]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The lower truncation bound.
    #[must_use]
    pub fn lower(&self) -> f64 {
        self.lower
    }

    /// The upper truncation bound.
    #[must_use]
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// Cumulative distribution function.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.lower {
            return 0.0;
        }
        if x >= self.upper {
            return 1.0;
        }
        let a = self.shape;
        let l = self.lower;
        let h = self.upper;
        (1.0 - (l / x).powf(a)) / (1.0 - (l / h).powf(a))
    }

    /// Inverse CDF (quantile function) for `p` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let a = self.shape;
        let l = self.lower;
        let h = self.upper;
        let ratio = (l / h).powf(a);
        // Invert F(x) = (1 - (l/x)^a) / (1 - (l/h)^a).
        let base = 1.0 - p * (1.0 - ratio);
        l / base.powf(1.0 / a)
    }

    /// Analytic mean of the truncated distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let a = self.shape;
        let l = self.lower;
        let h = self.upper;
        if (a - 1.0).abs() < 1e-12 {
            // α = 1 limit: E[X] = ln(h/l) · l·h / (h - l)
            return (h / l).ln() * l * h / (h - l);
        }
        let la = l.powf(a);
        (la / (1.0 - (l / h).powf(a))) * (a / (a - 1.0)) * (l.powf(1.0 - a) - h.powf(1.0 - a))
    }

    /// Draws a sample by inverse-transform sampling.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        self.quantile(rng.uniform())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_parameters_rejected() {
        assert!(BoundedPareto::new(0.0, 0.5, 100.0).is_err());
        assert!(BoundedPareto::new(1.2, 0.0, 100.0).is_err());
        assert!(BoundedPareto::new(1.2, 5.0, 5.0).is_err());
        assert!(BoundedPareto::new(1.2, 5.0, 1.0).is_err());
        let err = BoundedPareto::new(-1.0, 0.5, 1.0).unwrap_err();
        assert!(err.to_string().contains("shape"));
    }

    #[test]
    fn paper_free_rider_fraction() {
        // §5: "55.5% of the members are effectively free-riders".
        let d = BoundedPareto::paper_bandwidth();
        let f = d.cdf(1.0);
        assert!(
            (0.53..0.59).contains(&f),
            "free-rider fraction {f} should be ≈0.555"
        );
    }

    #[test]
    fn paper_super_node_fraction_is_small_but_positive() {
        // "a small number of super-nodes exist with out-degrees larger
        // than 20".
        let d = BoundedPareto::paper_bandwidth();
        let p = 1.0 - d.cdf(20.0);
        assert!(p > 0.001 && p < 0.05, "super-node fraction {p}");
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        let d = BoundedPareto::paper_bandwidth();
        for p in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999, 1.0] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-9, "p={p} x={x}");
        }
    }

    #[test]
    fn quantile_bounds() {
        let d = BoundedPareto::paper_bandwidth();
        assert!((d.quantile(0.0) - 0.5).abs() < 1e-12);
        assert!((d.quantile(1.0) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn samples_in_range_and_mean_matches() {
        let d = BoundedPareto::paper_bandwidth();
        let mut rng = SimRng::seed_from(42);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!((0.5..=100.0).contains(&x));
            sum += x;
        }
        let sample_mean = sum / f64::from(n);
        let want = d.mean();
        assert!(
            (sample_mean - want).abs() / want < 0.05,
            "sample mean {sample_mean} vs analytic {want}"
        );
    }

    #[test]
    fn cdf_monotone() {
        let d = BoundedPareto::new(2.0, 1.0, 10.0).unwrap();
        let mut prev = -1.0;
        for i in 0..=100 {
            let x = 0.5 + 0.1 * f64::from(i);
            let c = d.cdf(x);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn mean_alpha_one_limit_continuous() {
        // The α→1 special case should agree with α slightly off 1.
        let exact = BoundedPareto::new(1.0, 1.0, 100.0).unwrap().mean();
        let near = BoundedPareto::new(1.0 + 1e-9, 1.0, 100.0).unwrap().mean();
        assert!((exact - near).abs() < 1e-3, "{exact} vs {near}");
    }

    #[test]
    fn accessors() {
        let d = BoundedPareto::paper_bandwidth();
        assert_eq!(d.shape(), 1.2);
        assert_eq!(d.lower(), 0.5);
        assert_eq!(d.upper(), 100.0);
    }
}
