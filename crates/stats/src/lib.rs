//! # rom-stats: statistical substrate for the evaluation
//!
//! Everything numerical the paper's workload model and result reporting
//! need, implemented from scratch:
//!
//! - [`BoundedPareto`] — member outbound bandwidths (§5: shape 1.2, bounds
//!   `[0.5, 100]`; ≈55% free-riders),
//! - [`LogNormal`] — member lifetimes (§5: location 5.5, shape 2.0; mean
//!   ≈ 1809 s, the Little's-law input),
//! - [`Summary`] — one-pass mean/variance/min/max with 95% confidence
//!   intervals (Fig. 14),
//! - [`Ecdf`] — empirical CDFs (Fig. 5),
//! - [`TimeSeries`] — time-bucketed member traces (Figs. 6 and 9).
//!
//! # Examples
//!
//! ```
//! use rom_stats::{BoundedPareto, LogNormal, Summary};
//! use rom_sim::SimRng;
//!
//! let bw = BoundedPareto::paper_bandwidth();
//! let life = LogNormal::paper_lifetime();
//! let mut rng = SimRng::seed_from(2);
//!
//! let degrees: Summary = (0..1000)
//!     .map(|_| bw.sample(&mut rng).floor())
//!     .collect();
//! assert!(degrees.mean() > 0.5); // plenty of forwarding capacity on average
//! assert!(life.mean() > 1800.0);
//! ```

mod cdf;
mod lognormal;
mod math;
mod pareto;
mod summary;
mod timeseries;

pub use cdf::Ecdf;
pub use lognormal::LogNormal;
pub use math::{erf, standard_normal_cdf};
pub use pareto::{BoundedPareto, InvalidDistributionError};
pub use summary::Summary;
pub use timeseries::TimeSeries;
