//! The lognormal distribution used for member lifetimes.
//!
//! The paper (§5) models member lifetimes as Lognormal(location 5.5,
//! shape 2.0) seconds, following the measurement study of Veloso et al.
//! The mean of that distribution is `exp(5.5 + 2²/2) ≈ 1808` seconds — the
//! "1809 seconds" the paper plugs into Little's law to derive the arrival
//! rate. The long tail is what makes time-ordering informative: a member
//! that has already survived a long time is likely to survive longer.

use crate::math::standard_normal_cdf;
use crate::pareto::InvalidDistributionError;
use rom_sim::SimRng;

/// A lognormal distribution: `exp(N(location, shape²))`.
///
/// # Examples
///
/// ```
/// use rom_stats::LogNormal;
/// use rom_sim::SimRng;
///
/// // The paper's lifetime distribution, mean ≈ 1809 s.
/// let life = LogNormal::new(5.5, 2.0).unwrap();
/// assert!((life.mean() - 1808.0).abs() < 1.0);
///
/// let mut rng = SimRng::seed_from(1);
/// assert!(life.sample(&mut rng) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    location: f64,
    shape: f64,
}

impl LogNormal {
    /// The lifetime distribution the paper's evaluation uses:
    /// location 5.5, shape 2.0 (seconds).
    #[must_use]
    pub fn paper_lifetime() -> Self {
        LogNormal {
            location: 5.5,
            shape: 2.0,
        }
    }

    /// Creates a lognormal distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless `shape > 0` and `location` is finite.
    pub fn new(location: f64, shape: f64) -> Result<Self, InvalidDistributionError> {
        if !location.is_finite() {
            return Err(InvalidDistributionError::new("location must be finite"));
        }
        if shape <= 0.0 || !shape.is_finite() {
            return Err(InvalidDistributionError::new(
                "shape must be positive and finite",
            ));
        }
        Ok(LogNormal { location, shape })
    }

    /// The location parameter μ (mean of the underlying normal).
    #[must_use]
    pub fn location(&self) -> f64 {
        self.location
    }

    /// The shape parameter σ (std-dev of the underlying normal).
    #[must_use]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Analytic mean `exp(μ + σ²/2)`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        (self.location + self.shape * self.shape / 2.0).exp()
    }

    /// The median `exp(μ)`.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.location.exp()
    }

    /// Cumulative distribution function.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        standard_normal_cdf((x.ln() - self.location) / self.shape)
    }

    /// Draws a sample via the Box–Muller transform.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u1 = rng.uniform_positive();
        let u2 = rng.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.location + self.shape * z).exp()
    }

    /// Inverse CDF by bisection (the CDF is strictly monotone). Accurate
    /// to ~1e-10 relative, which is far below simulation resolution.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1), got {p}");
        // Bracket the root around the median, expanding geometrically.
        let mut lo = self.median();
        let mut hi = lo;
        while self.cdf(lo) > p {
            lo /= 2.0;
        }
        while self.cdf(hi) < p {
            hi *= 2.0;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) / hi < 1e-12 {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    /// Samples a total lifetime conditioned on having already survived
    /// `age` seconds (`L | L > age`) — the residual-life draw used when
    /// seeding a steady-state population.
    pub fn sample_conditional_exceeding(&self, age: f64, rng: &mut SimRng) -> f64 {
        if age <= 0.0 {
            return self.sample(rng);
        }
        let floor = self.cdf(age);
        if floor >= 1.0 - 1e-12 {
            // Numerically the entire mass is below `age`; return just
            // beyond it.
            return age * (1.0 + 1e-9);
        }
        let u = floor + rng.uniform() * (1.0 - floor);
        self.quantile(u.clamp(1e-300, 1.0 - 1e-16)).max(age)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mean_matches_littles_law_input() {
        // §5: "the mean value of lifetime, i.e. 1809 seconds".
        let d = LogNormal::paper_lifetime();
        assert!(
            (d.mean() - 1808.04).abs() < 0.5,
            "mean {} should be ≈1808 s",
            d.mean()
        );
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(LogNormal::new(f64::INFINITY, 1.0).is_err());
        assert!(LogNormal::new(1.0, 0.0).is_err());
        assert!(LogNormal::new(1.0, -1.0).is_err());
        assert!(LogNormal::new(1.0, f64::NAN).is_err());
    }

    #[test]
    fn median_is_exp_location() {
        let d = LogNormal::new(2.0, 0.5).unwrap();
        assert!((d.median() - 2.0f64.exp()).abs() < 1e-12);
        // And the CDF at the median is one half.
        assert!((d.cdf(d.median()) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cdf_edge_cases() {
        let d = LogNormal::paper_lifetime();
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.cdf(-5.0), 0.0);
        assert!(d.cdf(1e12) > 0.999);
    }

    #[test]
    fn long_tail_property() {
        // The defining churn property (§2.1): a large fraction of very
        // short sessions coexists with a heavy tail of long ones.
        let d = LogNormal::paper_lifetime();
        assert!(d.cdf(60.0) > 0.2, "many sessions die within a minute");
        // P(lifetime > 1 h) ≈ 0.09 for Lognormal(5.5, 2.0).
        assert!(1.0 - d.cdf(3600.0) > 0.05, "heavy tail past one hour");
    }

    #[test]
    fn sample_median_near_analytic() {
        // The sample *median* converges fast even though the mean is
        // dominated by the heavy tail.
        let d = LogNormal::paper_lifetime();
        let mut rng = SimRng::seed_from(123);
        let mut samples: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let sample_median = samples[samples.len() / 2];
        let want = d.median();
        assert!(
            (sample_median - want).abs() / want < 0.1,
            "median {sample_median} vs {want}"
        );
    }

    #[test]
    fn sample_sort_is_total_even_for_overflowed_tail() {
        // Regression for the former `partial_cmp(..).unwrap()` sort key:
        // a very wide lognormal overflows to +inf in the tail, and the
        // comparator must still be a total order — no panic, monotone
        // output — which `f64::total_cmp` guarantees.
        let d = LogNormal::new(0.0, 300.0).unwrap();
        let mut rng = SimRng::seed_from(9);
        let mut samples: Vec<f64> = (0..512).map(|_| d.sample(&mut rng)).collect();
        assert!(
            samples.iter().any(|s| s.is_infinite()),
            "tail should overflow at sigma = 300"
        );
        samples.sort_by(f64::total_cmp);
        for w in samples.windows(2) {
            assert!(w[0] <= w[1], "sort not monotone: {} > {}", w[0], w[1]);
        }
    }

    #[test]
    fn samples_positive() {
        let d = LogNormal::new(0.0, 3.0).unwrap();
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = LogNormal::paper_lifetime();
        for p in [0.01, 0.1, 0.5, 0.9, 0.99] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-8, "p={p} x={x}");
        }
        assert!((d.quantile(0.5) - d.median()).abs() / d.median() < 1e-6);
    }

    #[test]
    fn conditional_samples_exceed_age() {
        let d = LogNormal::paper_lifetime();
        let mut rng = SimRng::seed_from(9);
        for age in [0.0, 100.0, 5_000.0] {
            for _ in 0..200 {
                assert!(d.sample_conditional_exceeding(age, &mut rng) >= age);
            }
        }
    }

    #[test]
    fn conditional_mean_reflects_heavy_tail() {
        // Memory property of the heavy tail: members that survived an hour
        // have a much longer expected remaining life than fresh ones.
        let d = LogNormal::paper_lifetime();
        let mut rng = SimRng::seed_from(10);
        let n = 5_000;
        let fresh: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / f64::from(n);
        let survivors: f64 = (0..n)
            .map(|_| d.sample_conditional_exceeding(3_600.0, &mut rng) - 3_600.0)
            .sum::<f64>()
            / f64::from(n);
        assert!(
            survivors > fresh,
            "residual {survivors:.0}s should exceed unconditional {fresh:.0}s"
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn quantile_rejects_bad_p() {
        let _ = LogNormal::paper_lifetime().quantile(1.0);
    }

    #[test]
    fn accessors() {
        let d = LogNormal::paper_lifetime();
        assert_eq!(d.location(), 5.5);
        assert_eq!(d.shape(), 2.0);
    }
}
