//! Small numerical helpers shared by the distribution implementations.

/// Abramowitz & Stegun 7.1.26 approximation of the error function.
///
/// Maximum absolute error ≤ 1.5e-7, which is far below anything the
/// simulations can resolve.
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();

    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;

    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
#[must_use]
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from tables of erf.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_877_8),
            (1.0, 0.842_700_792_9),
            (2.0, 0.995_322_265_0),
            (-1.0, -0.842_700_792_9),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 1e-6,
                "erf({x}) = {} want {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        for x in [0.1, 0.7, 1.3, 2.9] {
            let hi = standard_normal_cdf(x);
            let lo = standard_normal_cdf(-x);
            assert!((hi + lo - 1.0).abs() < 1e-9);
        }
        // The A&S polynomial gives erf(0) ≈ 1e-9 rather than exactly 0.
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-8);
    }

    #[test]
    fn normal_cdf_known_quantile() {
        // Φ(1.96) ≈ 0.975 — the basis of the 95% confidence intervals.
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-4);
    }
}
