//! Empirical cumulative distribution functions.
//!
//! Figure 5 of the paper plots the CDF of per-node disruption counts for an
//! 8000-node network on a logarithmic x-axis. [`Ecdf`] provides the exact
//! empirical CDF, quantiles, and the paper-style evaluation grid.

/// An empirical CDF built from a finite sample.
///
/// # Examples
///
/// ```
/// use rom_stats::Ecdf;
///
/// let cdf = Ecdf::from_samples([1.0, 2.0, 2.0, 8.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.75);
/// assert_eq!(cdf.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples. NaN samples are ignored.
    #[must_use]
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(f64::total_cmp);
        Ecdf { sorted }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the ECDF holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`; 0 when empty.
    #[must_use]
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The smallest sample `v` such that at least `p` of the mass is `<= v`.
    ///
    /// # Panics
    ///
    /// Panics if the ECDF is empty or `p` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty ECDF");
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p <= 0.0 {
            return self.sorted[0];
        }
        let rank = ((p * self.sorted.len() as f64).ceil() as usize).max(1);
        self.sorted[rank - 1]
    }

    /// Evaluates the CDF on the given grid of x-values, returning
    /// `(x, fraction ≤ x)` pairs — the series a plot needs.
    #[must_use]
    pub fn evaluate_on<I: IntoIterator<Item = f64>>(&self, grid: I) -> Vec<(f64, f64)> {
        grid.into_iter()
            .map(|x| (x, self.fraction_at_or_below(x)))
            .collect()
    }

    /// The power-of-two grid used by the paper's Fig. 5 x-axis
    /// (1, 2, 4, …, `max`).
    #[must_use]
    pub fn power_of_two_grid(max: f64) -> Vec<f64> {
        let mut grid = Vec::new();
        let mut x = 1.0;
        while x <= max {
            grid.push(x);
            x *= 2.0;
        }
        grid
    }

    /// The underlying sorted samples.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

impl FromIterator<f64> for Ecdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Ecdf::from_samples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_basic() {
        let cdf = Ecdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.fraction_at_or_below(0.0), 0.0);
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.25);
        assert_eq!(cdf.fraction_at_or_below(2.5), 0.5);
        assert_eq!(cdf.fraction_at_or_below(4.0), 1.0);
        assert_eq!(cdf.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn handles_duplicates() {
        let cdf = Ecdf::from_samples([5.0, 5.0, 5.0]);
        assert_eq!(cdf.fraction_at_or_below(4.9), 0.0);
        assert_eq!(cdf.fraction_at_or_below(5.0), 1.0);
    }

    #[test]
    fn nan_filtered() {
        let cdf = Ecdf::from_samples([1.0, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn quantiles() {
        let cdf = Ecdf::from_samples([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(cdf.quantile(0.25), 10.0);
        assert_eq!(cdf.quantile(0.5), 20.0);
        assert_eq!(cdf.quantile(0.75), 30.0);
        assert_eq!(cdf.quantile(1.0), 40.0);
        assert_eq!(cdf.quantile(0.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        let cdf = Ecdf::from_samples(std::iter::empty());
        let _ = cdf.quantile(0.5);
    }

    #[test]
    fn grid_evaluation() {
        let cdf = Ecdf::from_samples([1.0, 2.0, 4.0, 8.0]);
        let series = cdf.evaluate_on(Ecdf::power_of_two_grid(8.0));
        assert_eq!(
            series,
            vec![(1.0, 0.25), (2.0, 0.5), (4.0, 0.75), (8.0, 1.0)]
        );
    }

    #[test]
    fn power_grid_shape() {
        assert_eq!(
            Ecdf::power_of_two_grid(128.0),
            vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0]
        );
        assert!(Ecdf::power_of_two_grid(0.5).is_empty());
    }

    #[test]
    fn cdf_is_monotone_on_random_data() {
        let samples: Vec<f64> = (0..500).map(|i| ((i * 37) % 97) as f64).collect();
        let cdf: Ecdf = samples.into_iter().collect();
        let mut prev = 0.0;
        for x in 0..100 {
            let f = cdf.fraction_at_or_below(f64::from(x));
            assert!(f >= prev);
            prev = f;
        }
        assert_eq!(prev, 1.0);
    }
}
