//! Property tests for the statistical substrate.

use proptest::prelude::*;
use rom_stats::{BoundedPareto, Ecdf, LogNormal, Summary};

proptest! {
    /// Merging partial summaries equals accumulating sequentially, for any
    /// split point of any data.
    #[test]
    fn summary_merge_associative(
        data in prop::collection::vec(-1e6f64..1e6, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(data.len());
        let whole: Summary = data.iter().copied().collect();
        let mut left: Summary = data[..split].iter().copied().collect();
        let right: Summary = data[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (left.sample_variance() - whole.sample_variance()).abs()
                <= 1e-4 * (1.0 + whole.sample_variance())
        );
    }

    /// The ECDF is monotone and its quantiles invert it.
    #[test]
    fn ecdf_quantile_consistency(data in prop::collection::vec(0f64..1e4, 1..200)) {
        let cdf: Ecdf = data.iter().copied().collect();
        // Monotonicity on a coarse grid.
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = f64::from(i) * 500.0;
            let f = cdf.fraction_at_or_below(x);
            prop_assert!(f >= prev);
            prev = f;
        }
        // For any p, at least p of the mass lies at or below quantile(p).
        for p in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let q = cdf.quantile(p);
            prop_assert!(cdf.fraction_at_or_below(q) >= p - 1e-12);
        }
    }

    /// Bounded Pareto: quantile and CDF are inverse for arbitrary valid
    /// parameters.
    #[test]
    fn pareto_roundtrip(
        shape in 0.2f64..4.0,
        lower in 0.1f64..5.0,
        span in 1.5f64..100.0,
        p in 0.001f64..0.999,
    ) {
        let d = BoundedPareto::new(shape, lower, lower * span).unwrap();
        let x = d.quantile(p);
        prop_assert!(x >= d.lower() - 1e-9 && x <= d.upper() + 1e-9);
        prop_assert!((d.cdf(x) - p).abs() < 1e-6);
    }

    /// Lognormal: the numeric quantile inverts the CDF for arbitrary
    /// parameters.
    #[test]
    fn lognormal_roundtrip(
        location in -2.0f64..8.0,
        shape in 0.2f64..3.0,
        p in 0.01f64..0.99,
    ) {
        let d = LogNormal::new(location, shape).unwrap();
        let x = d.quantile(p);
        prop_assert!(x > 0.0);
        prop_assert!((d.cdf(x) - p).abs() < 1e-6, "cdf({x}) = {} vs p = {p}", d.cdf(x));
    }

    /// Conditional lifetime samples always exceed the conditioning age.
    #[test]
    fn conditional_exceeds_age(age in 0f64..1e5, seed in any::<u64>()) {
        let d = LogNormal::paper_lifetime();
        let mut rng = rom_sim::SimRng::seed_from(seed);
        let sample = d.sample_conditional_exceeding(age, &mut rng);
        prop_assert!(sample >= age);
    }
}
