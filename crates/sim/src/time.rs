//! Virtual simulation time.
//!
//! All simulated clocks in this workspace are expressed as [`SimTime`], a
//! finite, non-NaN number of seconds since the start of the simulation. The
//! newtype exists so that wall-clock quantities, sequence numbers and other
//! `f64`s cannot be accidentally mixed with simulated time, and so that the
//! event queue can rely on a total order ([`Ord`]).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in seconds since the simulation epoch.
///
/// `SimTime` is totally ordered; constructing one from a NaN value is a
/// programming error and panics. Negative values are allowed (they are
/// occasionally useful for "before the epoch" sentinels such as warm-up
/// offsets) but the simulation engine itself never schedules into the past.
///
/// # Examples
///
/// ```
/// use rom_sim::SimTime;
///
/// let t = SimTime::from_secs(10.0) + 5.0;
/// assert_eq!(t.as_secs(), 15.0);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch (t = 0 s).
    pub const ZERO: SimTime = SimTime(0.0);

    /// A time later than any time the engine will ever reach.
    pub const FAR_FUTURE: SimTime = SimTime(f64::INFINITY);

    /// Creates a time from a number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        SimTime(secs)
    }

    /// Returns the time as seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the time as whole minutes (useful for plotting against the
    /// paper's minute-scaled time axes).
    #[must_use]
    pub fn as_minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// Elapsed seconds since `earlier`. Negative if `earlier` is later.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> f64 {
        self.0 - earlier.0
    }

    /// The larger of two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// True if the time is finite (not [`SimTime::FAR_FUTURE`]).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

// SimTime bans NaN at construction, so `total_cmp` coincides with the
// numeric order; basing the whole comparison stack on it keeps Eq and Ord
// consistent by definition.
impl PartialEq for SimTime {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    fn add(self, secs: f64) -> SimTime {
        SimTime::from_secs(self.0 + secs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, secs: f64) {
        *self = *self + secs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;

    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl From<f64> for SimTime {
    fn from(secs: f64) -> Self {
        SimTime::from_secs(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10.0);
        assert_eq!((t + 5.0).as_secs(), 15.0);
        assert_eq!(t + 5.0 - t, 5.0);
        assert_eq!((t + 50.0).as_minutes(), 1.0);
        let mut u = t;
        u += 2.5;
        assert_eq!(u.as_secs(), 12.5);
    }

    #[test]
    fn since_is_signed() {
        let early = SimTime::from_secs(3.0);
        let late = SimTime::from_secs(7.0);
        assert_eq!(late.since(early), 4.0);
        assert_eq!(early.since(late), -4.0);
    }

    #[test]
    fn far_future_dominates() {
        assert!(SimTime::FAR_FUTURE > SimTime::from_secs(1e18));
        assert!(!SimTime::FAR_FUTURE.is_finite());
        assert!(SimTime::ZERO.is_finite());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500s");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn from_f64() {
        let t: SimTime = 4.0.into();
        assert_eq!(t.as_secs(), 4.0);
    }
}
