//! # rom-sim: discrete-event simulation kernel
//!
//! The substrate every experiment in this workspace runs on. It provides:
//!
//! - [`SimTime`] — a virtual clock in seconds,
//! - [`EventQueue`] — a stable (FIFO-on-tie) priority queue of events,
//! - [`Simulation`] — the event loop with causality enforcement and an
//!   optional event budget,
//! - [`SimRng`] — deterministic, forkable random streams so that a single
//!   `u64` seed reproduces an entire experiment bit-for-bit.
//!
//! The paper this workspace reproduces ("Improving the Fault Resilience of
//! Overlay Multicast for Media Streaming", DSN 2006) evaluates everything on
//! an event-driven simulator; this crate is our equivalent of that
//! simulator's core.
//!
//! # Examples
//!
//! ```
//! use rom_sim::{Simulation, SimRng, SimTime};
//!
//! // A Poisson arrival process measured over one simulated hour.
//! let mut rng = SimRng::seed_from(1);
//! let mut sim = Simulation::new();
//! sim.schedule(SimTime::ZERO, ());
//! let mut arrivals = 0u32;
//! sim.run_until(SimTime::from_secs(3600.0), |_, (), sched| {
//!     arrivals += 1;
//!     sched.after(rng.exponential(1.0), ());
//! });
//! // Rate 1/s over 3600 s: expect ~3600 arrivals.
//! assert!((3000..4200).contains(&arrivals));
//! ```

mod engine;
mod queue;
mod rng;
mod time;

pub use engine::{RunOutcome, Schedule, Simulation};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::SimTime;
