//! Deterministic random-number streams for reproducible simulations.
//!
//! Every experiment in this workspace is driven by a single `u64` seed.
//! [`SimRng`] is a self-contained xoshiro256++ generator seeded from that
//! value and can [`fork`] child streams (one per subsystem, e.g. topology
//! vs. churn) so that changing how one subsystem consumes randomness does
//! not perturb the others.
//!
//! The generator is implemented in-tree (no external crates) so that the
//! byte-for-byte output stream is pinned by this workspace alone: a
//! dependency bump can never silently change every experiment's history.
//!
//! [`fork`]: SimRng::fork

/// SplitMix64 step, used to seed the main generator and to derive
/// statistically independent child seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seedable, forkable random-number generator for simulations.
///
/// Internally this is xoshiro256++ (Blackman & Vigna), a small, fast
/// generator with a 2^256 − 1 period — far beyond anything a simulation
/// here can exhaust — whose reference implementation is public domain.
///
/// # Examples
///
/// ```
/// use rom_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform(), b.uniform()); // same seed, same stream
///
/// let mut topo = a.fork("topology");
/// let x = topo.range_f64(15.0, 25.0);
/// assert!((15.0..25.0).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a root seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        // Expand the 64-bit seed into the full 256-bit state with
        // SplitMix64, as the xoshiro authors recommend. The expansion
        // can never produce the all-zero state.
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { state, seed }
    }

    /// The seed this stream was created from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// Forking is a pure function of `(seed, label)`: the child does not
    /// share state with, nor consume randomness from, the parent.
    #[must_use]
    pub fn fork(&self, label: &str) -> SimRng {
        let mut state = self.seed;
        for byte in label.bytes() {
            state ^= u64::from(byte);
            splitmix64(&mut state);
        }
        let child_seed = splitmix64(&mut state);
        SimRng::seed_from(child_seed)
    }

    /// The next raw 64-bit output of the generator (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output (upper half of a 64-bit step).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits → the standard dyadic-rational mapping onto [0, 1).
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// A uniform sample in `[0, 1)` guaranteed to be strictly positive,
    /// suitable for `ln`-based transforms.
    pub fn uniform_positive(&mut self) -> f64 {
        loop {
            let u = self.uniform();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// A uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let x = lo + self.uniform() * (hi - lo);
        // Rounding can land exactly on `hi`; fold that back inside.
        if x < hi {
            x
        } else {
            lo.max(f64_prev(hi))
        }
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty collection");
        // Lemire's widening-multiply method with rejection: unbiased for
        // every n, and almost always a single 64-bit draw.
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (u128::from(x)) * u128::from(n);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (u128::from(x)) * u128::from(n);
                low = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// An exponentially distributed sample with the given `rate` (events per
    /// second); this is the inter-arrival time of a Poisson process.
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        -self.uniform_positive().ln() / rate
    }

    /// A fair coin flip with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Chooses a uniformly random element of `items`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Draws `k` distinct elements from `items` by partial shuffle; returns
    /// fewer when `items.len() < k`.
    pub fn sample<T: Clone>(&mut self, items: &[T], k: usize) -> Vec<T> {
        self.sample_indices(items.len(), k)
            .into_iter()
            .map(|i| items[i].clone())
            .collect()
    }

    /// The index form of [`sample`](Self::sample): `k` distinct positions
    /// drawn uniformly without replacement from `0..len`, in draw order.
    ///
    /// Both code paths run the same partial Fisher–Yates and therefore
    /// draw an identical RNG stream and return identical indices; the
    /// sparse path merely stores only the slots a swap has displaced, so
    /// a bounded sample from a huge population costs O(k²) worst-case in
    /// the (tiny) displacement map instead of materializing an O(len)
    /// index vector. That bound is what keeps per-join view sampling
    /// flat as the membership grows to 10^6. The crossover favours the
    /// dense path generously: its sequential init beats sparse
    /// bookkeeping until `len` is tens of times `k`.
    pub fn sample_indices(&mut self, len: usize, k: usize) -> Vec<usize> {
        let take = k.min(len);
        let mut picked = Vec::with_capacity(take);
        if take * 64 < len {
            // Sparse permutation: slot p holds p unless an entry in the
            // (position-sorted) displacement vec says otherwise. Slot i
            // is dead after iteration i, so its entry is removed rather
            // than read — the vec stays near-empty for uniform draws.
            let mut displaced: Vec<(usize, usize)> = Vec::new();
            for i in 0..take {
                let j = i + self.index(len - i);
                let swapped_out = match displaced.binary_search_by_key(&i, |e| e.0) {
                    Ok(pos) => displaced.remove(pos).1,
                    Err(_) => i,
                };
                if j == i {
                    picked.push(swapped_out);
                    continue;
                }
                match displaced.binary_search_by_key(&j, |e| e.0) {
                    Ok(pos) => {
                        picked.push(displaced[pos].1);
                        displaced[pos].1 = swapped_out;
                    }
                    Err(pos) => {
                        picked.push(j);
                        displaced.insert(pos, (j, swapped_out));
                    }
                }
            }
        } else {
            let mut idx: Vec<usize> = (0..len).collect();
            for i in 0..take {
                let j = i + self.index(len - i);
                idx.swap(i, j);
            }
            picked.extend_from_slice(&idx[..take]);
        }
        picked
    }
}

/// The largest `f64` strictly below `x` (for finite positive `x`).
fn f64_prev(x: f64) -> f64 {
    f64::from_bits(x.to_bits() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..16)
            .filter(|_| a.uniform().to_bits() == b.uniform().to_bits())
            .count();
        assert!(same < 16);
    }

    #[test]
    fn matches_xoshiro_reference_vectors() {
        // First outputs of xoshiro256++ for the state produced by seeding
        // SplitMix64 with 0 — cross-checked against the authors' reference
        // C implementation. Pins the stream against accidental edits.
        let mut rng = SimRng::seed_from(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let want = [
            0x53175d61490b23dfu64,
            0x61da6f3dc380d507,
            0x5c0fdf91ec9a7bfc,
            0x02eebf8c3bbe5e1a,
        ];
        assert_eq!(got, want);
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let parent = SimRng::seed_from(99);
        let mut c1 = parent.fork("child");
        let mut parent2 = SimRng::seed_from(99);
        let _ = parent2.uniform(); // consume from the parent stream
        let mut c2 = parent2.fork("child");
        assert_eq!(c1.uniform().to_bits(), c2.uniform().to_bits());
    }

    #[test]
    fn forks_with_different_labels_differ() {
        let parent = SimRng::seed_from(99);
        let mut a = parent.fork("a");
        let mut b = parent.fork("b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = rng.range_f64(15.0, 25.0);
            assert!((15.0..25.0).contains(&x));
            let i = rng.index(10);
            assert!(i < 10);
        }
    }

    #[test]
    fn index_is_roughly_uniform() {
        let mut rng = SimRng::seed_from(21);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.index(7)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = SimRng::seed_from(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / f64::from(n);
        assert!((mean - 2.0).abs() < 0.1, "mean {mean} should be near 2.0");
    }

    #[test]
    fn sample_is_distinct_and_bounded() {
        let mut rng = SimRng::seed_from(11);
        let items: Vec<u32> = (0..50).collect();
        let picked = rng.sample(&items, 10);
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "samples must be distinct");
        let too_many = rng.sample(&items, 100);
        assert_eq!(too_many.len(), 50);
    }

    #[test]
    fn sparse_sample_matches_dense_reference() {
        // The sparse partial Fisher–Yates must reproduce the dense
        // original bitwise: same RNG draws, same picks, in the same
        // order. Sweep across the take*64 < len threshold so both code
        // paths are exercised against the reference, including the
        // boundary (129, 2) where the sparse path barely engages.
        for (len, k) in [
            (1usize, 1usize),
            (9, 1),
            (64, 7),
            (129, 2),
            (1000, 3),
            (5000, 100),
            (20000, 100),
        ] {
            let mut fast = SimRng::seed_from(23);
            let picked = fast.sample_indices(len, k);

            let mut reference = SimRng::seed_from(23);
            let mut idx: Vec<usize> = (0..len).collect();
            let take = k.min(len);
            for i in 0..take {
                let j = i + reference.index(len - i);
                idx.swap(i, j);
            }
            assert_eq!(picked, idx[..take], "len={len} k={k}");
            // Both generators must end in the same state.
            assert_eq!(fast.next_u64(), reference.next_u64());
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(13);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::seed_from(17);
        let empty: &[u8] = &[];
        assert!(rng.choose(empty).is_none());
        assert!(rng.choose(&[42]).is_some());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(19);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
