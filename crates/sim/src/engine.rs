//! The event-driven simulation loop.
//!
//! A simulation couples an [`EventQueue`] with a user-supplied handler. The
//! handler receives each event together with a [`Schedule`] handle through
//! which it may enqueue follow-up events. The loop guarantees that time
//! never moves backwards and that same-time events fire in FIFO order.

use rom_obs::Prof;

use crate::queue::EventQueue;
use crate::time::SimTime;

/// Handle through which an event handler schedules future events.
///
/// The handle enforces causality: events may only be scheduled at or after
/// the current instant.
#[derive(Debug)]
pub struct Schedule<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<E> Schedule<'_, E> {
    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` seconds from now.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or NaN.
    pub fn after(&mut self, delay: f64, event: E) {
        assert!(
            delay >= 0.0,
            "cannot schedule into the past (delay {delay})"
        );
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` to fire immediately after the current event (same
    /// timestamp, FIFO order).
    pub fn now_next(&mut self, event: E) {
        self.queue.push(self.now, event);
    }

    /// Number of events currently pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Outcome of [`Simulation::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The queue drained before the horizon.
    Drained,
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The event budget was exhausted (see [`Simulation::with_max_events`]).
    BudgetExhausted,
}

/// A discrete-event simulation over events of type `E`.
///
/// # Examples
///
/// A tiny self-rescheduling clock that ticks three times:
///
/// ```
/// use rom_sim::{Simulation, SimTime};
///
/// #[derive(Debug)]
/// struct Tick(u32);
///
/// let mut sim = Simulation::new();
/// sim.schedule(SimTime::ZERO, Tick(0));
/// let mut ticks = Vec::new();
/// sim.run_until(SimTime::from_secs(100.0), |now, Tick(n), sched| {
///     ticks.push((now.as_secs(), n));
///     if n < 2 {
///         sched.after(1.0, Tick(n + 1));
///     }
/// });
/// assert_eq!(ticks, vec![(0.0, 0), (1.0, 1), (2.0, 2)]);
/// ```
pub struct Simulation<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
    max_events: Option<u64>,
    event_hook: Option<Box<dyn FnMut(SimTime, usize)>>,
    prof: Option<Prof>,
}

impl<E: std::fmt::Debug> std::fmt::Debug for Simulation<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("queue", &self.queue)
            .field("now", &self.now)
            .field("processed", &self.processed)
            .field("max_events", &self.max_events)
            .field("event_hook", &self.event_hook.as_ref().map(|_| ".."))
            .field("prof", &self.prof.is_some())
            .finish()
    }
}

impl<E> Simulation<E> {
    /// Creates a simulation positioned at the epoch with an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Simulation {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            max_events: None,
            event_hook: None,
            prof: None,
        }
    }

    /// Sets a safety budget on the total number of processed events; the run
    /// stops with [`RunOutcome::BudgetExhausted`] when it is hit. Useful for
    /// guarding against accidental event storms in tests.
    #[must_use]
    pub fn with_max_events(mut self, max: u64) -> Self {
        self.max_events = Some(max);
        self
    }

    /// Installs an observability hook called after every handled event
    /// with the current time and the number of events left pending.
    ///
    /// Intended for queue-depth gauges and event counters; the hook must
    /// not schedule events (it has no [`Schedule`] handle) and is only
    /// invoked from [`Simulation::run_until`].
    pub fn set_event_hook(&mut self, hook: impl FnMut(SimTime, usize) + 'static) {
        self.event_hook = Some(Box::new(hook));
    }

    /// Removes the observability hook, if any.
    pub fn clear_event_hook(&mut self) {
        self.event_hook = None;
    }

    /// Attaches a span profiler. Each queue interaction (peek + pop) in
    /// [`Simulation::run_until`] is then timed under a root `sim.queue`
    /// span, so `rom-prof` reports show what the event kernel itself
    /// costs relative to the handlers it dispatches. A disabled [`Prof`]
    /// adds one branch per event; no profiler adds nothing.
    pub fn set_prof(&mut self, prof: Prof) {
        self.prof = Some(prof);
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedules an initial event before (or between) runs.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event);
    }

    /// Runs the event loop until `horizon` (inclusive), the queue drains, or
    /// the event budget is exhausted. Events scheduled exactly at the
    /// horizon still fire.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F) -> RunOutcome
    where
        F: FnMut(SimTime, E, &mut Schedule<'_, E>),
    {
        loop {
            // The guard times the peek + pop pair (dropped before the
            // handler runs, so handler spans do not nest under it).
            let queue_span = self.prof.as_ref().map(|p| p.span("sim.queue"));
            let Some(next_time) = self.queue.peek_time() else {
                return RunOutcome::Drained;
            };
            if next_time > horizon {
                drop(queue_span);
                self.now = horizon;
                return RunOutcome::HorizonReached;
            }
            if let Some(max) = self.max_events {
                if self.processed >= max {
                    return RunOutcome::BudgetExhausted;
                }
            }
            let (time, event) = self.queue.pop().expect("peeked event exists");
            drop(queue_span);
            debug_assert!(time >= self.now, "event queue violated monotonicity");
            self.now = time;
            self.processed += 1;
            let mut sched = Schedule {
                now: self.now,
                queue: &mut self.queue,
            };
            handler(time, event, &mut sched);
            if let Some(hook) = self.event_hook.as_mut() {
                hook(self.now, self.queue.len());
            }
        }
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Maximum number of events ever pending at once (exact; see
    /// [`EventQueue::high_water_mark`]).
    #[must_use]
    pub fn queue_high_water_mark(&self) -> usize {
        self.queue.high_water_mark()
    }

    /// Peak payload bytes held by the event queue (deterministic; see
    /// [`EventQueue::bytes_high_water`]).
    #[must_use]
    pub fn queue_bytes_high_water(&self) -> u64 {
        self.queue.bytes_high_water()
    }
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Simulation::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        Stop,
    }

    #[test]
    fn drains_when_queue_empties() {
        let mut sim: Simulation<Ev> = Simulation::new();
        sim.schedule(SimTime::from_secs(1.0), Ev::Ping(1));
        let outcome = sim.run_until(SimTime::from_secs(10.0), |_, _, _| {});
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(sim.processed(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(1.0));
    }

    #[test]
    fn horizon_stops_and_preserves_pending() {
        let mut sim: Simulation<Ev> = Simulation::new();
        sim.schedule(SimTime::from_secs(5.0), Ev::Ping(1));
        sim.schedule(SimTime::from_secs(50.0), Ev::Stop);
        let outcome = sim.run_until(SimTime::from_secs(10.0), |_, _, _| {});
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(10.0));
        // A later run picks the pending event up.
        let outcome = sim.run_until(SimTime::from_secs(100.0), |_, _, _| {});
        assert_eq!(outcome, RunOutcome::Drained);
    }

    #[test]
    fn events_at_horizon_fire() {
        let mut sim: Simulation<Ev> = Simulation::new();
        sim.schedule(SimTime::from_secs(10.0), Ev::Ping(7));
        let mut fired = false;
        sim.run_until(SimTime::from_secs(10.0), |_, _, _| fired = true);
        assert!(fired);
    }

    #[test]
    fn handler_can_chain_events() {
        let mut sim: Simulation<u32> = Simulation::new();
        sim.schedule(SimTime::ZERO, 0);
        let mut seen = Vec::new();
        sim.run_until(SimTime::from_secs(100.0), |now, n, sched| {
            seen.push((now.as_secs(), n));
            if n < 3 {
                sched.after(2.0, n + 1);
            }
        });
        assert_eq!(seen, vec![(0.0, 0), (2.0, 1), (4.0, 2), (6.0, 3)]);
    }

    #[test]
    fn budget_halts_runaway_loops() {
        let mut sim: Simulation<()> = Simulation::new().with_max_events(100);
        sim.schedule(SimTime::ZERO, ());
        let outcome = sim.run_until(SimTime::FAR_FUTURE, |_, (), sched| {
            sched.after(1.0, ());
        });
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
        assert_eq!(sim.processed(), 100);
    }

    #[test]
    fn now_next_preserves_fifo() {
        let mut sim: Simulation<&str> = Simulation::new();
        sim.schedule(SimTime::from_secs(1.0), "a");
        let mut order = Vec::new();
        sim.run_until(SimTime::from_secs(2.0), |_, e, sched| {
            order.push(e);
            if e == "a" {
                sched.now_next("b");
                sched.now_next("c");
            }
        });
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn event_hook_sees_every_event_and_queue_depth() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let observed: Rc<RefCell<Vec<(f64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&observed);
        let mut sim: Simulation<u32> = Simulation::new();
        sim.set_event_hook(move |now, pending| sink.borrow_mut().push((now.as_secs(), pending)));
        sim.schedule(SimTime::from_secs(1.0), 0);
        sim.schedule(SimTime::from_secs(2.0), 1);
        sim.run_until(SimTime::from_secs(10.0), |_, n, sched| {
            if n == 0 {
                sched.after(0.5, 2);
            }
        });
        // Three events handled; pending count reflects the chained event.
        assert_eq!(*observed.borrow(), vec![(1.0, 2), (1.5, 1), (2.0, 0)]);
        assert_eq!(sim.queue_high_water_mark(), 2);
        sim.clear_event_hook();
        sim.schedule(SimTime::from_secs(20.0), 9);
        sim.run_until(SimTime::from_secs(30.0), |_, _, _| {});
        assert_eq!(observed.borrow().len(), 3, "cleared hook no longer fires");
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut sim: Simulation<()> = Simulation::new();
        sim.schedule(SimTime::from_secs(5.0), ());
        sim.run_until(SimTime::from_secs(10.0), |_, (), sched| {
            sched.at(SimTime::from_secs(1.0), ());
        });
    }
}
