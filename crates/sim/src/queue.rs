//! A stable priority queue of timestamped events.
//!
//! Events that share a timestamp are delivered in insertion order, which
//! keeps simulations deterministic regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event together with its scheduled firing time and a cancellation token.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // and break timestamp ties by insertion sequence (FIFO).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A monotonically ordered queue of future events.
///
/// The queue is the heart of the simulation engine but is useful on its own
/// for custom drivers.
///
/// # Examples
///
/// ```
/// use rom_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "second");
/// q.push(SimTime::from_secs(1.0), "first");
/// q.push(SimTime::from_secs(2.0), "third"); // same time: FIFO with "second"
///
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "first")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "third")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    high_water: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            high_water: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
        if self.heap.len() > self.high_water {
            self.high_water = self.heap.len();
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The firing time of the earliest event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Maximum number of events ever pending at once over this queue's
    /// lifetime (not reset by [`EventQueue::clear`]).
    ///
    /// This is the exact peak the observability layer's queue-depth
    /// gauge approximates by sampling.
    #[must_use]
    pub fn high_water_mark(&self) -> usize {
        self.high_water
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), 3);
        q.push(SimTime::from_secs(1.0), 1);
        q.push(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_secs(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn tie_break_order_is_pinned_across_runs() {
        // Two identically-driven queues drain tied events in the same
        // order — insertion order, independent of heap internals. The
        // workload mixes tied and untied pushes with interleaved pops so
        // the sequence numbers wrap through realistic heap shapes.
        let drain = || {
            let mut q = EventQueue::new();
            let mut order = Vec::new();
            let mut next = 0u32;
            for round in 0..50u64 {
                for _ in 0..4 {
                    q.push(SimTime::from_secs((round % 7) as f64), next);
                    next += 1;
                }
                if round % 3 == 0 {
                    if let Some((t, e)) = q.pop() {
                        order.push((t, e));
                    }
                }
            }
            order.extend(std::iter::from_fn(|| q.pop()));
            order
        };
        let first = drain();
        let second = drain();
        assert_eq!(first.len(), 200);
        assert_eq!(first, second, "tie-break order must be reproducible");
        // Within every timestamp, events appear in insertion order.
        for w in first.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO violated at {:?}", w[0].0);
            }
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn high_water_mark_tracks_peak_pending() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_water_mark(), 0);
        q.push(SimTime::from_secs(1.0), 1);
        q.push(SimTime::from_secs(2.0), 2);
        q.push(SimTime::from_secs(3.0), 3);
        assert_eq!(q.high_water_mark(), 3);
        q.pop();
        q.pop();
        // Popping never lowers the mark; a smaller refill keeps the peak.
        q.push(SimTime::from_secs(4.0), 4);
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water_mark(), 3);
        // The mark survives clear(): it is a lifetime peak.
        q.clear();
        assert_eq!(q.high_water_mark(), 3);
        q.push(SimTime::from_secs(5.0), 5);
        q.push(SimTime::from_secs(6.0), 6);
        q.push(SimTime::from_secs(7.0), 7);
        q.push(SimTime::from_secs(8.0), 8);
        assert_eq!(q.high_water_mark(), 4);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10.0), 10);
        q.push(SimTime::from_secs(5.0), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        q.push(SimTime::from_secs(7.0), 7);
        q.push(SimTime::from_secs(6.0), 6);
        assert_eq!(q.pop().unwrap().1, 6);
        assert_eq!(q.pop().unwrap().1, 7);
        assert_eq!(q.pop().unwrap().1, 10);
    }
}
