//! A stable priority queue of timestamped events.
//!
//! Events that share a timestamp are delivered in insertion order, which
//! keeps simulations deterministic regardless of queue internals.
//!
//! # Implementation: a ladder queue
//!
//! The queue is a ladder/calendar queue (Tang, Goh & Thng, ACM TOMACS 2005)
//! rather than a binary heap. A discrete-event simulation schedules mostly
//! into the near future of a monotonically advancing clock, and a ladder
//! queue turns that bias into amortized O(1) push/pop where a heap pays
//! O(log n) per operation — the difference dominates once millions of
//! events are pending (the `--mega` scale).
//!
//! Entries are keyed by `(time, seq)` where `seq` is a global insertion
//! counter, so every key is unique and totally ordered. Because of that,
//! *any* correct priority queue pops the exact same sequence — the ladder
//! rewrite is bitwise-equivalent to the old `BinaryHeap`, which the
//! differential wall in `tests/queue_equivalence.rs` proves by driving an
//! embedded copy of the old implementation through identical randomized
//! schedules.
//!
//! Structure (earliest keys at the bottom):
//!
//! - **Bottom** — a `Vec` sorted descending by `(key, seq)`; `pop` is
//!   `Vec::pop` from the tail. Pushes below the current rung boundary are
//!   sorted-inserted here (rare once the ladder is warm, and the bottom is
//!   at most one bucket — small — so the insert shift is cheap).
//! - **Rungs** — a stack of bucket arrays. Each rung divides a key span
//!   into fixed-width buckets; `rungs[i + 1]` refines one bucket of
//!   `rungs[i]`. Buckets are unsorted until consumed.
//! - **Top** — an unsorted staging `Vec` for keys at or beyond `top_start`
//!   (the monotone common case: one comparison and a `Vec::push`).
//!
//! When the bottom drains, the innermost rung's next non-empty bucket is
//! sorted by `(key, seq)` and becomes the new bottom (or, if it is large,
//! it is split into an inner rung first). When the rungs drain, the top is
//! spilled into a fresh rung and `top_start` advances past the largest key
//! spilled. Region boundaries only ever move upward, and every entry lives
//! in exactly one region determined by its key, so sorting at consumption
//! recovers the global `(key, seq)` order — including FIFO within
//! timestamp ties, even when ties straddle a spill (see
//! `DESIGN.md § Event kernel at mega scale`).

use std::fmt;

use crate::time::SimTime;

/// Bucket population above which a consumed bucket is split into an inner
/// rung instead of being sorted directly into the bottom.
const THRESH: usize = 64;

/// Upper bound on bucket-array width; caps per-rung overhead at
/// `MAX_BUCKETS * size_of::<Vec<_>>()` regardless of pending-event count.
const MAX_BUCKETS: usize = 1 << 16;

/// Ladder depth cap. At the cap a bucket is sorted wholesale (an
/// O(n log n) fallback) instead of being refined further, which bounds
/// both recursion and pathological key-cluster behaviour.
const MAX_RUNGS: usize = 64;

/// Cap on the recycled-bucket pool retained across rung drops and
/// [`EventQueue::clear`] (capacity reuse without unbounded hoarding).
const MAX_SPARE: usize = 4096;

/// Maps a [`SimTime`] to a `u64` whose unsigned order equals
/// `f64::total_cmp` order (the order `SimTime: Ord` is defined by).
///
/// Same sign-fold as `join_order_key` in `rom-overlay`: negative floats
/// flip every bit, non-negative floats set the sign bit. The map is a
/// bijection, so [`key_time`] recovers the original time bitwise.
fn time_key(time: SimTime) -> u64 {
    let bits = time.as_secs().to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Exact inverse of [`time_key`].
fn key_time(key: u64) -> SimTime {
    let bits = if key >> 63 == 1 {
        key & !(1 << 63)
    } else {
        !key
    };
    SimTime::from_secs(f64::from_bits(bits))
}

/// A scheduled event. `key` encodes the firing time ([`time_key`]); `seq`
/// is the global insertion counter that pins FIFO order within ties.
#[derive(Debug)]
struct Entry<E> {
    key: u64,
    seq: u64,
    event: E,
}

/// Sorts descending by `(key, seq)` so the earliest entry is at the tail.
/// `(key, seq)` pairs are unique, so an unstable sort is total — and FIFO
/// within equal keys falls out of the `seq` order.
fn sort_bottom<E>(v: &mut [Entry<E>]) {
    v.sort_unstable_by(|a, b| (b.key, b.seq).cmp(&(a.key, a.seq)));
}

/// One ladder rung: a span of keys starting at `start`, divided into
/// `buckets.len()` buckets of `width` keys each. Buckets before `cur` have
/// been consumed; `cur_start()` is the lower bound of keys still admitted.
#[derive(Debug)]
struct Rung<E> {
    start: u64,
    width: u64,
    cur: usize,
    count: usize,
    buckets: Vec<Vec<Entry<E>>>,
}

impl<E> Rung<E> {
    /// Lower bound (inclusive) of keys this rung still accepts. Keys below
    /// it belong to an inner rung or the bottom.
    fn cur_start(&self) -> u64 {
        self.start
            .saturating_add(self.width.saturating_mul(self.cur as u64))
    }

    /// True if this rung may accept `key`: the key is at or beyond the
    /// consumption cursor and the cursor has not run off the bucket array
    /// (an exhausted rung must not capture keys in the rounding gap
    /// between its span end and the enclosing region's boundary).
    fn admits(&self, key: u64) -> bool {
        self.cur < self.buckets.len() && key >= self.cur_start()
    }

    /// Bucket index for `key`, clamped to the last bucket. The clamp
    /// handles keys in the rounding gap beyond the spawned span; it cannot
    /// misorder pops because this rung drains completely before the
    /// enclosing region resumes, and buckets are sorted when consumed.
    fn bucket_index(&self, key: u64) -> usize {
        debug_assert!(key >= self.cur_start(), "key below consumed boundary");
        let idx = ((key - self.start) / self.width) as usize;
        let idx = idx.min(self.buckets.len() - 1);
        debug_assert!(idx >= self.cur, "clamped into a consumed bucket");
        idx
    }
}

/// A monotonically ordered queue of future events.
///
/// The queue is the heart of the simulation engine but is useful on its own
/// for custom drivers.
///
/// # Examples
///
/// ```
/// use rom_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "second");
/// q.push(SimTime::from_secs(1.0), "first");
/// q.push(SimTime::from_secs(2.0), "third"); // same time: FIFO with "second"
///
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "first")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "third")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// Sorted descending by `(key, seq)`; the earliest entry is last.
    bottom: Vec<Entry<E>>,
    /// Outermost rung first; `rungs[i + 1]` refines a bucket of `rungs[i]`,
    /// so `cur_start` strictly decreases from outer to inner.
    rungs: Vec<Rung<E>>,
    /// Unsorted staging area for keys `>= top_start`.
    top: Vec<Entry<E>>,
    top_start: u64,
    /// Running min/max key in `top` (valid while `top` is non-empty).
    top_min: u64,
    top_max: u64,
    /// Recycled bucket storage, reused across rung drops and `clear`.
    spare: Vec<Vec<Entry<E>>>,
    next_seq: u64,
    len: usize,
    high_water: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            bottom: Vec::new(),
            rungs: Vec::new(),
            top: Vec::new(),
            top_start: 0,
            top_min: u64::MAX,
            top_max: 0,
            spare: Vec::new(),
            next_seq: 0,
            len: 0,
            high_water: 0,
        }
    }

    /// Creates an empty queue with the staging area pre-sized for
    /// `capacity` pending events, so a flash-crowd burst of that size does
    /// not reallocate mid-run.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = EventQueue::new();
        q.top = Vec::with_capacity(capacity);
        q
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = time_key(time);
        if self.len == 0 {
            // Empty queue: reset the boundary so the entry (and any
            // monotone successors) land in the O(1) top path.
            self.top_start = 0;
        }
        let entry = Entry { key, seq, event };
        if key >= self.top_start {
            self.top_min = self.top_min.min(key);
            self.top_max = self.top_max.max(key);
            self.top.push(entry);
        } else if let Some(rung) = self.rungs.iter_mut().find(|r| r.admits(key)) {
            // Outermost rung that still admits the key. Inner rungs span
            // strictly lower keys, so the first match is the right region.
            let idx = rung.bucket_index(key);
            rung.buckets[idx].push(entry);
            rung.count += 1;
        } else {
            // Below every boundary: sorted insert into the bottom. Keys
            // near the current clock land near the tail, so the shift is
            // short; the bottom is at most one bucket anyway.
            let at = self.bottom.partition_point(|e| (e.key, e.seq) > (key, seq));
            self.bottom.insert(at, entry);
        }
        self.len += 1;
        if self.len > self.high_water {
            self.high_water = self.len;
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.bottom.is_empty() {
            self.settle();
        }
        let entry = self.bottom.pop()?;
        self.len -= 1;
        if self.bottom.is_empty() {
            // Eagerly restore the settled invariant so the next
            // `peek_time` stays O(1).
            self.settle();
        }
        Some((key_time(entry.key), entry.event))
    }

    /// The firing time of the earliest event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.bottom.last() {
            return Some(key_time(e.key));
        }
        // The queue settles after every pop, so with the bottom empty the
        // rungs are empty too and only the top (pushes into a drained
        // queue) can hold events; the rung scan below is defensive.
        if let Some(rung) = self.rungs.last() {
            for bucket in &rung.buckets[rung.cur..] {
                if let Some(min) = bucket.iter().map(|e| e.key).min() {
                    return Some(key_time(min));
                }
            }
        }
        if self.top.is_empty() {
            None
        } else {
            Some(key_time(self.top_min))
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of events ever pending at once over this queue's
    /// lifetime (not reset by [`EventQueue::clear`]).
    ///
    /// This is the exact peak the observability layer's queue-depth
    /// gauge approximates by sampling.
    #[must_use]
    pub fn high_water_mark(&self) -> usize {
        self.high_water
    }

    /// Peak payload bytes held by the queue over its lifetime:
    /// [`EventQueue::high_water_mark`] times the per-entry footprint
    /// (key + sequence + event). Deterministic — a pure function of the
    /// schedule, unlike RSS — so it can appear in benchmark artifacts
    /// without breaking byte-identity. Excludes bucket-array overhead.
    #[must_use]
    pub fn bytes_high_water(&self) -> u64 {
        self.high_water as u64 * std::mem::size_of::<Entry<E>>() as u64
    }

    /// Drops all pending events.
    ///
    /// Allocations are retained: the staging areas keep their capacity and
    /// rung bucket storage moves to the recycled pool, so a queue that is
    /// cleared and refilled (flash-crowd restarts) does not reallocate.
    pub fn clear(&mut self) {
        self.bottom.clear();
        for mut rung in self.rungs.drain(..) {
            for mut bucket in rung.buckets.drain(..) {
                bucket.clear();
                if self.spare.len() < MAX_SPARE {
                    self.spare.push(bucket);
                }
            }
        }
        self.top.clear();
        self.top_start = 0;
        self.top_min = u64::MAX;
        self.top_max = 0;
        self.len = 0;
    }

    /// Refills the bottom from the regions above it, restoring the settled
    /// invariant: the bottom is non-empty whenever any rung holds events.
    fn settle(&mut self) {
        debug_assert!(self.bottom.is_empty());
        loop {
            // Retire exhausted rungs (innermost first).
            while self.rungs.last().is_some_and(|r| r.count == 0) {
                self.drop_innermost_rung();
            }
            if self.rungs.is_empty() {
                if self.top.is_empty() {
                    return;
                }
                // Spill the top. Advance the boundary past everything
                // spilled so later pushes with spilled-range keys route
                // inward and keep FIFO with entries already staged below.
                let mut top = std::mem::take(&mut self.top);
                self.top_start = self.top_max.saturating_add(1);
                let degenerate = self.top_min == self.top_max;
                self.top_min = u64::MAX;
                self.top_max = 0;
                if degenerate || top.len() <= THRESH || !self.spawn_rung(&mut top) {
                    // Tie flood (single key), small population, or ladder
                    // at capacity: sort wholesale into the bottom.
                    sort_bottom(&mut top);
                    let old = std::mem::replace(&mut self.bottom, top);
                    self.top = recycled(old);
                    return;
                }
                self.top = recycled(top);
                continue;
            }
            // Consume the innermost rung's next non-empty bucket.
            let depth = self.rungs.len();
            let spare_bucket = self.spare.pop().unwrap_or_default();
            let rung = self.rungs.last_mut().expect("rungs checked non-empty");
            while rung.buckets[rung.cur].is_empty() {
                rung.cur += 1;
            }
            let split = rung.buckets[rung.cur].len() > THRESH && depth < MAX_RUNGS;
            let mut bucket = std::mem::replace(&mut rung.buckets[rung.cur], spare_bucket);
            rung.count -= bucket.len();
            rung.cur += 1;
            if rung.count == 0 {
                // Retire eagerly: an exhausted innermost rung must never
                // survive to the next push (its cursor may sit past the
                // last bucket, where `admits` would be meaningless).
                self.drop_innermost_rung();
            }
            if split && self.spawn_rung(&mut bucket) {
                if self.spare.len() < MAX_SPARE {
                    self.spare.push(bucket);
                }
                continue;
            }
            sort_bottom(&mut bucket);
            self.recycle_bottom(bucket);
            return;
        }
    }

    /// Distributes `source` into a new innermost rung. Returns `false`
    /// (leaving `source` untouched) if the ladder is at [`MAX_RUNGS`] or
    /// the key span is degenerate; callers then sort `source` wholesale.
    fn spawn_rung(&mut self, source: &mut Vec<Entry<E>>) -> bool {
        if self.rungs.len() >= MAX_RUNGS || source.is_empty() {
            return false;
        }
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for e in source.iter() {
            lo = lo.min(e.key);
            hi = hi.max(e.key);
        }
        if lo == hi {
            return false;
        }
        let nbuckets = source.len().clamp(2, MAX_BUCKETS);
        let width = (hi - lo) / nbuckets as u64 + 1;
        let mut buckets: Vec<Vec<Entry<E>>> = Vec::with_capacity(nbuckets);
        for _ in 0..nbuckets {
            buckets.push(self.spare.pop().unwrap_or_default());
        }
        let mut rung = Rung {
            start: lo,
            width,
            cur: 0,
            count: source.len(),
            buckets,
        };
        for entry in source.drain(..) {
            let idx = rung.bucket_index(entry.key);
            rung.buckets[idx].push(entry);
        }
        self.rungs.push(rung);
        true
    }

    /// Retires the (empty) innermost rung, recycling its bucket storage.
    fn drop_innermost_rung(&mut self) {
        let rung = self.rungs.pop().expect("caller checked a rung exists");
        debug_assert_eq!(rung.count, 0);
        for bucket in rung.buckets {
            debug_assert!(bucket.is_empty());
            if self.spare.len() < MAX_SPARE {
                self.spare.push(bucket);
            }
        }
    }

    /// Installs `bucket` as the new bottom, recycling the old storage.
    fn recycle_bottom(&mut self, bucket: Vec<Entry<E>>) {
        let old = std::mem::replace(&mut self.bottom, bucket);
        if self.spare.len() < MAX_SPARE {
            self.spare.push(recycled(old));
        }
    }
}

/// Clears a vector for reuse, keeping its capacity.
fn recycled<T>(mut v: Vec<T>) -> Vec<T> {
    v.clear();
    v
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("high_water", &self.high_water)
            .field("next_seq", &self.next_seq)
            .field("rungs", &self.rungs.len())
            .field("bottom", &self.bottom.len())
            .field("top", &self.top.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), 3);
        q.push(SimTime::from_secs(1.0), 1);
        q.push(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_secs(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn tie_break_order_is_pinned_across_runs() {
        // Two identically-driven queues drain tied events in the same
        // order — insertion order, independent of queue internals. The
        // workload mixes tied and untied pushes with interleaved pops so
        // the sequence numbers wrap through realistic ladder shapes.
        let drain = || {
            let mut q = EventQueue::new();
            let mut order = Vec::new();
            let mut next = 0u32;
            for round in 0..50u64 {
                for _ in 0..4 {
                    q.push(SimTime::from_secs((round % 7) as f64), next);
                    next += 1;
                }
                if round % 3 == 0 {
                    if let Some((t, e)) = q.pop() {
                        order.push((t, e));
                    }
                }
            }
            order.extend(std::iter::from_fn(|| q.pop()));
            order
        };
        let first = drain();
        let second = drain();
        assert_eq!(first.len(), 200);
        assert_eq!(first, second, "tie-break order must be reproducible");
        // Within every timestamp, events appear in insertion order.
        for w in first.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO violated at {:?}", w[0].0);
            }
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn high_water_mark_tracks_peak_pending() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_water_mark(), 0);
        q.push(SimTime::from_secs(1.0), 1);
        q.push(SimTime::from_secs(2.0), 2);
        q.push(SimTime::from_secs(3.0), 3);
        assert_eq!(q.high_water_mark(), 3);
        q.pop();
        q.pop();
        // Popping never lowers the mark; a smaller refill keeps the peak.
        q.push(SimTime::from_secs(4.0), 4);
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water_mark(), 3);
        // The mark survives clear(): it is a lifetime peak.
        q.clear();
        assert_eq!(q.high_water_mark(), 3);
        q.push(SimTime::from_secs(5.0), 5);
        q.push(SimTime::from_secs(6.0), 6);
        q.push(SimTime::from_secs(7.0), 7);
        q.push(SimTime::from_secs(8.0), 8);
        assert_eq!(q.high_water_mark(), 4);
    }

    #[test]
    fn clear_retains_capacity_and_with_capacity_presizes() {
        // with_capacity pre-sizes the staging area for the requested burst.
        let mut q: EventQueue<u64> = EventQueue::with_capacity(1000);
        assert!(q.top.capacity() >= 1000);
        for i in 0..1000u64 {
            q.push(SimTime::from_secs(i as f64), i);
        }
        assert_eq!(q.high_water_mark(), 1000);
        // clear() keeps the allocation, so an identical refill fits in the
        // retained storage without growing it.
        q.clear();
        let cap_after_clear = q.top.capacity();
        assert!(cap_after_clear >= 1000);
        for i in 0..1000u64 {
            q.push(SimTime::from_secs(i as f64), i);
        }
        assert_eq!(q.top.capacity(), cap_after_clear);
        // High-water semantics are unchanged by capacity reuse: the mark
        // is about pending entries, never about reserved storage.
        assert_eq!(q.high_water_mark(), 1000);
        assert_eq!(q.len(), 1000);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10.0), 10);
        q.push(SimTime::from_secs(5.0), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        q.push(SimTime::from_secs(7.0), 7);
        q.push(SimTime::from_secs(6.0), 6);
        assert_eq!(q.pop().unwrap().1, 6);
        assert_eq!(q.pop().unwrap().1, 7);
        assert_eq!(q.pop().unwrap().1, 10);
    }

    #[test]
    fn key_mapping_is_monotone_and_exact() {
        let times = [
            f64::NEG_INFINITY,
            -1e18,
            -2.5,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.0,
            1.0 + f64::EPSILON,
            3600.0,
            1e300,
            f64::INFINITY,
        ];
        for w in times.windows(2) {
            let (a, b) = (SimTime::from_secs(w[0]), SimTime::from_secs(w[1]));
            assert!(
                time_key(a) < time_key(b),
                "key order broken between {a} and {b}"
            );
        }
        for t in times {
            let t = SimTime::from_secs(t);
            let rt = key_time(time_key(t));
            assert_eq!(
                rt.as_secs().to_bits(),
                t.as_secs().to_bits(),
                "round-trip must be bitwise exact"
            );
        }
    }

    #[test]
    fn far_future_and_negative_times_pop_in_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::FAR_FUTURE, "inf");
        q.push(SimTime::from_secs(-5.0), "past");
        q.push(SimTime::ZERO, "zero");
        q.push(SimTime::FAR_FUTURE, "inf2"); // FIFO with "inf"
        assert_eq!(q.pop().unwrap().1, "past");
        assert_eq!(q.pop().unwrap().1, "zero");
        assert_eq!(q.pop().unwrap().1, "inf");
        assert_eq!(q.pop().unwrap().1, "inf2");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn large_monotone_burst_spills_through_rungs() {
        // Enough entries to force top -> rung -> inner-rung spills, with
        // ties sprinkled in, then refined with out-of-order pushes into
        // the already-staged span.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        for i in 0..10_000u64 {
            let t = (i / 3) as f64; // runs of 3 ties
            q.push(SimTime::from_secs(t), i);
            expect.push((t, i));
        }
        for i in 0..500u64 {
            let t = (i * 7 % 3000) as f64 + 0.5;
            q.push(SimTime::from_secs(t), 100_000 + i);
            expect.push((t, 100_000 + i));
        }
        expect.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut got = Vec::new();
        while let Some((t, e)) = q.pop() {
            got.push((t.as_secs(), e));
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn bytes_high_water_tracks_entry_footprint() {
        let mut q: EventQueue<u64> = EventQueue::new();
        assert_eq!(q.bytes_high_water(), 0);
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        let per_entry = std::mem::size_of::<Entry<u64>>() as u64;
        assert_eq!(q.bytes_high_water(), 2 * per_entry);
        q.pop();
        q.pop();
        assert_eq!(q.bytes_high_water(), 2 * per_entry, "peak, not current");
    }
}
