//! Property tests for the event kernel: ordering, FIFO ties, and horizon
//! semantics hold for arbitrary schedules.

use proptest::prelude::*;
use rom_sim::{EventQueue, RunOutcome, SimTime, Simulation};

proptest! {
    /// Pops come out in nondecreasing time order, and events that share a
    /// timestamp preserve insertion order.
    #[test]
    fn queue_orders_time_then_fifo(times in prop::collection::vec(0u32..50, 1..200)) {
        let mut q = EventQueue::new();
        for (idx, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(f64::from(t)), idx);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated for equal timestamps");
                }
            }
            last = Some((t, idx));
        }
    }

    /// Every scheduled event at or before the horizon fires exactly once;
    /// everything later stays queued.
    #[test]
    fn simulation_respects_horizon(times in prop::collection::vec(0u32..100, 1..100), horizon in 0u32..100) {
        let mut sim: Simulation<usize> = Simulation::new();
        for (idx, &t) in times.iter().enumerate() {
            sim.schedule(SimTime::from_secs(f64::from(t)), idx);
        }
        let mut fired = Vec::new();
        let outcome = sim.run_until(SimTime::from_secs(f64::from(horizon)), |_, idx, _| {
            fired.push(idx);
        });
        let expected: Vec<usize> = {
            let mut tagged: Vec<(u32, usize)> = times
                .iter()
                .enumerate()
                .filter(|&(_, &t)| t <= horizon)
                .map(|(i, &t)| (t, i))
                .collect();
            tagged.sort();
            tagged.into_iter().map(|(_, i)| i).collect()
        };
        prop_assert_eq!(fired.len(), expected.len());
        let later = times.iter().filter(|&&t| t > horizon).count();
        prop_assert_eq!(sim.pending(), later);
        if later == 0 {
            prop_assert_eq!(outcome, RunOutcome::Drained);
        } else {
            prop_assert_eq!(outcome, RunOutcome::HorizonReached);
        }
    }

    /// Forked RNG streams are reproducible and label-sensitive.
    #[test]
    fn rng_forks_reproducible(seed in any::<u64>(), label in "[a-z]{1,12}") {
        use rom_sim::SimRng;
        let mut a = SimRng::seed_from(seed).fork(&label);
        let mut b = SimRng::seed_from(seed).fork(&label);
        for _ in 0..8 {
            prop_assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }
}
