//! Property tests for the event kernel: ordering, FIFO ties, and horizon
//! semantics hold for arbitrary schedules.

use proptest::prelude::*;
use rom_sim::{EventQueue, RunOutcome, SimTime, Simulation};

proptest! {
    /// Pops come out in nondecreasing time order, and events that share a
    /// timestamp preserve insertion order.
    #[test]
    fn queue_orders_time_then_fifo(times in prop::collection::vec(0u32..50, 1..200)) {
        let mut q = EventQueue::new();
        for (idx, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(f64::from(t)), idx);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated for equal timestamps");
                }
            }
            last = Some((t, idx));
        }
    }

    /// The ladder queue's guarantee holds for arbitrary *interleaved*
    /// push/pop schedules, not just push-then-drain: the concatenation of
    /// everything popped is globally nondecreasing in time whenever the
    /// queue was popped to empty in between, FIFO within ties throughout,
    /// and no payload is lost or duplicated. Times are drawn from a small
    /// pool spanning negative, tied and huge values so spills, tie floods
    /// and epoch boundaries all occur.
    #[test]
    fn interleaved_drains_stay_sorted_and_fifo(
        ops in prop::collection::vec((any::<bool>(), 0usize..12), 1..400),
    ) {
        let pool = [-1.0e9, -1.0, -0.0, 0.0, 0.5, 1.0, 1.0, 7.25, 3600.0, 1.0e12, 1.0e300, f64::INFINITY];
        let mut q = EventQueue::new();
        let mut pushed = 0usize;
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        for &(is_pop, t_idx) in &ops {
            if is_pop {
                if let Some(p) = q.pop() {
                    popped.push(p);
                }
            } else {
                q.push(SimTime::from_secs(pool[t_idx]), pushed);
                pushed += 1;
            }
        }
        let final_drain_from = popped.len();
        while let Some(p) = q.pop() {
            popped.push(p);
        }
        prop_assert_eq!(popped.len(), pushed, "events lost or duplicated");
        // FIFO within ties holds globally: for a fixed timestamp, pops
        // appear in insertion order even across intermediate drains.
        for w in popped.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated at {}", w[0].0);
            }
        }
        // Each payload appears exactly once.
        let mut seen = vec![false; pushed];
        for &(_, idx) in &popped {
            prop_assert!(!seen[idx], "payload {} popped twice", idx);
            seen[idx] = true;
        }
        // And the final uninterrupted drain is nondecreasing in time.
        for w in popped[final_drain_from..].windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "drain went backwards in time");
        }
    }

    /// Every scheduled event at or before the horizon fires exactly once;
    /// everything later stays queued.
    #[test]
    fn simulation_respects_horizon(times in prop::collection::vec(0u32..100, 1..100), horizon in 0u32..100) {
        let mut sim: Simulation<usize> = Simulation::new();
        for (idx, &t) in times.iter().enumerate() {
            sim.schedule(SimTime::from_secs(f64::from(t)), idx);
        }
        let mut fired = Vec::new();
        let outcome = sim.run_until(SimTime::from_secs(f64::from(horizon)), |_, idx, _| {
            fired.push(idx);
        });
        let expected: Vec<usize> = {
            let mut tagged: Vec<(u32, usize)> = times
                .iter()
                .enumerate()
                .filter(|&(_, &t)| t <= horizon)
                .map(|(i, &t)| (t, i))
                .collect();
            tagged.sort();
            tagged.into_iter().map(|(_, i)| i).collect()
        };
        prop_assert_eq!(fired.len(), expected.len());
        let later = times.iter().filter(|&&t| t > horizon).count();
        prop_assert_eq!(sim.pending(), later);
        if later == 0 {
            prop_assert_eq!(outcome, RunOutcome::Drained);
        } else {
            prop_assert_eq!(outcome, RunOutcome::HorizonReached);
        }
    }

    /// Forked RNG streams are reproducible and label-sensitive.
    #[test]
    fn rng_forks_reproducible(seed in any::<u64>(), label in "[a-z]{1,12}") {
        use rom_sim::SimRng;
        let mut a = SimRng::seed_from(seed).fork(&label);
        let mut b = SimRng::seed_from(seed).fork(&label);
        for _ in 0..8 {
            prop_assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }
}
