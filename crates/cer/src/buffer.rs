//! Playback buffering and deadline accounting (§4.2, §6).
//!
//! "For each packet in the stream, there is a delivery deadline and
//! playback deadline for a specific member. The playback deadline is the
//! delivery deadline plus the application's buffering time. Any packet
//! missing the playback deadline is meaningless." The §6 experiments
//! stream 10 packets/second with a default 5-second (50-packet) playback
//! buffer; the *starving time ratio* is the fraction of view time whose
//! packets never arrived in time.

use rom_sim::SimTime;

/// A set of received sequence numbers kept as sorted, disjoint, half-open
/// ranges — compact even for hours of stream.
///
/// # Examples
///
/// ```
/// use rom_cer::SeqRangeSet;
///
/// let mut set = SeqRangeSet::new();
/// set.insert_range(0, 100);
/// set.insert_range(150, 200);
/// assert!(set.contains(99));
/// assert!(!set.contains(100));
/// assert_eq!(set.missing_in(90, 160), vec![(100, 150)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SeqRangeSet {
    /// Sorted, disjoint, non-adjacent `[lo, hi)` ranges.
    ranges: Vec<(u64, u64)>,
}

impl SeqRangeSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        SeqRangeSet::default()
    }

    /// Inserts one sequence number.
    pub fn insert(&mut self, seq: u64) {
        self.insert_range(seq, seq + 1);
    }

    /// Inserts the half-open range `[lo, hi)`; empty ranges are ignored.
    pub fn insert_range(&mut self, lo: u64, hi: u64) {
        if lo >= hi {
            return;
        }
        // Find all ranges overlapping or adjacent to [lo, hi) and merge.
        let start = self.ranges.partition_point(|&(_, h)| h < lo);
        let end = self.ranges.partition_point(|&(l, _)| l <= hi);
        let mut new_lo = lo;
        let mut new_hi = hi;
        if start < end {
            new_lo = new_lo.min(self.ranges[start].0);
            new_hi = new_hi.max(self.ranges[end - 1].1);
        }
        self.ranges.splice(start..end, [(new_lo, new_hi)]);
    }

    /// True if `seq` has been received.
    #[must_use]
    pub fn contains(&self, seq: u64) -> bool {
        let i = self.ranges.partition_point(|&(_, h)| h <= seq);
        self.ranges.get(i).is_some_and(|&(l, _)| l <= seq)
    }

    /// The gaps within `[lo, hi)` as half-open ranges.
    #[must_use]
    pub fn missing_in(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cursor = lo;
        for &(l, h) in &self.ranges {
            if h <= cursor {
                continue;
            }
            if l >= hi {
                break;
            }
            if l > cursor {
                out.push((cursor, l.min(hi)));
            }
            cursor = cursor.max(h);
            if cursor >= hi {
                break;
            }
        }
        if cursor < hi {
            out.push((cursor, hi));
        }
        out
    }

    /// Number of distinct sequence numbers in the set.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.ranges.iter().map(|&(l, h)| h - l).sum()
    }

    /// True when no sequence number has been received.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The internal ranges (sorted, disjoint).
    #[must_use]
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }
}

impl FromIterator<u64> for SeqRangeSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut s = SeqRangeSet::new();
        for x in iter {
            s.insert(x);
        }
        s
    }
}

/// The stream's timing model: constant packet rate plus a playback buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamClock {
    rate_pps: f64,
    buffer_secs: f64,
}

impl StreamClock {
    /// The §6 experimental configuration: 10 packets/second, 5-second
    /// buffer.
    #[must_use]
    pub fn paper() -> Self {
        StreamClock::new(10.0, 5.0)
    }

    /// Creates a clock.
    ///
    /// # Panics
    ///
    /// Panics unless rate and buffer are positive.
    #[must_use]
    pub fn new(rate_pps: f64, buffer_secs: f64) -> Self {
        assert!(rate_pps > 0.0, "packet rate must be positive");
        assert!(buffer_secs > 0.0, "buffer must be positive");
        StreamClock {
            rate_pps,
            buffer_secs,
        }
    }

    /// Packets per second.
    #[must_use]
    pub fn rate_pps(&self) -> f64 {
        self.rate_pps
    }

    /// Playback buffer in seconds.
    #[must_use]
    pub fn buffer_secs(&self) -> f64 {
        self.buffer_secs
    }

    /// Buffer size in packets (the paper's "5 seconds, or 50 packets").
    #[must_use]
    pub fn buffer_packets(&self) -> u64 {
        (self.buffer_secs * self.rate_pps).round() as u64
    }

    /// The sequence number being generated at `t` (the live position).
    #[must_use]
    pub fn seq_at(&self, t: SimTime) -> u64 {
        (t.as_secs().max(0.0) * self.rate_pps).floor() as u64
    }

    /// When packet `seq` is generated at the source.
    #[must_use]
    pub fn generation_time(&self, seq: u64) -> SimTime {
        SimTime::from_secs(seq as f64 / self.rate_pps)
    }

    /// Packet `seq`'s playback deadline: generation plus the buffer.
    /// (Overlay path delays are tens of milliseconds against multi-second
    /// buffers, so the delivery deadline is approximated by the generation
    /// time, as the evaluation's §6 setup implies.)
    #[must_use]
    pub fn playback_deadline(&self, seq: u64) -> SimTime {
        self.generation_time(seq) + self.buffer_secs
    }

    /// A copy with a different buffer (Fig. 13's sweep).
    #[must_use]
    pub fn with_buffer_secs(mut self, buffer_secs: f64) -> Self {
        assert!(buffer_secs > 0.0, "buffer must be positive");
        self.buffer_secs = buffer_secs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = SeqRangeSet::new();
        s.insert(5);
        s.insert(7);
        s.insert(6);
        assert_eq!(s.ranges(), &[(5, 8)]); // coalesced
        assert!(s.contains(5) && s.contains(7));
        assert!(!s.contains(4) && !s.contains(8));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn range_merging() {
        let mut s = SeqRangeSet::new();
        s.insert_range(10, 20);
        s.insert_range(30, 40);
        s.insert_range(18, 32); // bridges both
        assert_eq!(s.ranges(), &[(10, 40)]);
        s.insert_range(0, 5);
        assert_eq!(s.ranges(), &[(0, 5), (10, 40)]);
        s.insert_range(5, 10); // adjacent: coalesce
        assert_eq!(s.ranges(), &[(0, 40)]);
    }

    #[test]
    fn empty_ranges_ignored() {
        let mut s = SeqRangeSet::new();
        s.insert_range(5, 5);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn missing_in_reports_gaps() {
        let s: SeqRangeSet = [0, 1, 2, 5, 6, 10].into_iter().collect();
        assert_eq!(s.missing_in(0, 12), vec![(3, 5), (7, 10), (11, 12)]);
        assert_eq!(s.missing_in(0, 3), vec![]);
        assert_eq!(s.missing_in(20, 25), vec![(20, 25)]);
        assert_eq!(s.missing_in(1, 6), vec![(3, 5)]);
    }

    #[test]
    fn missing_in_empty_set() {
        let s = SeqRangeSet::new();
        assert_eq!(s.missing_in(3, 7), vec![(3, 7)]);
    }

    #[test]
    fn random_inserts_match_naive_model() {
        // Cross-check the range set against a HashSet on a pseudo-random
        // workload.
        let mut s = SeqRangeSet::new();
        let mut naive = std::collections::HashSet::new();
        let mut x: u64 = 12345;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let lo = (x >> 33) % 200;
            let hi = lo + (x % 7);
            s.insert_range(lo, hi);
            for v in lo..hi {
                naive.insert(v);
            }
        }
        for v in 0..210 {
            assert_eq!(s.contains(v), naive.contains(&v), "seq {v}");
        }
        assert_eq!(s.len(), naive.len() as u64);
        // Ranges are sorted, disjoint and non-adjacent.
        for w in s.ranges().windows(2) {
            assert!(w[0].1 < w[1].0);
        }
    }

    #[test]
    fn clock_positions() {
        let c = StreamClock::paper();
        assert_eq!(c.rate_pps(), 10.0);
        assert_eq!(c.buffer_packets(), 50);
        assert_eq!(c.seq_at(SimTime::from_secs(12.34)), 123);
        assert_eq!(c.generation_time(123).as_secs(), 12.3);
        assert_eq!(c.playback_deadline(0).as_secs(), 5.0);
        assert_eq!(c.playback_deadline(100).as_secs(), 15.0);
    }

    #[test]
    fn clock_buffer_override() {
        let c = StreamClock::paper().with_buffer_secs(27.0);
        assert_eq!(c.buffer_packets(), 270);
        assert_eq!(c.playback_deadline(0).as_secs(), 27.0);
    }

    #[test]
    fn seq_at_clamps_negative_time() {
        let c = StreamClock::paper();
        assert_eq!(c.seq_at(SimTime::from_secs(-3.0)), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = StreamClock::new(0.0, 5.0);
    }
}
