//! # rom-cer: the Cooperative Error Recovery protocol
//!
//! The reactive half of the DSN 2006 paper's contribution (§4). When an
//! upstream member fails, the affected members need the lost stream data
//! during the tens of seconds that failure detection and rejoining take.
//! A single recovery parent rarely has the residual bandwidth for a full
//! stream; CER therefore:
//!
//! - reconstructs a **partial tree** from gossiped ancestor lists
//!   ([`PartialTree`], Fig. 3),
//! - selects a **minimum-loss-correlation group** of recovery nodes in
//!   (near-)disjoint subtrees ([`find_mlc_group`], Algorithm 1),
//! - repairs isolated losses along the distance-ordered **request chain**
//!   ([`RecoveryGroup::repair_chain`]) and full outages by **striping**
//!   sequence numbers across the group's residual bandwidths
//!   ([`StripePlan`], the `(n mod 100)` rule),
//! - uses **Explicit Loss Notification** ([`GapDetector`],
//!   [`LossNotification`]) so descendants of a failed node neither rejoin
//!   spuriously nor start duplicate recoveries,
//! - accounts packet timeliness against **playback deadlines**
//!   ([`StreamClock`], [`SeqRangeSet`]).

mod buffer;
mod correlation;
mod eln;
mod mlc;
mod partial_tree;
mod recovery;
mod session;

pub use buffer::{SeqRangeSet, StreamClock};
pub use correlation::{group_correlation, loss_correlation};
pub use eln::{ElnScope, GapDetector, LossNotification};
pub use mlc::{find_mlc_group, partial_group_correlation, random_group, MlcOptions};
pub use partial_tree::{AncestorRecord, PartialTree};
pub use recovery::{RecoveryGroup, RepairService, StripePlan, StripeSegment, STRIPE_MODULO};
pub use session::{RepairSession, RepairState};
