//! The loss-repair protocol (§4.2): recovery groups, request chains and
//! residual-bandwidth striping.
//!
//! "A member places the nodes of its recovery group in order of network
//! distance. Upon detecting a packet loss, it sends a packet repair
//! request to the first recovery node... If the first node has only a
//! residual bandwidth of ε₁ < 1..., it takes responsibility for sending
//! all packets that satisfy (n mod 100) < 100·ε₁ [and] passes the request
//! on to the second recovery node, which... takes care of repairing
//! packets whose sequence numbers satisfy 100·ε₁ ≤ (n mod 100) <
//! 100·(ε₁+ε₂). The process continues until the sum of all residual
//! bandwidths... is no less than 1, or all recovery nodes have been
//! contacted."

use rom_overlay::NodeId;

/// The modulo base of the paper's striping rule (`n mod 100`).
pub const STRIPE_MODULO: u64 = 100;

/// An ordered recovery group: members sorted by network distance from the
/// owner, nearest first.
///
/// # Examples
///
/// ```
/// use rom_cer::RecoveryGroup;
/// use rom_overlay::NodeId;
///
/// let group = RecoveryGroup::ordered_by_distance(
///     vec![(NodeId(5), 40.0), (NodeId(2), 10.0), (NodeId(9), 25.0)],
/// );
/// assert_eq!(group.members(), &[NodeId(2), NodeId(9), NodeId(5)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryGroup {
    members: Vec<NodeId>,
}

impl RecoveryGroup {
    /// Builds a group from `(member, distance)` pairs, sorting nearest
    /// first (ties by id for determinism).
    #[must_use]
    pub fn ordered_by_distance(mut members: Vec<(NodeId, f64)>) -> Self {
        members.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        RecoveryGroup {
            members: members.into_iter().map(|(n, _)| n).collect(),
        }
    }

    /// Builds a group from an already ordered member list.
    #[must_use]
    pub fn from_ordered(members: Vec<NodeId>) -> Self {
        RecoveryGroup { members }
    }

    /// Members, nearest first.
    #[must_use]
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Group size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no recovery node is known.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Single-packet repair (§4.2): the request walks the ordered chain;
    /// each node either serves the packet or NACKs and forwards. Returns
    /// the serving member and how many chain hops the request travelled
    /// (1 = first node served), or `None` when nobody holds the packet.
    #[must_use]
    pub fn repair_chain(&self, has_packet: impl Fn(NodeId) -> bool) -> Option<RepairService> {
        for (i, &m) in self.members.iter().enumerate() {
            if has_packet(m) {
                return Some(RepairService {
                    server: m,
                    chain_hops: i + 1,
                });
            }
        }
        None
    }
}

/// Outcome of a single-packet repair request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairService {
    /// The member that served the packet.
    pub server: NodeId,
    /// Number of chain hops the request travelled (1 = nearest member).
    pub chain_hops: usize,
}

/// One member's stripe in a full-rate recovery: it repairs sequence
/// numbers with `lo ≤ (n mod 100) < hi`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StripeSegment {
    /// Index of the member within the recovery group.
    pub member_index: usize,
    /// Inclusive lower bound on `n mod 100`.
    pub lo: u64,
    /// Exclusive upper bound on `n mod 100`.
    pub hi: u64,
    /// The residual bandwidth this member contributes (stream-rate units).
    pub rate_fraction: f64,
}

/// A full-stream recovery plan: residual bandwidths striped across the
/// group until they cover the stream or run out (§4.2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StripePlan {
    segments: Vec<StripeSegment>,
    coverage: f64,
}

impl StripePlan {
    /// Plans stripes over the group's residual bandwidths (in stream-rate
    /// units, i.e. `1.0` = a full stream), in group order. Members are
    /// consulted until the accumulated coverage reaches 1 or the group is
    /// exhausted; zero-residual members are skipped.
    ///
    /// # Panics
    ///
    /// Panics if any residual is negative or NaN.
    #[must_use]
    pub fn plan(residuals: &[f64]) -> Self {
        let mut segments = Vec::new();
        let mut acc = 0.0f64;
        for (i, &eps) in residuals.iter().enumerate() {
            assert!(eps >= 0.0, "residual bandwidth cannot be negative or NaN");
            if acc >= 1.0 {
                break;
            }
            if eps <= 0.0 {
                continue;
            }
            let lo = (acc * STRIPE_MODULO as f64).round() as u64;
            acc = (acc + eps).min(1.0);
            let hi = (acc * STRIPE_MODULO as f64).round() as u64;
            if hi > lo {
                segments.push(StripeSegment {
                    member_index: i,
                    lo,
                    hi,
                    rate_fraction: (hi - lo) as f64 / STRIPE_MODULO as f64,
                });
            }
        }
        StripePlan {
            segments,
            coverage: acc.min(1.0),
        }
    }

    /// Like [`plan`](Self::plan), but when the residuals sum to less than
    /// a full stream the stripe widths are scaled up proportionally so
    /// that *every* slot is assigned. Each member still serves at its own
    /// residual rate, so an under-provisioned group falls behind the live
    /// stream at rate `1 − Σε` and catches up only as the playback buffer
    /// allows — the best-effort repair behaviour of §4.2 ("the packet
    /// error recovery can be performed in a best-effort manner", §1).
    ///
    /// # Panics
    ///
    /// Panics if any residual is negative or NaN.
    #[must_use]
    pub fn plan_full_coverage(residuals: &[f64]) -> Self {
        let total: f64 = residuals
            .iter()
            .inspect(|&&eps| {
                assert!(eps >= 0.0, "residual bandwidth cannot be negative or NaN");
            })
            .sum();
        if total >= 1.0 || total <= 0.0 {
            return StripePlan::plan(residuals);
        }
        let scaled: Vec<f64> = residuals.iter().map(|&eps| eps / total).collect();
        let mut plan = StripePlan::plan(&scaled);
        // The slots are fully covered, but the *service* coverage is the
        // group's real aggregate rate.
        plan.coverage = total;
        plan
    }

    /// The planned stripes in group order.
    #[must_use]
    pub fn segments(&self) -> &[StripeSegment] {
        &self.segments
    }

    /// Fraction of the stream rate the plan covers (`min(1, Σ ε)`).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        self.coverage
    }

    /// The group member responsible for sequence number `seq`, if the plan
    /// covers its stripe slot.
    #[must_use]
    pub fn assigned_member(&self, seq: u64) -> Option<usize> {
        let slot = seq % STRIPE_MODULO;
        self.segments
            .iter()
            .find(|s| s.lo <= slot && slot < s.hi)
            .map(|s| s.member_index)
    }

    /// Fraction of an arbitrary long packet range the plan repairs — the
    /// repaired share of a failure gap.
    #[must_use]
    pub fn covered_fraction(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| (s.hi - s.lo) as f64 / STRIPE_MODULO as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_by_distance() {
        let g = RecoveryGroup::ordered_by_distance(vec![
            (NodeId(1), 30.0),
            (NodeId(2), 10.0),
            (NodeId(3), 10.0),
        ]);
        assert_eq!(g.members(), &[NodeId(2), NodeId(3), NodeId(1)]);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn repair_chain_walks_in_order() {
        let g = RecoveryGroup::from_ordered(vec![NodeId(1), NodeId(2), NodeId(3)]);
        // Only the third member has the packet.
        let service = g.repair_chain(|n| n == NodeId(3)).unwrap();
        assert_eq!(service.server, NodeId(3));
        assert_eq!(service.chain_hops, 3);
        // Nearest-holder wins.
        let service = g.repair_chain(|_| true).unwrap();
        assert_eq!(service.server, NodeId(1));
        assert_eq!(service.chain_hops, 1);
        // Nobody has it.
        assert_eq!(g.repair_chain(|_| false), None);
    }

    #[test]
    fn stripes_follow_paper_rule() {
        // ε₁ = 0.4, ε₂ = 0.35: node 0 covers (n mod 100) < 40, node 1
        // covers 40 ≤ (n mod 100) < 75.
        let plan = StripePlan::plan(&[0.4, 0.35]);
        let segs = plan.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!((segs[0].lo, segs[0].hi), (0, 40));
        assert_eq!((segs[1].lo, segs[1].hi), (40, 75));
        assert!((plan.coverage() - 0.75).abs() < 1e-9);
        assert_eq!(plan.assigned_member(139), Some(0)); // 139 mod 100 = 39
        assert_eq!(plan.assigned_member(140), Some(1));
        assert_eq!(plan.assigned_member(175), None); // uncovered tail
    }

    #[test]
    fn striping_stops_at_full_coverage() {
        // The third member is not needed: Σ reaches 1 at the second.
        let plan = StripePlan::plan(&[0.6, 0.7, 0.5]);
        assert_eq!(plan.segments().len(), 2);
        assert_eq!(plan.coverage(), 1.0);
        assert_eq!((plan.segments()[1].lo, plan.segments()[1].hi), (60, 100));
        // Every slot is assigned.
        for seq in 0..200 {
            assert!(plan.assigned_member(seq).is_some(), "seq {seq} uncovered");
        }
    }

    #[test]
    fn zero_residual_members_skipped() {
        let plan = StripePlan::plan(&[0.0, 0.5, 0.0, 0.5]);
        let indices: Vec<usize> = plan.segments().iter().map(|s| s.member_index).collect();
        assert_eq!(indices, vec![1, 3]);
        assert_eq!(plan.coverage(), 1.0);
    }

    #[test]
    fn empty_group_covers_nothing() {
        let plan = StripePlan::plan(&[]);
        assert!(plan.segments().is_empty());
        assert_eq!(plan.coverage(), 0.0);
        assert_eq!(plan.assigned_member(7), None);
        assert_eq!(plan.covered_fraction(), 0.0);
    }

    #[test]
    fn covered_fraction_matches_coverage() {
        for residuals in [vec![0.3], vec![0.2, 0.2, 0.2], vec![0.9, 0.9]] {
            let plan = StripePlan::plan(&residuals);
            assert!((plan.covered_fraction() - plan.coverage()).abs() < 0.011);
        }
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_residual_rejected() {
        let _ = StripePlan::plan(&[-0.1]);
    }

    #[test]
    fn full_coverage_scales_up_underprovisioned_groups() {
        // Two members with 0.2 + 0.3 = 0.5 of a stream: slots are split
        // 40/60 so everything is assigned, while the reported coverage is
        // the real aggregate service rate.
        let plan = StripePlan::plan_full_coverage(&[0.2, 0.3]);
        assert_eq!((plan.segments()[0].lo, plan.segments()[0].hi), (0, 40));
        assert_eq!((plan.segments()[1].lo, plan.segments()[1].hi), (40, 100));
        for seq in 0..200 {
            assert!(plan.assigned_member(seq).is_some());
        }
        assert!((plan.coverage() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn full_coverage_matches_plan_when_provisioned() {
        let provisioned = StripePlan::plan_full_coverage(&[0.6, 0.7]);
        assert_eq!(provisioned, StripePlan::plan(&[0.6, 0.7]));
        let empty = StripePlan::plan_full_coverage(&[]);
        assert!(empty.segments().is_empty());
    }
}
