//! Algorithm 1: finding the minimum-loss-correlation recovery group (§4.1).
//!
//! Given the locally reconstructed [`PartialTree`], the member picks `K`
//! recovery nodes whose pairwise loss correlation is minimal:
//!
//! 1. find the first level `Li` with `|Li| < K ≤ |Li+1|`;
//! 2. for each `vi ∈ Li` repeatedly pick a random child into the root set
//!    `G0` until `|G0| ≥ K` — the roots of `K` (near-)disjoint subtrees;
//! 3. from each subtree pick one random descendant into the group `G`.
//!
//! "The randomized selection is used for the purpose of load balancing and
//! for also providing alternatives for the isolated nodes in search for
//! the nearest recovery nodes."

use rom_overlay::NodeId;
use rom_sim::SimRng;

use crate::partial_tree::PartialTree;

/// Options for [`find_mlc_group`].
#[derive(Debug, Clone, Default)]
pub struct MlcOptions {
    /// Members that must not appear in the group — typically the
    /// requesting member itself and its own ancestors (they fail together
    /// with it).
    pub exclude: Vec<NodeId>,
}

/// Runs Algorithm 1 over `tree`, returning up to `k` recovery members.
///
/// The result can be smaller than `k` when the fragment simply does not
/// contain `k` admissible members; callers treat that as "use what there
/// is". The fragment root (the multicast source) is never selected.
///
/// # Panics
///
/// Panics if `k` is zero.
#[must_use]
pub fn find_mlc_group(
    tree: &PartialTree,
    k: usize,
    options: &MlcOptions,
    rng: &mut SimRng,
) -> Vec<NodeId> {
    assert!(k > 0, "recovery group size must be positive");
    let Some(root) = tree.root() else {
        return Vec::new();
    };
    let admissible = |n: NodeId| n != root && !options.exclude.contains(&n);

    // Step 2: the first level Li with |Li| < K ≤ |Li+1|. For K = 1 the
    // condition is unsatisfiable (|L0| = 1); the root level is the natural
    // choice. If the tree never widens to K, fall back to the widest
    // level — the algorithm then degrades gracefully to fewer subtrees.
    let mut li = 0usize;
    if k > 1 {
        let mut widest = (0usize, tree.level(0).len());
        loop {
            let here = tree.level(li).len();
            let below = tree.level(li + 1).len();
            if below == 0 {
                li = widest.0;
                break;
            }
            if here < k && below >= k {
                break;
            }
            if below > widest.1 {
                widest = (li + 1, below);
            }
            li += 1;
        }
    }

    // Step 3: collect subtree roots G0 by cycling over Li and drawing one
    // random remaining child per member per round.
    let level: Vec<NodeId> = tree.level(li);
    let mut remaining_children: Vec<Vec<NodeId>> =
        level.iter().map(|&v| tree.children(v)).collect();
    let mut g0: Vec<NodeId> = Vec::new();
    loop {
        let mut picked_any = false;
        for children in &mut remaining_children {
            if g0.len() >= k {
                break;
            }
            if children.is_empty() {
                continue;
            }
            let idx = rng.index(children.len());
            let child = children.swap_remove(idx);
            g0.push(child);
            picked_any = true;
        }
        if g0.len() >= k || !picked_any {
            break;
        }
    }

    // Step 4: one random member from each subtree: a random descendant,
    // or the subtree root itself when it has none (or when every
    // descendant is excluded).
    let mut group: Vec<NodeId> = Vec::new();
    for &sub_root in &g0 {
        if group.len() >= k {
            break;
        }
        let mut pool: Vec<NodeId> = tree
            .descendants(sub_root)
            .into_iter()
            .filter(|&d| admissible(d) && !group.contains(&d))
            .collect();
        if pool.is_empty() && admissible(sub_root) && !group.contains(&sub_root) {
            pool.push(sub_root);
        }
        if let Some(&choice) = rng.choose(&pool) {
            group.push(choice);
        }
    }

    // Backfill from any admissible fragment node if the subtree walk came
    // up short (tiny fragments).
    if group.len() < k {
        let mut pool: Vec<NodeId> = tree
            .known_members()
            .into_iter()
            .filter(|&n| admissible(n) && !group.contains(&n))
            .collect();
        while group.len() < k && !pool.is_empty() {
            let idx = rng.index(pool.len());
            group.push(pool.swap_remove(idx));
        }
    }

    group
}

/// Baseline for comparison: `k` uniformly random known members, ignoring
/// loss correlation entirely.
#[must_use]
pub fn random_group(
    tree: &PartialTree,
    k: usize,
    options: &MlcOptions,
    rng: &mut SimRng,
) -> Vec<NodeId> {
    let root = tree.root();
    let pool: Vec<NodeId> = tree
        .known_members()
        .into_iter()
        .filter(|&n| Some(n) != root && !options.exclude.contains(&n))
        .collect();
    rng.sample(&pool, k)
}

/// Total pairwise loss correlation of `group` within the fragment
/// (the objective Algorithm 1 minimizes). Pairs that cannot be traced to
/// the root contribute nothing.
#[must_use]
pub fn partial_group_correlation(tree: &PartialTree, group: &[NodeId]) -> usize {
    let mut total = 0;
    for (i, &a) in group.iter().enumerate() {
        for &b in &group[i + 1..] {
            total += tree.loss_correlation(a, b).unwrap_or(0);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partial_tree::AncestorRecord;

    fn record(node: u64, ancestors: &[u64]) -> AncestorRecord {
        AncestorRecord {
            node: NodeId(node),
            ancestors: ancestors.iter().map(|&a| NodeId(a)).collect(),
        }
    }

    /// A three-subtree fragment: root 0 with children 1, 2, 3; each child
    /// has two known descendants.
    fn wide_fragment() -> PartialTree {
        PartialTree::from_records(&[
            record(11, &[0, 1]),
            record(12, &[0, 1]),
            record(21, &[0, 2]),
            record(22, &[0, 2]),
            record(31, &[0, 3]),
            record(32, &[0, 3]),
        ])
    }

    #[test]
    fn disjoint_subtrees_give_zero_correlation() {
        let tree = wide_fragment();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..50 {
            let group = find_mlc_group(&tree, 3, &MlcOptions::default(), &mut rng);
            assert_eq!(group.len(), 3);
            assert_eq!(
                partial_group_correlation(&tree, &group),
                0,
                "K ≤ root fan-out must yield fully uncorrelated groups: {group:?}"
            );
        }
    }

    #[test]
    fn mlc_beats_random_on_average() {
        let tree = wide_fragment();
        let mut rng = SimRng::seed_from(2);
        let rounds = 200;
        let mut mlc_total = 0usize;
        let mut random_total = 0usize;
        for _ in 0..rounds {
            let g = find_mlc_group(&tree, 3, &MlcOptions::default(), &mut rng);
            mlc_total += partial_group_correlation(&tree, &g);
            let r = random_group(&tree, 3, &MlcOptions::default(), &mut rng);
            random_total += partial_group_correlation(&tree, &r);
        }
        assert!(
            mlc_total < random_total,
            "MLC {mlc_total} should beat random {random_total}"
        );
    }

    #[test]
    fn group_never_contains_root_or_excluded() {
        let tree = wide_fragment();
        let mut rng = SimRng::seed_from(3);
        let options = MlcOptions {
            exclude: vec![NodeId(11), NodeId(21)],
        };
        for _ in 0..50 {
            let group = find_mlc_group(&tree, 3, &options, &mut rng);
            assert!(!group.contains(&NodeId(0)));
            assert!(!group.contains(&NodeId(11)));
            assert!(!group.contains(&NodeId(21)));
        }
    }

    #[test]
    fn group_members_are_distinct() {
        let tree = wide_fragment();
        let mut rng = SimRng::seed_from(4);
        for k in 1..=6 {
            let group = find_mlc_group(&tree, k, &MlcOptions::default(), &mut rng);
            let mut sorted = group.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), group.len(), "duplicates in {group:?}");
        }
    }

    #[test]
    fn k_larger_than_fragment_degrades_gracefully() {
        let tree = PartialTree::from_records(&[record(1, &[0]), record(2, &[0])]);
        let mut rng = SimRng::seed_from(5);
        let group = find_mlc_group(&tree, 10, &MlcOptions::default(), &mut rng);
        assert!(!group.is_empty());
        assert!(group.len() <= 10);
    }

    #[test]
    fn k_equals_one_works() {
        let tree = wide_fragment();
        let mut rng = SimRng::seed_from(6);
        let group = find_mlc_group(&tree, 1, &MlcOptions::default(), &mut rng);
        assert_eq!(group.len(), 1);
        assert_ne!(group[0], NodeId(0));
    }

    #[test]
    fn empty_fragment_yields_empty_group() {
        let tree = PartialTree::from_records(&[]);
        let mut rng = SimRng::seed_from(7);
        assert!(find_mlc_group(&tree, 3, &MlcOptions::default(), &mut rng).is_empty());
        assert!(random_group(&tree, 3, &MlcOptions::default(), &mut rng).is_empty());
    }

    #[test]
    fn deep_chain_fragment() {
        // A pure chain never widens: the algorithm falls back and still
        // returns somebody rather than failing.
        let tree = PartialTree::from_records(&[record(3, &[0, 1, 2])]);
        let mut rng = SimRng::seed_from(8);
        let group = find_mlc_group(&tree, 2, &MlcOptions::default(), &mut rng);
        assert!(!group.is_empty());
    }
}
