//! Partial tree reconstruction from gossiped ancestor lists (§4.1).
//!
//! A member cannot see the whole multicast tree; it knows "a medium-sized
//! (e.g., 100) subset of other nodes. The information of each node
//! includes its own address, the addresses, layer numbers and out degrees
//! of all its ancestors." From those records it reconstructs the partial
//! tree `T` of Fig. 3 over which the MLC algorithm runs.

use std::collections::{BTreeMap, BTreeSet};

use rom_overlay::{MulticastTree, NodeId};

/// One gossiped record: a known member plus its root path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AncestorRecord {
    /// The known member.
    pub node: NodeId,
    /// Its ancestors ordered root-first (so `ancestors[0]` is the source).
    pub ancestors: Vec<NodeId>,
}

impl AncestorRecord {
    /// Extracts the record for `node` from a full tree — what the member
    /// itself would gossip. `None` when detached or unknown.
    #[must_use]
    pub fn from_tree(tree: &MulticastTree, node: NodeId) -> Option<Self> {
        let mut path = tree.overlay_path(node)?;
        path.pop(); // drop the node itself, keep root-first ancestors
        Some(AncestorRecord {
            node,
            ancestors: path,
        })
    }
}

/// A locally reconstructed fragment of the multicast tree.
///
/// Only parent/child relations are represented; members the local node has
/// never heard of simply do not appear (their subtrees collapse into the
/// known ancestors, exactly like Fig. 3's solid circles).
#[derive(Debug, Clone, Default)]
pub struct PartialTree {
    root: Option<NodeId>,
    parent: BTreeMap<NodeId, NodeId>,
    children: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// The members that were directly known (record subjects), as opposed
    /// to nodes that only appear as someone's ancestor.
    known: BTreeSet<NodeId>,
}

impl PartialTree {
    /// Builds a partial tree from gossiped records.
    ///
    /// Records are merged; inconsistent parents (stale gossip) resolve in
    /// favour of the first record seen. Records whose ancestor list is
    /// empty define the root.
    #[must_use]
    pub fn from_records<'a, I>(records: I) -> Self
    where
        I: IntoIterator<Item = &'a AncestorRecord>,
    {
        let mut tree = PartialTree::default();
        for record in records {
            tree.known.insert(record.node);
            let mut path = record.ancestors.clone();
            path.push(record.node);
            if let Some(&first) = path.first() {
                if tree.root.is_none() {
                    tree.root = Some(first);
                }
            }
            for pair in path.windows(2) {
                let (parent, child) = (pair[0], pair[1]);
                if child == parent {
                    continue; // corrupt record; skip the degenerate edge
                }
                // First record wins on conflict.
                let entry = tree.parent.entry(child).or_insert(parent);
                if *entry == parent {
                    tree.children.entry(parent).or_default().insert(child);
                }
            }
        }
        tree
    }

    /// The root, if any record mentioned one.
    #[must_use]
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Number of distinct nodes in the fragment.
    #[must_use]
    pub fn node_count(&self) -> usize {
        let mut all: BTreeSet<NodeId> = self.parent.keys().copied().collect();
        all.extend(self.parent.values().copied());
        all.extend(self.known.iter().copied());
        all.len()
    }

    /// The directly known members (record subjects).
    #[must_use]
    pub fn known_members(&self) -> Vec<NodeId> {
        self.known.iter().copied().collect()
    }

    /// The node's parent within the fragment.
    #[must_use]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent.get(&node).copied()
    }

    /// The node's children within the fragment, in id order.
    #[must_use]
    pub fn children(&self, node: NodeId) -> Vec<NodeId> {
        self.children
            .get(&node)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Depth of `node` below the fragment root (root = 0), by walking
    /// parents. `None` for nodes outside the fragment.
    #[must_use]
    pub fn depth(&self, node: NodeId) -> Option<usize> {
        if Some(node) == self.root {
            return Some(0);
        }
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
            if Some(cur) == self.root {
                return Some(d);
            }
            if d > self.parent.len() {
                return None; // defensive: malformed fragment
            }
        }
        None
    }

    /// All fragment nodes at exactly `depth`, in id order.
    #[must_use]
    pub fn level(&self, depth: usize) -> Vec<NodeId> {
        let Some(root) = self.root else {
            return Vec::new();
        };
        let mut current = vec![root];
        for _ in 0..depth {
            let mut next = Vec::new();
            for n in &current {
                next.extend(self.children(*n));
            }
            current = next;
        }
        current
    }

    /// All fragment descendants of `node` (excluding `node`), in BFS order.
    #[must_use]
    pub fn descendants(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut frontier = vec![node];
        while let Some(n) = frontier.pop() {
            for c in self.children(n) {
                out.push(c);
                frontier.push(c);
            }
        }
        out
    }

    /// Loss correlation within the fragment: common root-path edges.
    /// `None` when either node cannot be traced to the root.
    ///
    /// The shared root-path prefix ends at the pair's lowest common
    /// ancestor, so instead of materializing both paths the walk equalizes
    /// depths along parent links and climbs in lockstep until the nodes
    /// meet — no allocation, and [`depth`](Self::depth) already rejects
    /// untraceable or cyclic fragments.
    #[must_use]
    pub fn loss_correlation(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let mut da = self.depth(a)?;
        let mut db = self.depth(b)?;
        let mut x = a;
        let mut y = b;
        while da > db {
            x = self.parent(x)?;
            da -= 1;
        }
        while db > da {
            y = self.parent(y)?;
            db -= 1;
        }
        while x != y {
            x = self.parent(x)?;
            y = self.parent(y)?;
            da -= 1;
        }
        Some(da)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rom_overlay::{paper_source, Location, MemberProfile};
    use rom_sim::SimTime;

    fn record(node: u64, ancestors: &[u64]) -> AncestorRecord {
        AncestorRecord {
            node: NodeId(node),
            ancestors: ancestors.iter().map(|&a| NodeId(a)).collect(),
        }
    }

    #[test]
    fn builds_fragment_from_records() {
        // Fragment: 0 → 1 → {2, 3}, 0 → 4.
        let records = vec![record(2, &[0, 1]), record(3, &[0, 1]), record(4, &[0])];
        let t = PartialTree::from_records(&records);
        assert_eq!(t.root(), Some(NodeId(0)));
        assert_eq!(t.parent(NodeId(2)), Some(NodeId(1)));
        assert_eq!(t.children(NodeId(1)), vec![NodeId(2), NodeId(3)]);
        assert_eq!(t.children(NodeId(0)), vec![NodeId(1), NodeId(4)]);
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.known_members(), vec![NodeId(2), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn levels_and_depths() {
        let records = vec![record(2, &[0, 1]), record(3, &[0, 1]), record(4, &[0])];
        let t = PartialTree::from_records(&records);
        assert_eq!(t.level(0), vec![NodeId(0)]);
        assert_eq!(t.level(1), vec![NodeId(1), NodeId(4)]);
        assert_eq!(t.level(2), vec![NodeId(2), NodeId(3)]);
        assert_eq!(t.depth(NodeId(0)), Some(0));
        assert_eq!(t.depth(NodeId(3)), Some(2));
        assert_eq!(t.depth(NodeId(99)), None);
    }

    #[test]
    fn descendants_within_fragment() {
        let records = vec![record(2, &[0, 1]), record(3, &[0, 1, 2])];
        let t = PartialTree::from_records(&records);
        let mut d = t.descendants(NodeId(1));
        d.sort();
        assert_eq!(d, vec![NodeId(2), NodeId(3)]);
        assert!(t.descendants(NodeId(3)).is_empty());
    }

    #[test]
    fn fragment_correlation_matches_definition() {
        let records = vec![record(2, &[0, 1]), record(3, &[0, 1]), record(4, &[0])];
        let t = PartialTree::from_records(&records);
        assert_eq!(t.loss_correlation(NodeId(2), NodeId(3)), Some(1));
        assert_eq!(t.loss_correlation(NodeId(2), NodeId(4)), Some(0));
        assert_eq!(t.loss_correlation(NodeId(2), NodeId(99)), None);
    }

    #[test]
    fn conflicting_records_keep_first_parent() {
        let records = vec![record(2, &[0, 1]), record(2, &[0, 3])];
        let t = PartialTree::from_records(&records);
        assert_eq!(t.parent(NodeId(2)), Some(NodeId(1)));
    }

    #[test]
    fn from_full_tree_roundtrip() {
        let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
        let m = |id: u64| MemberProfile::new(NodeId(id), 2.0, SimTime::ZERO, 1e6, Location(0));
        tree.attach(m(1), NodeId(0)).unwrap();
        tree.attach(m(2), NodeId(1)).unwrap();
        tree.attach(m(3), NodeId(1)).unwrap();

        let rec = AncestorRecord::from_tree(&tree, NodeId(2)).unwrap();
        assert_eq!(rec.ancestors, vec![NodeId(0), NodeId(1)]);

        let records: Vec<AncestorRecord> = [2u64, 3]
            .iter()
            .map(|&n| AncestorRecord::from_tree(&tree, NodeId(n)).unwrap())
            .collect();
        let partial = PartialTree::from_records(&records);
        // The fragment's correlation agrees with the full tree's.
        assert_eq!(
            partial.loss_correlation(NodeId(2), NodeId(3)),
            crate::correlation::loss_correlation(&tree, NodeId(2), NodeId(3))
        );
    }

    #[test]
    fn empty_fragment() {
        let t = PartialTree::from_records(&[]);
        assert_eq!(t.root(), None);
        assert_eq!(t.node_count(), 0);
        assert!(t.level(0).is_empty());
    }
}
