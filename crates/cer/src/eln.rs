//! Explicit Loss Notification (§4.2).
//!
//! "Each multicast member, upon detecting a packet loss, sends a
//! notification packet containing only the missed sequence number to its
//! children, who then infer that the packet loss does not originate from
//! their parent... If a member continuously detects large gaps (e.g.,
//! sequence gap > 3) between the sequence of both normal data and ELN
//! packets, there must be a parent failure or link congestion/failure
//! occurring and this member simply launches the rejoin process."

use rom_overlay::{MulticastTree, NodeId};

/// An ELN packet: the missed sequence numbers, propagated downstream so
/// descendants do not mistake an upstream loss for a parent failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LossNotification {
    /// The member that originated the notification.
    pub origin: NodeId,
    /// The sequence numbers known to be missing upstream.
    pub missing: Vec<u64>,
}

impl LossNotification {
    /// Creates a notification for a single missing packet (the common
    /// case; "a series of sequence numbers when necessary").
    #[must_use]
    pub fn single(origin: NodeId, seq: u64) -> Self {
        LossNotification {
            origin,
            missing: vec![seq],
        }
    }
}

/// Who does what when a member fails, under ELN (§4.2).
///
/// Only the failed member's *children* detect a parent failure and launch
/// the rejoin process; every deeper descendant receives ELN packets from
/// its (live) parent, infers "the loss does not originate from my parent",
/// and limits itself to data recovery — no duplicate rejoins, no duplicate
/// repair storms up the subtree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElnScope {
    /// The failed member's children: they must rejoin the tree.
    pub rejoining: Vec<NodeId>,
    /// Deeper descendants: they receive ELN, stay put, and recover data
    /// from their recovery groups.
    pub notified: Vec<NodeId>,
}

impl ElnScope {
    /// Computes the ELN scope of `failed`'s departure from the tree state
    /// *before* the removal.
    ///
    /// # Examples
    ///
    /// ```
    /// use rom_cer::ElnScope;
    /// use rom_overlay::{paper_source, Location, MemberProfile, MulticastTree, NodeId};
    /// use rom_sim::SimTime;
    ///
    /// let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
    /// let m = |id: u64| MemberProfile::new(NodeId(id), 2.0, SimTime::ZERO, 1e6, Location(0));
    /// tree.attach(m(1), NodeId::SOURCE)?;
    /// tree.attach(m(2), NodeId(1))?;
    /// tree.attach(m(3), NodeId(2))?;
    ///
    /// let scope = ElnScope::of_failure(&tree, NodeId(1));
    /// assert_eq!(scope.rejoining, vec![NodeId(2)]); // child rejoins
    /// assert_eq!(scope.notified, vec![NodeId(3)]);  // grandchild waits on ELN
    /// # Ok::<(), rom_overlay::TreeError>(())
    /// ```
    #[must_use]
    pub fn of_failure(tree: &MulticastTree, failed: NodeId) -> Self {
        let rejoining: Vec<NodeId> = tree.children(failed).collect();
        let mut notified: Vec<NodeId> = tree
            .descendants(failed)
            .into_iter()
            .filter(|d| !rejoining.contains(d))
            .collect();
        notified.sort();
        ElnScope {
            rejoining,
            notified,
        }
    }

    /// Total members affected by the failure.
    #[must_use]
    pub fn affected(&self) -> usize {
        self.rejoining.len() + self.notified.len()
    }
}

/// The per-member failure detector driven by data and ELN arrivals.
///
/// The member tracks the highest sequence number seen on each channel; a
/// parent failure is suspected only when *both* channels have fallen more
/// than the configured gap behind the live stream position — data alone
/// stalling just means an upstream loss that the parent has ELN-covered.
///
/// # Examples
///
/// ```
/// use rom_cer::GapDetector;
///
/// let mut det = GapDetector::new(3);
/// det.on_data(10);
/// // Stream has advanced to 12: gap of 2, within tolerance.
/// assert!(!det.suspects_parent_failure(12));
/// // Stream at 20 with neither data nor ELN: parent failure.
/// assert!(det.suspects_parent_failure(20));
/// // An ELN at 19 explains the silence — no rejoin.
/// det.on_eln(19);
/// assert!(!det.suspects_parent_failure(20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapDetector {
    max_gap: u64,
    last_data: Option<u64>,
    last_eln: Option<u64>,
}

impl GapDetector {
    /// Creates a detector tolerating sequence gaps up to `max_gap`
    /// (the paper suggests 3).
    #[must_use]
    pub fn new(max_gap: u64) -> Self {
        GapDetector {
            max_gap,
            last_data: None,
            last_eln: None,
        }
    }

    /// The paper's example configuration (gap > 3 ⇒ rejoin).
    #[must_use]
    pub fn paper() -> Self {
        GapDetector::new(3)
    }

    /// Records a received data packet.
    pub fn on_data(&mut self, seq: u64) {
        self.last_data = Some(self.last_data.map_or(seq, |s| s.max(seq)));
    }

    /// Records a received ELN packet.
    pub fn on_eln(&mut self, seq: u64) {
        self.last_eln = Some(self.last_eln.map_or(seq, |s| s.max(seq)));
    }

    /// The highest sequence heard on either channel, if any.
    #[must_use]
    pub fn last_heard(&self) -> Option<u64> {
        match (self.last_data, self.last_eln) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }

    /// True when both channels trail `live_seq` (the stream's current
    /// sequence position) by more than the tolerated gap — the §4.2
    /// criterion for launching a rejoin.
    #[must_use]
    pub fn suspects_parent_failure(&self, live_seq: u64) -> bool {
        match self.last_heard() {
            None => live_seq > self.max_gap,
            Some(heard) => live_seq.saturating_sub(heard) > self.max_gap,
        }
    }

    /// Resets the detector after a successful rejoin.
    pub fn reset(&mut self) {
        self.last_data = None;
        self.last_eln = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_keeps_detector_calm() {
        let mut d = GapDetector::paper();
        d.on_data(100);
        assert!(!d.suspects_parent_failure(103));
        assert!(d.suspects_parent_failure(104));
    }

    #[test]
    fn eln_explains_missing_data() {
        let mut d = GapDetector::paper();
        d.on_data(100);
        // Data channel silent but ELNs keep arriving: upstream loss, not
        // parent failure.
        d.on_eln(110);
        assert!(!d.suspects_parent_failure(112));
        assert!(d.suspects_parent_failure(114));
    }

    #[test]
    fn fresh_detector_waits_for_first_packets() {
        let d = GapDetector::paper();
        assert!(!d.suspects_parent_failure(3));
        assert!(d.suspects_parent_failure(4));
    }

    #[test]
    fn out_of_order_arrivals_keep_max() {
        let mut d = GapDetector::paper();
        d.on_data(50);
        d.on_data(45); // late packet must not regress the high-water mark
        assert_eq!(d.last_heard(), Some(50));
    }

    #[test]
    fn reset_clears_state() {
        let mut d = GapDetector::paper();
        d.on_data(100);
        d.reset();
        assert_eq!(d.last_heard(), None);
    }

    #[test]
    fn eln_scope_partitions_the_subtree() {
        use rom_overlay::{paper_source, Location, MemberProfile};
        use rom_sim::SimTime;
        let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
        let m = |id: u64, bw: f64| {
            MemberProfile::new(NodeId(id), bw, SimTime::ZERO, 1e6, Location(id as u32))
        };
        tree.attach(m(1, 3.0), NodeId(0)).unwrap();
        tree.attach(m(2, 2.0), NodeId(1)).unwrap();
        tree.attach(m(3, 2.0), NodeId(1)).unwrap();
        tree.attach(m(4, 1.0), NodeId(2)).unwrap();
        tree.attach(m(5, 1.0), NodeId(3)).unwrap();

        let scope = ElnScope::of_failure(&tree, NodeId(1));
        assert_eq!(scope.rejoining, vec![NodeId(2), NodeId(3)]);
        assert_eq!(scope.notified, vec![NodeId(4), NodeId(5)]);
        assert_eq!(scope.affected(), 4);
        // Rejoiners + notified = exactly the descendants.
        assert_eq!(scope.affected(), tree.descendants(NodeId(1)).len());
    }

    #[test]
    fn eln_scope_of_leaf_failure_is_empty() {
        use rom_overlay::{paper_source, Location, MemberProfile};
        use rom_sim::SimTime;
        let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
        tree.attach(
            MemberProfile::new(NodeId(1), 2.0, SimTime::ZERO, 1e6, Location(1)),
            NodeId(0),
        )
        .unwrap();
        let scope = ElnScope::of_failure(&tree, NodeId(1));
        assert!(scope.rejoining.is_empty());
        assert!(scope.notified.is_empty());
        assert_eq!(scope.affected(), 0);
    }

    #[test]
    fn notification_construction() {
        let n = LossNotification::single(NodeId(4), 77);
        assert_eq!(n.origin, NodeId(4));
        assert_eq!(n.missing, vec![77]);
    }
}
