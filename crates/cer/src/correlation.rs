//! Loss correlation between multicast members (§4.1).
//!
//! "We assume a tree T = (V, E)... and define the loss correlation function
//! w : V × V → I, where w(v1, v2) represents the number of common edges
//! between the tree paths from the root r to v1 and v2." Two members with
//! zero correlation share no overlay ancestors below the root, so no
//! single upstream failure can silence both — exactly the property a
//! recovery group wants.

use rom_overlay::{MulticastTree, NodeId};

/// The number of common edges on the root paths of `a` and `b` — the
/// paper's `w(v1, v2)`. Returns `None` when either member is detached or
/// unknown (it has no root path).
///
/// The shared prefix of two root paths ends at the pair's lowest common
/// ancestor, so `w(a, b)` equals the LCA's depth.
///
/// # Examples
///
/// ```
/// use rom_cer::loss_correlation;
/// use rom_overlay::{paper_source, Location, MemberProfile, MulticastTree, NodeId};
/// use rom_sim::SimTime;
///
/// let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
/// let m = |id: u64| MemberProfile::new(NodeId(id), 2.0, SimTime::ZERO, 1e6, Location(id as u32));
/// tree.attach(m(1), NodeId(0))?;
/// tree.attach(m(2), NodeId(1))?;
/// tree.attach(m(3), NodeId(1))?;
/// tree.attach(m(4), NodeId(0))?;
///
/// // Siblings under node 1 share the root→1 edge.
/// assert_eq!(loss_correlation(&tree, NodeId(2), NodeId(3)), Some(1));
/// // Members in different root subtrees share nothing.
/// assert_eq!(loss_correlation(&tree, NodeId(2), NodeId(4)), Some(0));
/// # Ok::<(), rom_overlay::TreeError>(())
/// ```
#[must_use]
pub fn loss_correlation(tree: &MulticastTree, a: NodeId, b: NodeId) -> Option<usize> {
    // Two id→index lookups, then the walk follows arena parent links.
    tree.lca_depth(a, b)
}

/// Total pairwise loss correlation of a candidate recovery group — the
/// objective Algorithm 1 minimizes (`Σ_{vi,vj∈K} w(vi, vj)` over unordered
/// pairs). Detached or unknown members contribute nothing.
#[must_use]
pub fn group_correlation(tree: &MulticastTree, group: &[NodeId]) -> usize {
    let mut total = 0;
    for (i, &a) in group.iter().enumerate() {
        for &b in &group[i + 1..] {
            total += loss_correlation(tree, a, b).unwrap_or(0);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rom_overlay::{paper_source, Location, MemberProfile};
    use rom_sim::SimTime;

    fn profile(id: u64, bw: f64) -> MemberProfile {
        MemberProfile::new(NodeId(id), bw, SimTime::ZERO, 1e6, Location(id as u32))
    }

    /// root(0) ── 1 ── 2 ── 4
    ///        │       └── 5
    ///        └─ 3 ── 6
    fn sample_tree() -> MulticastTree {
        let mut t = MulticastTree::new(paper_source(Location(0)), 1.0);
        t.attach(profile(1, 3.0), NodeId(0)).unwrap();
        t.attach(profile(2, 3.0), NodeId(1)).unwrap();
        t.attach(profile(3, 3.0), NodeId(0)).unwrap();
        t.attach(profile(4, 1.0), NodeId(2)).unwrap();
        t.attach(profile(5, 1.0), NodeId(2)).unwrap();
        t.attach(profile(6, 1.0), NodeId(3)).unwrap();
        t
    }

    #[test]
    fn correlation_equals_lca_depth() {
        let t = sample_tree();
        assert_eq!(loss_correlation(&t, NodeId(4), NodeId(5)), Some(2)); // LCA 2
        assert_eq!(loss_correlation(&t, NodeId(4), NodeId(2)), Some(2)); // LCA 2 (ancestor)
        assert_eq!(loss_correlation(&t, NodeId(4), NodeId(1)), Some(1));
        assert_eq!(loss_correlation(&t, NodeId(4), NodeId(6)), Some(0)); // LCA root
        assert_eq!(loss_correlation(&t, NodeId(1), NodeId(3)), Some(0));
    }

    #[test]
    fn self_correlation_is_own_depth() {
        let t = sample_tree();
        assert_eq!(loss_correlation(&t, NodeId(4), NodeId(4)), Some(3));
        assert_eq!(loss_correlation(&t, NodeId(0), NodeId(0)), Some(0));
    }

    #[test]
    fn symmetric() {
        let t = sample_tree();
        for a in 0..7u64 {
            for b in 0..7u64 {
                assert_eq!(
                    loss_correlation(&t, NodeId(a), NodeId(b)),
                    loss_correlation(&t, NodeId(b), NodeId(a))
                );
            }
        }
    }

    #[test]
    fn detached_members_have_no_correlation() {
        let mut t = sample_tree();
        t.remove(NodeId(1)).unwrap(); // 2's subtree orphaned
        assert_eq!(loss_correlation(&t, NodeId(2), NodeId(6)), None);
        assert_eq!(loss_correlation(&t, NodeId(99), NodeId(6)), None);
    }

    #[test]
    fn group_objective() {
        let t = sample_tree();
        // {4, 5, 6}: w(4,5)=2, w(4,6)=0, w(5,6)=0 → 2.
        assert_eq!(group_correlation(&t, &[NodeId(4), NodeId(5), NodeId(6)]), 2);
        // A cross-subtree group has zero correlation.
        assert_eq!(group_correlation(&t, &[NodeId(2), NodeId(6)]), 0);
        assert_eq!(group_correlation(&t, &[]), 0);
        assert_eq!(group_correlation(&t, &[NodeId(4)]), 0);
    }
}
