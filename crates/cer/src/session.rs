//! The single-packet repair session state machine (§4.2).
//!
//! "Upon detecting a packet loss, [a member] sends a packet repair request
//! to the first recovery node. The request also contains a list of other
//! recovery members. The first recovery node searches its buffer or waits
//! a certain time for the requested packet to arrive. If found or
//! received, the requested packet is sent back to the requesting node,
//! otherwise the first recovery node sends back a negative acknowledgement
//! (NACK) packet and at the same time, it forwards the request to the
//! second recovery node... This process continues until the requested
//! packet is discovered or all recovery nodes are contacted. All repaired
//! packets are sent back to the intermediate nodes in addition to the
//! original requesting node."
//!
//! [`RepairSession`] tracks one such request as it walks the chain; the
//! driving code (simulation or a real transport) feeds it NACK/serve
//! events and reads off where the request should go next.

use rom_overlay::NodeId;

use crate::recovery::RecoveryGroup;

/// Where a repair session currently stands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairState {
    /// The request is at chain position `position` (0-based into the
    /// group), waiting for that member to serve or NACK.
    InFlight {
        /// Index into the recovery group.
        position: usize,
    },
    /// The packet was served by the member at the recorded position.
    Served {
        /// The member that supplied the packet.
        by: NodeId,
    },
    /// Every recovery member NACKed; the packet is unrecoverable through
    /// this group.
    Exhausted,
}

/// One in-flight repair request for a single sequence number.
///
/// # Examples
///
/// ```
/// use rom_cer::{RecoveryGroup, RepairSession, RepairState};
/// use rom_overlay::NodeId;
///
/// let group = RecoveryGroup::from_ordered(vec![NodeId(1), NodeId(2), NodeId(3)]);
/// let mut session = RepairSession::start(77, group).expect("non-empty group");
/// assert_eq!(session.current_target(), Some(NodeId(1)));
///
/// // First member lacks the packet and forwards the request.
/// assert_eq!(session.on_nack(), Some(NodeId(2)));
/// // Second member serves it.
/// session.on_served();
/// assert_eq!(*session.state(), RepairState::Served { by: NodeId(2) });
/// // The first member was an intermediary and also receives the packet.
/// assert_eq!(session.intermediaries(), &[NodeId(1)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairSession {
    seq: u64,
    group: RecoveryGroup,
    state: RepairState,
}

impl RepairSession {
    /// Starts a session for `seq` against `group`; the request goes to the
    /// nearest member first. `None` when the group is empty (nothing to
    /// ask).
    #[must_use]
    pub fn start(seq: u64, group: RecoveryGroup) -> Option<Self> {
        if group.is_empty() {
            return None;
        }
        Some(RepairSession {
            seq,
            group,
            state: RepairState::InFlight { position: 0 },
        })
    }

    /// The sequence number under repair.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> &RepairState {
        &self.state
    }

    /// The member currently holding the request, while in flight.
    #[must_use]
    pub fn current_target(&self) -> Option<NodeId> {
        match self.state {
            RepairState::InFlight { position } => self.group.members().get(position).copied(),
            _ => None,
        }
    }

    /// Number of chain hops used so far (1 after `start`).
    #[must_use]
    pub fn hops(&self) -> usize {
        match self.state {
            RepairState::InFlight { position } => position + 1,
            RepairState::Served { by } => self
                .group
                .members()
                .iter()
                .position(|&m| m == by)
                .map_or(self.group.len(), |p| p + 1),
            RepairState::Exhausted => self.group.len(),
        }
    }

    /// The current target NACKed and forwarded the request; returns the
    /// next member in the chain, or `None` when the group is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the session is not in flight (feeding events to a
    /// finished session is a driver bug).
    pub fn on_nack(&mut self) -> Option<NodeId> {
        let RepairState::InFlight { position } = self.state else {
            // rom-lint: allow(panic-sites) -- documented driver contract: an event after the session finished has no recoverable meaning
            panic!("on_nack on a finished repair session");
        };
        let next = position + 1;
        match self.group.members().get(next) {
            Some(&member) => {
                self.state = RepairState::InFlight { position: next };
                Some(member)
            }
            None => {
                self.state = RepairState::Exhausted;
                None
            }
        }
    }

    /// The current target served the packet.
    ///
    /// # Panics
    ///
    /// Panics if the session is not in flight.
    pub fn on_served(&mut self) {
        let RepairState::InFlight { position } = self.state else {
            // rom-lint: allow(panic-sites) -- documented driver contract: an event after the session finished has no recoverable meaning
            panic!("on_served on a finished repair session");
        };
        let by = self.group.members()[position];
        self.state = RepairState::Served { by };
    }

    /// The chain members the request passed through *before* the serving
    /// (or final) member — §4.2 sends the repaired packet to these
    /// intermediaries as well. Empty while still at the first member.
    #[must_use]
    pub fn intermediaries(&self) -> &[NodeId] {
        let upto = match self.state {
            RepairState::InFlight { position } => position,
            RepairState::Served { by } => self
                .group
                .members()
                .iter()
                .position(|&m| m == by)
                .unwrap_or(0),
            RepairState::Exhausted => self.group.len(),
        };
        &self.group.members()[..upto]
    }

    /// True once the session reached a terminal state.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        !matches!(self.state, RepairState::InFlight { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group3() -> RecoveryGroup {
        RecoveryGroup::from_ordered(vec![NodeId(1), NodeId(2), NodeId(3)])
    }

    #[test]
    fn empty_group_cannot_start() {
        assert!(RepairSession::start(1, RecoveryGroup::from_ordered(vec![])).is_none());
    }

    #[test]
    fn served_at_first_member() {
        let mut s = RepairSession::start(5, group3()).unwrap();
        assert_eq!(s.current_target(), Some(NodeId(1)));
        assert_eq!(s.hops(), 1);
        assert!(s.intermediaries().is_empty());
        s.on_served();
        assert_eq!(*s.state(), RepairState::Served { by: NodeId(1) });
        assert!(s.is_finished());
        assert_eq!(s.hops(), 1);
    }

    #[test]
    fn walks_chain_on_nacks() {
        let mut s = RepairSession::start(5, group3()).unwrap();
        assert_eq!(s.on_nack(), Some(NodeId(2)));
        assert_eq!(s.hops(), 2);
        assert_eq!(s.on_nack(), Some(NodeId(3)));
        assert_eq!(s.intermediaries(), &[NodeId(1), NodeId(2)]);
        s.on_served();
        assert_eq!(*s.state(), RepairState::Served { by: NodeId(3) });
        // Intermediaries receive the repaired packet too (§4.2).
        assert_eq!(s.intermediaries(), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn exhausts_after_all_nacks() {
        let mut s = RepairSession::start(9, group3()).unwrap();
        assert_eq!(s.on_nack(), Some(NodeId(2)));
        assert_eq!(s.on_nack(), Some(NodeId(3)));
        assert_eq!(s.on_nack(), None);
        assert_eq!(*s.state(), RepairState::Exhausted);
        assert!(s.is_finished());
        assert_eq!(s.current_target(), None);
        assert_eq!(s.hops(), 3);
    }

    #[test]
    #[should_panic(expected = "finished")]
    fn events_after_finish_panic() {
        let mut s = RepairSession::start(9, group3()).unwrap();
        s.on_served();
        let _ = s.on_nack();
    }

    #[test]
    fn seq_is_carried() {
        let s = RepairSession::start(123, group3()).unwrap();
        assert_eq!(s.seq(), 123);
    }
}
