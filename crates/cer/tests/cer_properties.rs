//! Property tests for the CER substrate: the sequence range set against a
//! naive model, stripe-plan invariants, and Algorithm 1's guarantees on
//! arbitrary fragments.

use proptest::prelude::*;
use rom_cer::{
    find_mlc_group, AncestorRecord, ElnScope, MlcOptions, PartialTree, SeqRangeSet, StripePlan,
    STRIPE_MODULO,
};
use rom_overlay::{paper_source, Location, MemberProfile, MulticastTree, NodeId};
use rom_sim::{SimRng, SimTime};
use std::collections::HashSet;

proptest! {
    /// SeqRangeSet behaves exactly like a HashSet of sequence numbers
    /// under arbitrary interleavings of single and range inserts.
    #[test]
    fn range_set_matches_naive_model(
        ops in prop::collection::vec((0u64..300, 0u64..8), 1..150),
    ) {
        let mut set = SeqRangeSet::new();
        let mut model: HashSet<u64> = HashSet::new();
        for (lo, width) in ops {
            set.insert_range(lo, lo + width);
            for v in lo..lo + width {
                model.insert(v);
            }
        }
        prop_assert_eq!(set.len(), model.len() as u64);
        for v in 0..320 {
            prop_assert_eq!(set.contains(v), model.contains(&v), "seq {}", v);
        }
        // Internal ranges stay sorted, disjoint and non-adjacent.
        for w in set.ranges().windows(2) {
            prop_assert!(w[0].1 < w[1].0);
        }
        // missing_in is the complement within any window.
        let missing = set.missing_in(0, 320);
        let missing_count: u64 = missing.iter().map(|&(l, h)| h - l).sum();
        prop_assert_eq!(missing_count, 320 - set.len());
    }

    /// Stripe plans cover disjoint, ordered slot ranges and their coverage
    /// equals the (capped) residual sum.
    #[test]
    fn stripe_plan_invariants(residuals in prop::collection::vec(0.0f64..0.9, 0..8)) {
        let plan = StripePlan::plan(&residuals);
        let mut cursor = 0u64;
        for seg in plan.segments() {
            prop_assert!(seg.lo >= cursor, "segments out of order");
            prop_assert!(seg.hi > seg.lo);
            prop_assert!(seg.hi <= STRIPE_MODULO);
            cursor = seg.hi;
        }
        let total: f64 = residuals.iter().sum();
        prop_assert!((plan.coverage() - total.min(1.0)).abs() < 0.02);
        // Full-coverage plans assign every slot whenever anyone can serve.
        let full = StripePlan::plan_full_coverage(&residuals);
        if residuals.iter().any(|&e| e > 0.01) {
            for seq in 0..STRIPE_MODULO {
                prop_assert!(full.assigned_member(seq).is_some(), "slot {} uncovered", seq);
            }
        }
    }

    /// Algorithm 1 on arbitrary fragments: members are distinct, never the
    /// root, never excluded, and at most k.
    #[test]
    fn mlc_group_guarantees(
        parents in prop::collection::vec(0usize..20, 2..40),
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        // Build a random tree over ids 0..n (0 = root): node i+1 attaches
        // under a previous node.
        let n = parents.len();
        let parent_of = |i: usize| -> usize { parents[i] % (i + 1) };
        let mut records = Vec::new();
        for i in 0..n {
            // Ancestor chain of node i+1, root-first.
            let mut chain = vec![i + 1];
            let mut cur = i;
            loop {
                let p = parent_of(cur);
                chain.push(p);
                if p == 0 {
                    break;
                }
                cur = p - 1;
            }
            chain.reverse();
            let node = NodeId(chain[chain.len() - 1] as u64);
            let ancestors = chain[..chain.len() - 1]
                .iter()
                .map(|&x| NodeId(x as u64))
                .collect();
            records.push(AncestorRecord { node, ancestors });
        }
        let tree = PartialTree::from_records(&records);
        let exclude = vec![NodeId(1), NodeId(2)];
        let options = MlcOptions { exclude: exclude.clone() };
        let mut rng = SimRng::seed_from(seed);
        let group = find_mlc_group(&tree, k, &options, &mut rng);
        prop_assert!(group.len() <= k);
        let distinct: HashSet<&NodeId> = group.iter().collect();
        prop_assert_eq!(distinct.len(), group.len(), "duplicates in {:?}", group);
        for g in &group {
            prop_assert_ne!(*g, NodeId(0), "root selected");
            prop_assert!(!exclude.contains(g), "excluded member selected");
        }
    }

    /// ELN suppression (§4.2): under any tree shape and any order of
    /// abrupt failures, each loss hands every affected member exactly one
    /// recovery trigger — the failed member's children rejoin, deeper
    /// descendants receive ELN and recover data in place. Nobody gets
    /// both triggers and nobody in the affected subtree is missed.
    #[test]
    fn eln_scope_yields_exactly_one_trigger_per_loss(
        parents in prop::collection::vec(0usize..20, 2..40),
        order_seed in any::<u64>(),
        failures in 1usize..8,
    ) {
        // Random tree over NodeId(0..=n), 0 = source: node i+1 attaches
        // under an earlier node. Ample bandwidth so every attach lands.
        let n = parents.len();
        let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
        for i in 0..n {
            let parent = NodeId((parents[i] % (i + 1)) as u64);
            let profile = MemberProfile::new(
                NodeId((i + 1) as u64), 64.0, SimTime::ZERO, 1e6, Location(0),
            );
            tree.attach(profile, parent).expect("ample bandwidth");
        }

        let mut rng = SimRng::seed_from(order_seed);
        for _ in 0..failures {
            let attached: Vec<NodeId> = tree
                .member_ids()
                .filter(|&m| m != tree.root() && tree.is_attached(m))
                .collect();
            let Some(&failed) = attached.get(rng.index(attached.len().max(1))) else {
                break;
            };
            // The engine computes the scope from the pre-removal tree,
            // exactly as done here.
            let scope = ElnScope::of_failure(&tree, failed);
            let removed = tree.remove(failed).expect("victim was attached");

            let rejoining: HashSet<NodeId> = scope.rejoining.iter().copied().collect();
            let notified: HashSet<NodeId> = scope.notified.iter().copied().collect();
            // No duplicates within either list…
            prop_assert_eq!(rejoining.len(), scope.rejoining.len());
            prop_assert_eq!(notified.len(), scope.notified.len());
            // …no member triggered twice across the two lists…
            prop_assert!(
                rejoining.is_disjoint(&notified),
                "duplicate recovery trigger for {:?}",
                rejoining.intersection(&notified).collect::<Vec<_>>()
            );
            // …and together they cover exactly the affected subtree.
            let union: HashSet<NodeId> = rejoining.union(&notified).copied().collect();
            let affected: HashSet<NodeId> =
                removed.affected_descendants.iter().copied().collect();
            prop_assert_eq!(union, affected, "scope must equal the affected subtree");
            let orphans: HashSet<NodeId> =
                removed.orphaned_children.iter().copied().collect();
            prop_assert_eq!(rejoining, orphans, "rejoin trigger = orphaned children");
            prop_assert!(!notified.contains(&failed), "the failed member cannot be notified");
        }
    }
}
