//! Equivalence of the allocation-free LCA-walk loss correlation against
//! the root-path-prefix definition.
//!
//! PR 5 rewrote both `rom_cer::loss_correlation` (now delegating to the
//! arena tree's `lca_depth`) and `PartialTree::loss_correlation` (a
//! depth-equalizing parent walk) to stop materializing root-path `Vec`s in
//! the O(k²) group-objective pair loop. The paper defines `w(v1, v2)` as
//! the number of common edges on the root paths, so the reference
//! implementations below compute exactly that — build both paths, count
//! the shared prefix — and the property tests assert the walk-based
//! versions agree on every pair, including detached members, unknown ids,
//! and fragment nodes that cannot be traced to the root.

use proptest::prelude::*;
use rom_cer::{group_correlation, loss_correlation, AncestorRecord, PartialTree};
use rom_overlay::{Location, MemberProfile, MulticastTree, NodeId};
use rom_sim::SimTime;

fn profile(id: u64, bw: f64) -> MemberProfile {
    MemberProfile::new(NodeId(id), bw, SimTime::ZERO, 1e6, Location(id as u32))
}

/// Builds a tree from attach picks, then detaches some subtrees so the
/// queries also cover members without a root path.
fn build_tree(attach_picks: &[(u8, u8)], remove_picks: &[u8]) -> MulticastTree {
    let mut tree = MulticastTree::new(profile(0, 4.0), 1.0);
    let mut next_id = 1u64;
    for &(bw_tenths, pick) in attach_picks {
        let parents: Vec<NodeId> = tree
            .attached_by_depth()
            .filter(|&n| tree.has_free_slot(n))
            .collect();
        if parents.is_empty() {
            break;
        }
        let parent = parents[pick as usize % parents.len()];
        let bw = 1.0 + f64::from(bw_tenths) / 10.0;
        tree.attach(profile(next_id, bw), parent).expect("free slot");
        next_id += 1;
    }
    for &pick in remove_picks {
        let victims: Vec<NodeId> = {
            let mut v: Vec<NodeId> = tree.member_ids().filter(|&n| n != tree.root()).collect();
            v.sort();
            v
        };
        if victims.is_empty() {
            break;
        }
        tree.remove(victims[pick as usize % victims.len()])
            .expect("known non-root member");
    }
    tree
}

/// Reference `w(a, b)`: materialize both root paths and count the shared
/// prefix (its last shared node is the LCA; edges = shared nodes − 1).
fn reference_full(tree: &MulticastTree, a: NodeId, b: NodeId) -> Option<usize> {
    let pa = tree.overlay_path(a)?;
    let pb = tree.overlay_path(b)?;
    let shared = pa.iter().zip(pb.iter()).take_while(|(x, y)| x == y).count();
    Some(shared.saturating_sub(1))
}

/// Reference for the fragment: the pre-PR-5 implementation, verbatim.
fn reference_partial(tree: &PartialTree, a: NodeId, b: NodeId) -> Option<usize> {
    let node_count = tree.node_count();
    let path = |mut n: NodeId| -> Option<Vec<NodeId>> {
        let mut p = vec![n];
        while Some(n) != tree.root() {
            n = tree.parent(n)?;
            p.push(n);
            if p.len() > node_count + 2 {
                return None;
            }
        }
        p.reverse();
        Some(p)
    };
    let pa = path(a)?;
    let pb = path(b)?;
    let shared = pa.iter().zip(pb.iter()).take_while(|(x, y)| x == y).count();
    Some(shared.saturating_sub(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full-tree correlation: the `lca_depth` walk equals the root-path
    /// prefix definition on every ordered pair, attached or not.
    #[test]
    fn full_tree_walk_matches_path_prefix(
        attach_picks in prop::collection::vec((any::<u8>(), any::<u8>()), 1..40),
        remove_picks in prop::collection::vec(any::<u8>(), 0..6),
    ) {
        let tree = build_tree(&attach_picks, &remove_picks);
        let mut ids: Vec<NodeId> = tree.member_ids().collect();
        ids.push(NodeId(9_999)); // unknown member
        for &a in &ids {
            for &b in &ids {
                prop_assert_eq!(
                    loss_correlation(&tree, a, b),
                    reference_full(&tree, a, b),
                    "pair ({:?}, {:?})", a, b
                );
            }
        }
    }

    /// The group objective equals the naive pairwise sum over the
    /// reference correlation.
    #[test]
    fn group_objective_matches_naive_sum(
        attach_picks in prop::collection::vec((any::<u8>(), any::<u8>()), 1..40),
        remove_picks in prop::collection::vec(any::<u8>(), 0..6),
        group_picks in prop::collection::vec(any::<u8>(), 0..8),
    ) {
        let tree = build_tree(&attach_picks, &remove_picks);
        let ids: Vec<NodeId> = tree.member_ids().collect();
        let group: Vec<NodeId> = group_picks
            .iter()
            .map(|&p| ids[p as usize % ids.len()])
            .collect();
        let mut naive = 0usize;
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                naive += reference_full(&tree, a, b).unwrap_or(0);
            }
        }
        prop_assert_eq!(group_correlation(&tree, &group), naive);
    }

    /// Fragment correlation: the depth-equalizing walk agrees with the
    /// pre-PR-5 path-materializing implementation on every pair of the
    /// fragment built from gossiped records of a random tree.
    #[test]
    fn partial_tree_walk_matches_old_implementation(
        attach_picks in prop::collection::vec((any::<u8>(), any::<u8>()), 1..40),
        record_picks in prop::collection::vec(any::<u8>(), 1..20),
    ) {
        let tree = build_tree(&attach_picks, &[]);
        let ids: Vec<NodeId> = tree.member_ids().collect();
        let records: Vec<AncestorRecord> = record_picks
            .iter()
            .filter_map(|&p| AncestorRecord::from_tree(&tree, ids[p as usize % ids.len()]))
            .collect();
        let fragment = PartialTree::from_records(&records);
        let mut probes: Vec<NodeId> = ids.clone();
        probes.push(NodeId(9_999)); // outside the fragment
        for &a in &probes {
            for &b in &probes {
                prop_assert_eq!(
                    fragment.loss_correlation(a, b),
                    reference_partial(&fragment, a, b),
                    "fragment pair ({:?}, {:?})", a, b
                );
            }
        }
    }
}
