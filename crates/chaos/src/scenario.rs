//! The scenario layer: declarative, composable fault-injection plans.
//!
//! A [`Scenario`] is pure data — a named list of [`Injection`]s, each an
//! instant plus a [`ChaosAction`]. The simulation engine interprets the
//! actions at dispatch time, drawing every random choice (victims, burst
//! spacing, degradation targets) from its dedicated chaos RNG stream so
//! the injected faults are reproducible from the run seed alone.

use rom_overlay::{MulticastTree, NodeId};
use rom_sim::SimRng;

use crate::pathology::{CapacitySegment, CapacityTrace, DelaySpikes, MobileProfile};

/// One fault-injection primitive. Scenarios compose these freely.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosAction {
    /// Fail a randomly chosen attached member *plus its overlay
    /// neighborhood*: every node within `radius` hops over parent/child
    /// edges (the root is never failed). Models the correlated, clustered
    /// failures stressed by the bi-connectivity and CliqueStream lines of
    /// work — a rack, AS or regional outage takes out overlay-adjacent
    /// peers together.
    CorrelatedFailure {
        /// Neighborhood radius in overlay hops; `0` fails one node.
        radius: usize,
    },
    /// A flash crowd: `joins` brand-new members arrive within
    /// `spread_secs` of the injection instant, on top of the workload's
    /// own Poisson arrivals.
    FlashCrowd {
        /// Number of extra members to inject.
        joins: usize,
        /// Window (seconds) over which the burst is spread; must be > 0.
        spread_secs: f64,
    },
    /// Flapping membership: every `period_secs`, abruptly fail `members`
    /// random attached members and inject the same number of replacement
    /// joins half a period later — repeated `cycles` times.
    Flap {
        /// Members failed per cycle.
        members: usize,
        /// Seconds between cycles; must be > 0.
        period_secs: f64,
        /// Number of cycles; must be ≥ 1.
        cycles: usize,
    },
    /// Bandwidth degradation over time: multiply the outbound bandwidth
    /// of a random `fraction` of attached members by `factor` (< 1).
    /// Children beyond the shrunken out-degree budget are orphaned and
    /// must recover.
    DegradeBandwidth {
        /// Fraction of attached members hit, in `(0, 1]`.
        fraction: f64,
        /// Multiplier applied to each victim's bandwidth, in `(0, 1)`.
        factor: f64,
    },
    /// Gilbert–Elliott bursty loss on the access links of a random
    /// `fraction` of attached members for `duration_secs`: data packets
    /// and CER repair traffic crossing those links are lost in
    /// correlated bursts at the given *average* rate.
    BurstyLoss {
        /// Fraction of attached members hit, in `(0, 1]`.
        fraction: f64,
        /// Stationary (average) loss rate of the chain, in `[0, 1)`.
        avg_loss: f64,
        /// Burst factor (≥ 1; 1 degenerates to uniform loss).
        burst_factor: f64,
        /// Episode length in seconds (> 0).
        duration_secs: f64,
    },
    /// Time-varying access-link capacity on a random `fraction` of
    /// attached members: CER repair service rates over those links are
    /// scaled by the trace's factor while the episode runs (the episode
    /// length is the trace's duration).
    ShapeCapacity {
        /// Fraction of attached members hit, in `(0, 1]`.
        fraction: f64,
        /// The step/ramp capacity schedule.
        trace: CapacityTrace,
    },
    /// Periodic bufferbloat on the access links of a random `fraction`
    /// of attached members for `duration_secs`: repair traffic crossing
    /// an active spike window arrives late by the spike's extra latency.
    Bufferbloat {
        /// Fraction of attached members hit, in `(0, 1]`.
        fraction: f64,
        /// The spike schedule, in seconds.
        spikes: DelaySpikes,
        /// Episode length in seconds (> 0).
        duration_secs: f64,
    },
    /// `count` random attached members become "mobile": their access
    /// links follow the composite handover profile (capacity collapse
    /// and recovery, bursty loss, bloat spikes) for the profile's
    /// duration.
    MobileMember {
        /// Number of members turned mobile.
        count: usize,
        /// The composite access-link profile.
        profile: MobileProfile,
    },
}

impl ChaosAction {
    /// Short static label for traces and logs.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ChaosAction::CorrelatedFailure { .. } => "correlated_failure",
            ChaosAction::FlashCrowd { .. } => "flash_crowd",
            ChaosAction::Flap { .. } => "flap",
            ChaosAction::DegradeBandwidth { .. } => "degrade_bandwidth",
            ChaosAction::BurstyLoss { .. } => "bursty_loss",
            ChaosAction::ShapeCapacity { .. } => "shape_capacity",
            ChaosAction::Bufferbloat { .. } => "bufferbloat",
            ChaosAction::MobileMember { .. } => "mobile_member",
        }
    }
}

/// A [`ChaosAction`] pinned to a simulation instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Injection {
    /// Absolute simulation time (seconds) at which the action fires.
    pub at_secs: f64,
    /// What happens then.
    pub action: ChaosAction,
}

/// A named, ordered fault-injection plan.
///
/// Scenarios are constructed for a concrete time window — typically the
/// run's `(warmup, measure)` span — so the same plan shape lands
/// proportionally in any run length.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Stable name, usable with [`Scenario::by_name`] and `fig_chaos
    /// --scenario`.
    pub name: &'static str,
    /// The plan, in firing order.
    pub injections: Vec<Injection>,
}

impl Scenario {
    /// Every named scenario, in presentation order.
    pub const NAMES: [&'static str; 10] = [
        "baseline",
        "correlated-failures",
        "flash-crowd",
        "flapping",
        "bandwidth-decay",
        "bursty-loss",
        "capacity-ramp",
        "bufferbloat",
        "mobile-member",
        "combined",
    ];

    /// Resolves a scenario by name, planned over the window starting at
    /// `start_secs` and lasting `span_secs`. Returns `None` for unknown
    /// names.
    ///
    /// # Panics
    ///
    /// Panics if `span_secs` is not positive or `start_secs` is negative.
    #[must_use]
    pub fn by_name(name: &str, start_secs: f64, span_secs: f64) -> Option<Scenario> {
        match name {
            "baseline" => Some(Scenario::baseline()),
            "correlated-failures" => Some(Scenario::correlated_failures(start_secs, span_secs)),
            "flash-crowd" => Some(Scenario::flash_crowd(start_secs, span_secs)),
            "flapping" => Some(Scenario::flapping(start_secs, span_secs)),
            "bandwidth-decay" => Some(Scenario::bandwidth_decay(start_secs, span_secs)),
            "bursty-loss" => Some(Scenario::bursty_loss(start_secs, span_secs)),
            "capacity-ramp" => Some(Scenario::capacity_ramp(start_secs, span_secs)),
            "bufferbloat" => Some(Scenario::bufferbloat(start_secs, span_secs)),
            "mobile-member" => Some(Scenario::mobile_member(start_secs, span_secs)),
            "combined" => Some(Scenario::combined(start_secs, span_secs)),
            _ => None,
        }
    }

    /// No injections at all: the control arm. Invariants still run, so
    /// this doubles as a regression check on the unperturbed engine.
    #[must_use]
    pub fn baseline() -> Scenario {
        Scenario {
            name: "baseline",
            injections: Vec::new(),
        }
    }

    /// Three clustered failures of growing radius across the window.
    #[must_use]
    pub fn correlated_failures(start_secs: f64, span_secs: f64) -> Scenario {
        let at = window(start_secs, span_secs);
        Scenario {
            name: "correlated-failures",
            injections: vec![
                inject(at(0.10), ChaosAction::CorrelatedFailure { radius: 1 }),
                inject(at(0.40), ChaosAction::CorrelatedFailure { radius: 2 }),
                inject(at(0.70), ChaosAction::CorrelatedFailure { radius: 1 }),
            ],
        }
    }

    /// Two join bursts: a large one early, a smaller aftershock later.
    #[must_use]
    pub fn flash_crowd(start_secs: f64, span_secs: f64) -> Scenario {
        let at = window(start_secs, span_secs);
        Scenario {
            name: "flash-crowd",
            injections: vec![
                inject(
                    at(0.20),
                    ChaosAction::FlashCrowd {
                        joins: 60,
                        spread_secs: (span_secs * 0.05).max(1.0),
                    },
                ),
                inject(
                    at(0.60),
                    ChaosAction::FlashCrowd {
                        joins: 30,
                        spread_secs: (span_secs * 0.03).max(1.0),
                    },
                ),
            ],
        }
    }

    /// A handful of members that leave and get replaced over and over.
    #[must_use]
    pub fn flapping(start_secs: f64, span_secs: f64) -> Scenario {
        let at = window(start_secs, span_secs);
        Scenario {
            name: "flapping",
            injections: vec![inject(
                at(0.15),
                ChaosAction::Flap {
                    members: 4,
                    period_secs: (span_secs * 0.06).max(1.0),
                    cycles: 6,
                },
            )],
        }
    }

    /// Progressive bandwidth loss across a growing share of the overlay.
    #[must_use]
    pub fn bandwidth_decay(start_secs: f64, span_secs: f64) -> Scenario {
        let at = window(start_secs, span_secs);
        Scenario {
            name: "bandwidth-decay",
            injections: vec![
                inject(
                    at(0.25),
                    ChaosAction::DegradeBandwidth {
                        fraction: 0.15,
                        factor: 0.6,
                    },
                ),
                inject(
                    at(0.50),
                    ChaosAction::DegradeBandwidth {
                        fraction: 0.20,
                        factor: 0.6,
                    },
                ),
                inject(
                    at(0.75),
                    ChaosAction::DegradeBandwidth {
                        fraction: 0.25,
                        factor: 0.5,
                    },
                ),
            ],
        }
    }

    /// Two bursty-loss episodes: a moderate early burst regime and a
    /// harsher late one, both at matched average loss rates so the only
    /// variable versus uniform loss is the burstiness itself.
    #[must_use]
    pub fn bursty_loss(start_secs: f64, span_secs: f64) -> Scenario {
        let at = window(start_secs, span_secs);
        Scenario {
            name: "bursty-loss",
            injections: vec![
                inject(
                    at(0.15),
                    ChaosAction::BurstyLoss {
                        fraction: 0.25,
                        avg_loss: 0.08,
                        burst_factor: 6.0,
                        duration_secs: span_secs * 0.25,
                    },
                ),
                inject(
                    at(0.55),
                    ChaosAction::BurstyLoss {
                        fraction: 0.25,
                        avg_loss: 0.12,
                        burst_factor: 10.0,
                        duration_secs: span_secs * 0.25,
                    },
                ),
            ],
        }
    }

    /// One capacity dip-and-recover episode: access links ramp down to
    /// 30% capacity, hold there, then ramp back to nominal.
    #[must_use]
    pub fn capacity_ramp(start_secs: f64, span_secs: f64) -> Scenario {
        let at = window(start_secs, span_secs);
        let leg = span_secs * 0.1;
        let trace = CapacityTrace::new(vec![
            CapacitySegment::Ramp {
                secs: leg,
                from: 1.0,
                to: 0.3,
            },
            CapacitySegment::Step {
                secs: span_secs * 0.2,
                factor: 0.3,
            },
            CapacitySegment::Ramp {
                secs: leg,
                from: 0.3,
                to: 1.0,
            },
        ]);
        Scenario {
            name: "capacity-ramp",
            injections: vec![inject(
                at(0.20),
                ChaosAction::ShapeCapacity {
                    fraction: 0.3,
                    trace,
                },
            )],
        }
    }

    /// Periodic bufferbloat: every 30 s the affected links queue up and
    /// hold repair traffic an extra 2 s for a 10 s stretch.
    #[must_use]
    pub fn bufferbloat(start_secs: f64, span_secs: f64) -> Scenario {
        let at = window(start_secs, span_secs);
        Scenario {
            name: "bufferbloat",
            injections: vec![inject(
                at(0.20),
                ChaosAction::Bufferbloat {
                    fraction: 0.3,
                    spikes: DelaySpikes::new(30.0, 10.0, 2.0),
                    duration_secs: span_secs * 0.5,
                },
            )],
        }
    }

    /// A dozen members go mobile: three handover cycles of capacity
    /// collapse and recovery with bursty loss and bloat spikes layered
    /// on top (140 s profile; absolute, like real handover timings).
    #[must_use]
    pub fn mobile_member(start_secs: f64, span_secs: f64) -> Scenario {
        let at = window(start_secs, span_secs);
        Scenario {
            name: "mobile-member",
            injections: vec![inject(
                at(0.15),
                ChaosAction::MobileMember {
                    count: 12,
                    profile: MobileProfile::handover(20.0, 5.0, 10.0, 0.2, 3, 0.15, 8.0, 1.0),
                },
            )],
        }
    }

    /// Everything at once: clustered failures during a flash crowd, with
    /// flapping and decaying bandwidth — the adversarial kitchen sink.
    #[must_use]
    pub fn combined(start_secs: f64, span_secs: f64) -> Scenario {
        let at = window(start_secs, span_secs);
        Scenario {
            name: "combined",
            injections: vec![
                inject(
                    at(0.10),
                    ChaosAction::FlashCrowd {
                        joins: 40,
                        spread_secs: (span_secs * 0.05).max(1.0),
                    },
                ),
                inject(at(0.20), ChaosAction::CorrelatedFailure { radius: 1 }),
                inject(
                    at(0.35),
                    ChaosAction::Flap {
                        members: 3,
                        period_secs: (span_secs * 0.05).max(1.0),
                        cycles: 4,
                    },
                ),
                inject(
                    at(0.45),
                    ChaosAction::DegradeBandwidth {
                        fraction: 0.15,
                        factor: 0.6,
                    },
                ),
                inject(
                    at(0.55),
                    ChaosAction::BurstyLoss {
                        fraction: 0.2,
                        avg_loss: 0.08,
                        burst_factor: 6.0,
                        duration_secs: span_secs * 0.2,
                    },
                ),
                inject(at(0.70), ChaosAction::CorrelatedFailure { radius: 2 }),
                inject(
                    at(0.85),
                    ChaosAction::DegradeBandwidth {
                        fraction: 0.20,
                        factor: 0.5,
                    },
                ),
            ],
        }
    }
}

/// Returns a closure mapping a window fraction to an absolute instant.
fn window(start_secs: f64, span_secs: f64) -> impl Fn(f64) -> f64 {
    assert!(start_secs >= 0.0, "window start must be non-negative");
    assert!(span_secs > 0.0, "window span must be positive");
    move |frac: f64| start_secs + span_secs * frac
}

fn inject(at_secs: f64, action: ChaosAction) -> Injection {
    Injection { at_secs, action }
}

/// Picks up to `count` distinct attached members (never the root),
/// drawing from `rng`. Candidates are enumerated in id order, so the
/// choice is a pure function of the tree state and the RNG state.
#[must_use]
pub fn pick_attached(tree: &MulticastTree, count: usize, rng: &mut SimRng) -> Vec<NodeId> {
    let candidates: Vec<NodeId> = tree
        .member_ids()
        .filter(|&id| id != tree.root() && tree.is_attached(id))
        .collect();
    rng.sample(&candidates, count.min(candidates.len()))
}

/// Picks a random attached victim and returns it together with its
/// overlay neighborhood: every member within `radius` hops over
/// parent/child edges, excluding the root. BFS order, victim first.
/// Returns an empty vector if the tree has no eligible victim.
#[must_use]
pub fn pick_cluster(tree: &MulticastTree, radius: usize, rng: &mut SimRng) -> Vec<NodeId> {
    let victims = pick_attached(tree, 1, rng);
    let Some(&seed_node) = victims.first() else {
        return Vec::new();
    };
    let mut cluster = vec![seed_node];
    let mut frontier = vec![seed_node];
    for _ in 0..radius {
        let mut next = Vec::new();
        for &n in &frontier {
            let mut neighbors: Vec<NodeId> = tree.children(n).collect();
            if let Some(p) = tree.parent(n) {
                neighbors.push(p);
            }
            for candidate in neighbors {
                if candidate != tree.root() && !cluster.contains(&candidate) {
                    cluster.push(candidate);
                    next.push(candidate);
                }
            }
        }
        frontier = next;
    }
    cluster
}

#[cfg(test)]
mod tests {
    use super::*;
    use rom_overlay::{paper_source, Location, MemberProfile};
    use rom_sim::SimTime;

    fn chain_tree(n: usize) -> MulticastTree {
        // Root -> 1 -> 2 -> ... -> n, everyone with generous capacity.
        let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
        let mut parent = tree.root();
        for i in 1..=n {
            let id = NodeId(i as u64);
            let profile = MemberProfile::new(id, 8.0, SimTime::ZERO, 1e6, Location(0));
            tree.attach(profile, parent).expect("chain attach");
            parent = id;
        }
        tree
    }

    #[test]
    fn every_named_scenario_resolves_and_sorts_in_window() {
        for name in Scenario::NAMES {
            let s = Scenario::by_name(name, 100.0, 500.0).expect("known name");
            assert_eq!(s.name, name);
            for inj in &s.injections {
                assert!(inj.at_secs >= 100.0 && inj.at_secs <= 600.0, "{name}");
            }
        }
        assert!(Scenario::by_name("no-such-scenario", 0.0, 1.0).is_none());
    }

    #[test]
    fn cluster_respects_radius_and_skips_root() {
        let tree = chain_tree(6);
        let mut rng = SimRng::seed_from(7);
        let cluster = pick_cluster(&tree, 1, &mut rng);
        assert!(!cluster.is_empty());
        // radius 1 on a chain: victim plus at most parent and child.
        assert!(cluster.len() <= 3, "cluster {cluster:?}");
        assert!(!cluster.contains(&tree.root()));
        // radius 0 fails exactly one node.
        let single = pick_cluster(&tree, 0, &mut SimRng::seed_from(7));
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn picks_are_deterministic_per_seed() {
        let tree = chain_tree(10);
        let a = pick_cluster(&tree, 2, &mut SimRng::seed_from(42));
        let b = pick_cluster(&tree, 2, &mut SimRng::seed_from(42));
        assert_eq!(a, b);
        let attached_a = pick_attached(&tree, 4, &mut SimRng::seed_from(9));
        let attached_b = pick_attached(&tree, 4, &mut SimRng::seed_from(9));
        assert_eq!(attached_a, attached_b);
        assert_eq!(attached_a.len(), 4);
    }

    #[test]
    fn pick_attached_on_empty_tree_is_empty() {
        let tree = MulticastTree::new(paper_source(Location(0)), 1.0);
        assert!(pick_attached(&tree, 3, &mut SimRng::seed_from(1)).is_empty());
        assert!(pick_cluster(&tree, 2, &mut SimRng::seed_from(1)).is_empty());
    }
}
