//! Link-level pathology models: bursty loss, time-varying capacity,
//! delay spikes and the composite "mobile member" access-link profile.
//!
//! The paper evaluates CER under uniform, independent packet loss, but
//! real access links fail in bursts: wireless fades, handovers and
//! bufferbloat produce *correlated* loss runs, capacity that collapses
//! and recovers over seconds, and latency spikes that outlive the
//! playback buffer. The models here are the deterministic building
//! blocks the scenario layer composes into such links:
//!
//! - [`GilbertElliott`] — the classic two-state bursty-loss chain, with
//!   a *matched-average* parameterization so burstiness can be swept at
//!   a fixed average loss rate;
//! - [`CapacityTrace`] — a piecewise step/ramp multiplier over a link's
//!   nominal capacity, advanced on sim time;
//! - [`DelaySpikes`] — a periodic bufferbloat schedule adding a fixed
//!   extra latency while a spike is active;
//! - [`MobileProfile`] — the composite of all three on a handover
//!   schedule (degrade → outage → recover, repeated).
//!
//! None of the models owns randomness: [`GilbertElliott::classify`]
//! consumes a caller-supplied uniform draw and everything else is a pure
//! function of sim time. The callers (the wire harness's `LinkChaos`,
//! the engine's streaming layer) draw from their dedicated chaos RNG
//! forks, so pathology stays seed-deterministic and jobs-invariant.

/// A two-state Gilbert–Elliott bursty-loss chain.
///
/// The state is the previous frame's fate: after a delivered frame the
/// link is *good* and loses the next frame with probability
/// `p_loss_good`; after a lost frame it is *bad* and loses the next with
/// `p_loss_bad`. With `p_loss_bad > p_loss_good` losses cluster into
/// geometric bursts of mean length `1 / (1 − p_loss_bad)`; with the two
/// probabilities equal the chain degenerates to independent uniform loss.
///
/// The stationary loss rate is
/// `p_loss_good / (1 − p_loss_bad + p_loss_good)`.
///
/// # Examples
///
/// ```
/// use rom_chaos::GilbertElliott;
///
/// // 10% average loss in bursts of mean length 4 / (1 - 0.1).
/// let ge = GilbertElliott::matched(0.1, 4.0);
/// assert!((ge.stationary_loss_rate() - 0.1).abs() < 1e-12);
///
/// // Burst factor 1 is *exactly* independent uniform loss.
/// let uniform = GilbertElliott::matched(0.1, 1.0);
/// assert_eq!(uniform.loss_threshold(), 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    p_loss_good: f64,
    p_loss_bad: f64,
    /// Current state: true after a loss (bursting).
    bad: bool,
    frames: u64,
    losses: u64,
}

impl GilbertElliott {
    /// A chain with explicit per-state loss probabilities, starting in
    /// the good state.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`, if
    /// `p_loss_bad = 1` (bursts must terminate), or if both are zero-
    /// denominator degenerate (`p_loss_good = 0` is fine: the chain just
    /// never loses).
    #[must_use]
    pub fn new(p_loss_good: f64, p_loss_bad: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_loss_good),
            "p_loss_good must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&p_loss_bad),
            "p_loss_bad must be in [0, 1]"
        );
        assert!(
            p_loss_bad < 1.0,
            "p_loss_bad must be < 1 so every burst terminates"
        );
        GilbertElliott {
            p_loss_good,
            p_loss_bad,
            bad: false,
            frames: 0,
            losses: 0,
        }
    }

    /// The matched-average parameterization: a chain whose stationary
    /// loss rate is exactly `avg_loss` for *every* burst factor, so
    /// burstiness can be swept with the average held fixed.
    ///
    /// `burst_factor` ≥ 1 scales the mean burst length: the chain uses
    /// `p_loss_good = avg_loss / burst_factor` and
    /// `p_loss_bad = (burst_factor − 1 + avg_loss) / burst_factor`,
    /// giving mean burst length `burst_factor / (1 − avg_loss)`.
    ///
    /// At `burst_factor = 1` both probabilities equal `avg_loss`
    /// **exactly** (bit-for-bit, by construction of the formula), so the
    /// degenerate chain reproduces independent uniform loss draw for
    /// draw — the differential guarantee the `LinkChaos` baseline
    /// depends on.
    ///
    /// # Panics
    ///
    /// Panics if `avg_loss` is outside `[0, 1)` or `burst_factor < 1`.
    #[must_use]
    pub fn matched(avg_loss: f64, burst_factor: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&avg_loss),
            "avg_loss must be in [0, 1)"
        );
        assert!(burst_factor >= 1.0, "burst_factor must be >= 1");
        // (β − 1 + r) / β == 1 − (1 − r)/β algebraically, but this form
        // evaluates to exactly `r` at β = 1 in floating point.
        let p_loss_bad = (burst_factor - 1.0 + avg_loss) / burst_factor;
        GilbertElliott::new(avg_loss / burst_factor, p_loss_bad)
    }

    /// Loss probability of the good (delivering) state.
    #[must_use]
    pub fn p_loss_good(&self) -> f64 {
        self.p_loss_good
    }

    /// Loss probability of the bad (bursting) state.
    #[must_use]
    pub fn p_loss_bad(&self) -> f64 {
        self.p_loss_bad
    }

    /// Loss probability of the *current* state — the threshold the next
    /// uniform draw is compared against.
    #[must_use]
    pub fn loss_threshold(&self) -> f64 {
        if self.bad {
            self.p_loss_bad
        } else {
            self.p_loss_good
        }
    }

    /// Advances the chain by one frame using the caller's uniform draw
    /// `u ∈ [0, 1)`; returns true if the frame is lost. Exactly one draw
    /// per frame, so callers can interleave the chain with other draws
    /// on the same RNG stream deterministically.
    pub fn classify(&mut self, u: f64) -> bool {
        let lost = u < self.loss_threshold();
        self.bad = lost;
        self.frames += 1;
        self.losses += u64::from(lost);
        lost
    }

    /// True while the chain is inside a loss burst.
    #[must_use]
    pub fn bursting(&self) -> bool {
        self.bad
    }

    /// Frames classified so far.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Frames lost so far.
    #[must_use]
    pub fn losses(&self) -> u64 {
        self.losses
    }

    /// Empirical loss rate over the frames classified so far (0 when no
    /// frame was classified yet).
    #[must_use]
    pub fn empirical_loss_rate(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.losses as f64 / self.frames as f64
        }
    }

    /// The chain's stationary loss rate
    /// `p_good / (1 − p_bad + p_good)`.
    #[must_use]
    pub fn stationary_loss_rate(&self) -> f64 {
        let denom = 1.0 - self.p_loss_bad + self.p_loss_good;
        self.p_loss_good / denom
    }

    /// Mean loss-burst length, `1 / (1 − p_loss_bad)` (bursts are
    /// geometric).
    #[must_use]
    pub fn mean_burst_len(&self) -> f64 {
        1.0 / (1.0 - self.p_loss_bad)
    }
}

/// One piece of a [`CapacityTrace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacitySegment {
    /// Hold the capacity factor constant for `secs`.
    Step {
        /// Segment length in seconds (> 0).
        secs: f64,
        /// Capacity multiplier over the nominal link rate (≥ 0).
        factor: f64,
    },
    /// Ramp linearly from `from` to `to` over `secs`.
    Ramp {
        /// Segment length in seconds (> 0).
        secs: f64,
        /// Starting multiplier (≥ 0).
        from: f64,
        /// Ending multiplier (≥ 0), attained exactly at the segment end.
        to: f64,
    },
}

impl CapacitySegment {
    fn secs(&self) -> f64 {
        match *self {
            CapacitySegment::Step { secs, .. } | CapacitySegment::Ramp { secs, .. } => secs,
        }
    }

    fn start_factor(&self) -> f64 {
        match *self {
            CapacitySegment::Step { factor, .. } => factor,
            CapacitySegment::Ramp { from, .. } => from,
        }
    }

    fn end_factor(&self) -> f64 {
        match *self {
            CapacitySegment::Step { factor, .. } => factor,
            CapacitySegment::Ramp { to, .. } => to,
        }
    }

    fn validate(&self) {
        let (secs, values): (f64, [f64; 2]) = match *self {
            CapacitySegment::Step { secs, factor } => (secs, [factor, factor]),
            CapacitySegment::Ramp { secs, from, to } => (secs, [from, to]),
        };
        assert!(
            secs > 0.0 && secs.is_finite(),
            "segment length must be positive and finite"
        );
        for v in values {
            assert!(
                v >= 0.0 && v.is_finite(),
                "capacity factors must be non-negative and finite"
            );
        }
    }
}

/// A time-varying per-link capacity multiplier: an ordered list of step
/// and ramp segments, evaluated against the offset since the trace was
/// armed (sim time, never wall clock). Values are multipliers over the
/// link's nominal capacity — `1.0` is unimpaired, `0.0` a dead link —
/// and are guaranteed non-negative by construction.
///
/// Endpoint contract: `factor_at(0)` is exactly the first segment's
/// starting value, `factor_at(duration())` (and anything later) exactly
/// the last segment's ending value, and at every interior boundary the
/// following segment's starting value — a ramp attains its `to` at its
/// boundary whenever the trace is continuous there.
///
/// # Examples
///
/// ```
/// use rom_chaos::{CapacitySegment, CapacityTrace};
///
/// let trace = CapacityTrace::new(vec![
///     CapacitySegment::Ramp { secs: 10.0, from: 1.0, to: 0.25 },
///     CapacitySegment::Step { secs: 5.0, factor: 0.25 },
/// ]);
/// assert_eq!(trace.factor_at(0.0), 1.0);
/// assert_eq!(trace.factor_at(5.0), 0.625);
/// assert_eq!(trace.factor_at(15.0), 0.25);
/// assert_eq!(trace.duration(), 15.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityTrace {
    segments: Vec<CapacitySegment>,
    duration: f64,
}

impl CapacityTrace {
    /// Builds a trace from ordered segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, any segment length is not
    /// positive, or any capacity factor is negative or non-finite.
    #[must_use]
    pub fn new(segments: Vec<CapacitySegment>) -> Self {
        assert!(!segments.is_empty(), "a capacity trace needs segments");
        let mut duration = 0.0;
        for seg in &segments {
            seg.validate();
            duration += seg.secs();
        }
        CapacityTrace { segments, duration }
    }

    /// Total trace length in seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// The capacity multiplier at `offset_secs` since the trace was
    /// armed. Offsets before the start clamp to the first value,
    /// offsets at or past the end clamp to the last.
    #[must_use]
    pub fn factor_at(&self, offset_secs: f64) -> f64 {
        if offset_secs <= 0.0 {
            return self.segments[0].start_factor();
        }
        let mut start = 0.0;
        for seg in &self.segments {
            let end = start + seg.secs();
            if offset_secs < end {
                return match *seg {
                    CapacitySegment::Step { factor, .. } => factor,
                    CapacitySegment::Ramp { secs, from, to } => {
                        from + (to - from) * ((offset_secs - start) / secs)
                    }
                };
            }
            start = end;
        }
        self.segments[self.segments.len() - 1].end_factor()
    }

    /// The multiplier at offset 0.
    #[must_use]
    pub fn start_factor(&self) -> f64 {
        self.segments[0].start_factor()
    }

    /// The multiplier at and after `duration()`.
    #[must_use]
    pub fn end_factor(&self) -> f64 {
        self.segments[self.segments.len() - 1].end_factor()
    }

    /// The segments, in order.
    #[must_use]
    pub fn segments(&self) -> &[CapacitySegment] {
        &self.segments
    }

    /// A handover schedule: `cycles` repetitions of dwell at full
    /// capacity, ramp down to `degraded`, hold through the outage, ramp
    /// back up — ending with a final full-capacity dwell, so the trace
    /// both starts and ends at factor 1.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero or any duration/factor is invalid (see
    /// [`CapacityTrace::new`]).
    #[must_use]
    pub fn handover(
        dwell_secs: f64,
        ramp_secs: f64,
        outage_secs: f64,
        degraded: f64,
        cycles: usize,
    ) -> Self {
        assert!(cycles >= 1, "a handover trace needs at least one cycle");
        let mut segments = Vec::with_capacity(cycles * 4 + 1);
        for _ in 0..cycles {
            segments.push(CapacitySegment::Step {
                secs: dwell_secs,
                factor: 1.0,
            });
            segments.push(CapacitySegment::Ramp {
                secs: ramp_secs,
                from: 1.0,
                to: degraded,
            });
            segments.push(CapacitySegment::Step {
                secs: outage_secs,
                factor: degraded,
            });
            segments.push(CapacitySegment::Ramp {
                secs: ramp_secs,
                from: degraded,
                to: 1.0,
            });
        }
        segments.push(CapacitySegment::Step {
            secs: dwell_secs,
            factor: 1.0,
        });
        CapacityTrace::new(segments)
    }
}

/// A periodic bufferbloat schedule: every `period` time units the link's
/// queue bloats for `span` units, adding `extra` units of latency to
/// everything crossing it. Pure function of the offset since armed; the
/// unit is whatever clock the caller advances on (seconds in the
/// engine, delivery steps in the wire harness).
///
/// # Examples
///
/// ```
/// use rom_chaos::DelaySpikes;
///
/// let spikes = DelaySpikes::new(30.0, 10.0, 2.0);
/// assert_eq!(spikes.extra_at(0.0), 2.0);   // spike opens each period
/// assert_eq!(spikes.extra_at(10.0), 0.0);  // spike over
/// assert_eq!(spikes.extra_at(30.0), 2.0);  // next period
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelaySpikes {
    /// Spike period (> `span`).
    pub period: f64,
    /// Spike length (> 0), measured from each period start.
    pub span: f64,
    /// Extra latency added while a spike is active (> 0).
    pub extra: f64,
}

impl DelaySpikes {
    /// Builds a schedule.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < span < period` and `extra > 0`, all finite.
    #[must_use]
    pub fn new(period: f64, span: f64, extra: f64) -> Self {
        assert!(
            period.is_finite() && span.is_finite() && extra.is_finite(),
            "spike parameters must be finite"
        );
        assert!(span > 0.0, "spike span must be positive");
        assert!(period > span, "spike period must exceed the span");
        assert!(extra > 0.0, "spike extra latency must be positive");
        DelaySpikes {
            period,
            span,
            extra,
        }
    }

    /// True while a spike is active at `offset` since the schedule was
    /// armed (negative offsets are never active).
    #[must_use]
    pub fn active_at(&self, offset: f64) -> bool {
        offset >= 0.0 && offset % self.period < self.span
    }

    /// The extra latency at `offset`: `extra` during a spike, 0 outside.
    #[must_use]
    pub fn extra_at(&self, offset: f64) -> f64 {
        if self.active_at(offset) {
            self.extra
        } else {
            0.0
        }
    }
}

/// The composite "mobile member" access link: a handover capacity
/// schedule, matched-average bursty loss and periodic bufferbloat, all
/// advanced on sim time from the episode start. The engine arms all
/// three on the victim's access link for the duration of the capacity
/// trace.
#[derive(Debug, Clone, PartialEq)]
pub struct MobileProfile {
    /// The handover capacity schedule; its duration is the episode
    /// length.
    pub capacity: CapacityTrace,
    /// Average packet-loss rate of the access link, in `[0, 1)`.
    pub avg_loss: f64,
    /// Gilbert–Elliott burst factor (≥ 1; 1 = uniform loss).
    pub burst_factor: f64,
    /// Bufferbloat schedule (seconds).
    pub spikes: DelaySpikes,
}

impl MobileProfile {
    /// A handover profile: capacity follows
    /// [`CapacityTrace::handover`], loss is
    /// [`GilbertElliott::matched`]`(avg_loss, burst_factor)`, and the
    /// bloat spikes are aligned with the handovers — one spike of
    /// `ramp + outage + ramp` seconds per cycle, opening when the
    /// ramp-down starts, adding `bloat_secs` of latency.
    ///
    /// # Panics
    ///
    /// Panics if any component parameter is invalid (see
    /// [`CapacityTrace::handover`], [`GilbertElliott::matched`],
    /// [`DelaySpikes::new`]).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn handover(
        dwell_secs: f64,
        ramp_secs: f64,
        outage_secs: f64,
        degraded: f64,
        cycles: usize,
        avg_loss: f64,
        burst_factor: f64,
        bloat_secs: f64,
    ) -> Self {
        // Validate the loss parameters eagerly (the chain itself is
        // built by the engine when the episode is armed).
        let _ = GilbertElliott::matched(avg_loss, burst_factor);
        let cycle = dwell_secs + ramp_secs + outage_secs + ramp_secs;
        let spikes = DelaySpikes::new(cycle, ramp_secs + outage_secs + ramp_secs, bloat_secs);
        // Shift is impossible with a pure modulo schedule, so open the
        // period at the ramp-down instead: the spike schedule starts at
        // the *first ramp*, i.e. the episode clock of the spikes is
        // offset by the initial dwell. The engine applies that offset
        // when it evaluates the schedule.
        MobileProfile {
            capacity: CapacityTrace::handover(dwell_secs, ramp_secs, outage_secs, degraded, cycles),
            avg_loss,
            burst_factor,
            spikes,
        }
    }

    /// The offset (seconds into the episode) at which the spike
    /// schedule starts: the first ramp-down, after the initial dwell.
    #[must_use]
    pub fn spike_offset_secs(&self) -> f64 {
        match self.capacity.segments().first() {
            Some(CapacitySegment::Step { secs, .. }) => *secs,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_is_stationary_at_the_requested_rate() {
        for &r in &[0.01, 0.05, 0.1, 0.3] {
            for &beta in &[1.0, 2.0, 4.0, 8.0, 32.0] {
                let ge = GilbertElliott::matched(r, beta);
                assert!(
                    (ge.stationary_loss_rate() - r).abs() < 1e-12,
                    "r={r} beta={beta}: stationary {}",
                    ge.stationary_loss_rate()
                );
                let expected_burst = beta / (1.0 - r);
                assert!(
                    (ge.mean_burst_len() - expected_burst).abs() < 1e-9,
                    "r={r} beta={beta}: mean burst {}",
                    ge.mean_burst_len()
                );
            }
        }
    }

    #[test]
    fn burst_factor_one_is_exactly_uniform() {
        for &r in &[0.02, 0.1, 0.37] {
            let mut ge = GilbertElliott::matched(r, 1.0);
            assert_eq!(ge.loss_threshold(), r);
            ge.classify(0.0); // force a loss
            assert_eq!(ge.loss_threshold(), r, "bad state must not change p");
        }
    }

    #[test]
    fn classify_updates_state_and_counters() {
        let mut ge = GilbertElliott::new(0.0, 0.9);
        assert!(!ge.classify(0.5)); // good state, p=0 -> delivered
        let mut bursty = GilbertElliott::new(1.0 - 1e-9, 0.9);
        assert!(bursty.classify(0.5)); // almost-sure loss
        assert!(bursty.bursting());
        assert!(bursty.classify(0.5)); // bad state, p=0.9
        assert!(!bursty.classify(0.95)); // burst ends
        assert!(!bursty.bursting());
        assert_eq!(bursty.frames(), 3);
        assert_eq!(bursty.losses(), 2);
    }

    #[test]
    #[should_panic(expected = "burst_factor must be >= 1")]
    fn sub_one_burst_factor_rejected() {
        let _ = GilbertElliott::matched(0.1, 0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_capacity_rejected() {
        let _ = CapacityTrace::new(vec![CapacitySegment::Step {
            secs: 1.0,
            factor: -0.1,
        }]);
    }

    #[test]
    fn trace_interpolates_and_clamps() {
        let trace = CapacityTrace::new(vec![
            CapacitySegment::Step {
                secs: 4.0,
                factor: 1.0,
            },
            CapacitySegment::Ramp {
                secs: 10.0,
                from: 1.0,
                to: 0.5,
            },
        ]);
        assert_eq!(trace.factor_at(-1.0), 1.0);
        assert_eq!(trace.factor_at(2.0), 1.0);
        assert_eq!(trace.factor_at(9.0), 0.75);
        assert_eq!(trace.factor_at(14.0), 0.5);
        assert_eq!(trace.factor_at(100.0), 0.5);
        assert_eq!(trace.duration(), 14.0);
    }

    #[test]
    fn handover_trace_returns_to_nominal() {
        let trace = CapacityTrace::handover(20.0, 5.0, 10.0, 0.2, 3);
        assert_eq!(trace.start_factor(), 1.0);
        assert_eq!(trace.end_factor(), 1.0);
        assert_eq!(trace.duration(), 3.0 * (20.0 + 5.0 + 10.0 + 5.0) + 20.0);
        // Mid-outage of the first cycle: exactly degraded.
        assert_eq!(trace.factor_at(30.0), 0.2);
    }

    #[test]
    fn spikes_fire_on_schedule() {
        let spikes = DelaySpikes::new(30.0, 10.0, 2.0);
        assert!(spikes.active_at(0.0));
        assert!(spikes.active_at(9.999));
        assert!(!spikes.active_at(10.0));
        assert!(!spikes.active_at(29.999));
        assert!(spikes.active_at(30.0));
        assert!(!spikes.active_at(-1.0));
        assert_eq!(spikes.extra_at(65.0), 2.0);
        assert_eq!(spikes.extra_at(75.0), 0.0);
    }

    #[test]
    fn mobile_profile_composes() {
        let profile = MobileProfile::handover(20.0, 5.0, 10.0, 0.2, 2, 0.1, 6.0, 1.5);
        assert_eq!(profile.spike_offset_secs(), 20.0);
        assert_eq!(profile.spikes.period, 40.0);
        assert_eq!(profile.spikes.span, 20.0);
        assert_eq!(profile.capacity.duration(), 2.0 * 40.0 + 20.0);
    }
}
